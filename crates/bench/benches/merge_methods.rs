//! Method-vs-method merge throughput: ChipAlign against every baseline at
//! a fixed model size, plus the geodesic ablations (raw SLERP, global
//! granularity, arithmetic norm restoration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipalign_merge::{
    Della, GeodesicMerge, Granularity, Merger, ModelSoup, NormRestore, TaskArithmetic,
    Ties,
};
use chipalign_model::{ArchSpec, Checkpoint};
use chipalign_tensor::rng::Pcg32;

fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "method-bench".into(),
        vocab_size: 99,
        d_model: 64,
        n_layers: 3,
        n_heads: 4,
        d_ff: 128,
        max_seq_len: 64,
    }
}

fn bench_merge_methods(c: &mut Criterion) {
    let arch = bench_arch();
    let base = Checkpoint::random(&arch, &mut Pcg32::seed(1));
    let chip = Checkpoint::random(&arch, &mut Pcg32::seed(2));
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(3));

    let methods: Vec<(&str, Box<dyn Merger>)> = vec![
        ("chipalign", Box::new(GeodesicMerge::recommended())),
        (
            "chipalign_global",
            Box::new(GeodesicMerge::recommended().with_granularity(Granularity::Global)),
        ),
        (
            "chipalign_arith_norm",
            Box::new(
                GeodesicMerge::recommended().with_norm_restore(NormRestore::Arithmetic),
            ),
        ),
        (
            "raw_slerp",
            Box::new(GeodesicMerge::raw_slerp(0.6).expect("valid lambda")),
        ),
        ("model_soup", Box::new(ModelSoup::new())),
        (
            "task_arithmetic",
            Box::new(TaskArithmetic::new(base.clone(), 1.0).expect("valid scale")),
        ),
        (
            "ties",
            Box::new(Ties::recommended(base.clone()).expect("valid density")),
        ),
        (
            "della",
            Box::new(Della::recommended(base, 7).expect("valid probabilities")),
        ),
    ];

    let mut group = c.benchmark_group("merge_methods");
    for (name, merger) in &methods {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let merged = merger
                    .merge_pair(black_box(&chip), black_box(&instruct))
                    .expect("conformable");
                black_box(merged)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge_methods);
criterion_main!(benches);

//! §III-C complexity claim: ChipAlign merges in O(n) time and space.
//!
//! Benches the geodesic merge over a geometric ladder of model sizes; a
//! linear fit of time vs scalar count should hold (the paper reports 10
//! minutes for 14B and 43 minutes for 70B on the same CPU — the same
//! near-linear ratio).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{ArchSpec, Checkpoint};
use chipalign_tensor::rng::Pcg32;

fn arch_of_size(d_model: usize, n_layers: usize) -> ArchSpec {
    ArchSpec {
        name: format!("scale-d{d_model}-l{n_layers}"),
        vocab_size: 99,
        d_model,
        n_layers,
        n_heads: 4,
        d_ff: d_model * 2,
        max_seq_len: 64,
    }
}

fn bench_merge_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chipalign_merge_scaling");
    for (d_model, n_layers) in [(32, 2), (64, 2), (64, 4), (128, 4), (128, 8)] {
        let arch = arch_of_size(d_model, n_layers);
        let n = arch.scalar_count();
        let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
        let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
        let merger = GeodesicMerge::recommended();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}-params")),
            &n,
            |b, _| {
                b.iter(|| {
                    let merged = merger
                        .merge_pair(black_box(&chip), black_box(&instruct))
                        .expect("conformable");
                    black_box(merged)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge_scaling);
criterion_main!(benches);

//! Substrate hot paths: transformer forward/backward, KV-cached decoding,
//! ROUGE-L, BM25 retrieval, and tokenization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_eval::rouge::rouge_l;
use chipalign_model::ArchSpec;
use chipalign_nn::{loss, CharTokenizer, KvCache, TinyLm};
use chipalign_rag::{Chunker, Retriever};
use chipalign_tensor::rng::Pcg32;

fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "substrate-bench".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

fn bench_substrates(c: &mut Criterion) {
    let arch = bench_arch();
    let model = TinyLm::new(&arch, &mut Pcg32::seed(5)).expect("valid arch");
    let tokens: Vec<u32> = (0..160).map(|i| 4 + (i % 90) as u32).collect();

    c.bench_function("forward_160_tokens", |b| {
        b.iter(|| black_box(model.logits(black_box(&tokens)).expect("ok")));
    });

    c.bench_function("forward_backward_160_tokens", |b| {
        b.iter(|| {
            let (logits, cache) = model.forward(black_box(&tokens)).expect("ok");
            let result = loss::cross_entropy(&logits, &tokens).expect("ok");
            black_box(model.backward(&cache, &result.dlogits).expect("ok"))
        });
    });

    let shared = std::sync::Arc::new(model.clone());
    c.bench_function("kv_prefill_160_plus_40_steps", |b| {
        b.iter(|| {
            let mut cache = KvCache::new(&shared);
            cache.prefill(black_box(&tokens)).expect("ok");
            let mut last = 4u32;
            for _ in 0..40 {
                let logits = cache.decode_step(last).expect("ok");
                last = chipalign_tensor::ops::argmax(&logits).expect("ok") as u32;
            }
            black_box(last)
        });
    });

    let tok = CharTokenizer::new();
    let text = "the timing report window shows setup and hold slack for each path group";
    c.bench_function("tokenizer_encode_decode", |b| {
        b.iter(|| {
            let ids = tok.encode(black_box(text));
            black_box(tok.decode(&ids))
        });
    });

    c.bench_function("rouge_l_sentence_pair", |b| {
        b.iter(|| {
            black_box(rouge_l(
                black_box("click the timing icon in the toolbar to open the report"),
                black_box("click on the timing icon in the gui toolbar"),
            ))
        });
    });

    let docs = OpenRoadBenchmark::corpus_documents();
    let retriever = Retriever::build(Chunker::default().chunk_all(&docs));
    c.bench_function("rag_retrieve_top2", |b| {
        b.iter(|| black_box(retriever.retrieve(black_box("what does the gpl cmd do?"), 2)));
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);

//! Batch-throughput benchmark: sweeps the batched decode engine over
//! batch sizes {1, 2, 4, 8, 16} at a *fixed total token count*, so every
//! configuration does exactly the same amount of work and the numbers
//! isolate what batching buys — amortizing weight traversal across
//! sessions via the skinny-GEMM projections in
//! [`chipalign_nn::KvCache::decode_batch`].
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_batch            # full run + JSON
//! cargo run --release -p chipalign-bench --bin bench_batch -- --smoke # tiny sweep, no JSON
//! ```
//!
//! Everything is seeded (model weights and prompts come from `Pcg32`) and
//! each configuration's timing is the median of `CHIPALIGN_BENCH_REPS`
//! repetitions (default 7, 3 in smoke mode). Session setup (cache
//! allocation + prompt prefill) happens outside the timed region: only
//! decode steps are measured. The full run writes `BENCH_batch.json` at
//! the repo root, including the headline batch-8 over batch-1 speedup.

use std::time::{Duration, Instant};

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_model::ArchSpec;
use chipalign_nn::{KvCache, TinyLm};
use chipalign_tensor::ops;
use chipalign_tensor::rng::Pcg32;

/// Tokens each session decodes before being replaced by a fresh one;
/// keeps every session well inside the context window.
const TOKENS_PER_SESSION: usize = 64;
const TOKENS_PER_SESSION_SMOKE: usize = 8;
const PROMPT_LEN: usize = 8;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A substrate big enough for the GEMM-vs-matvec tradeoff to be visible
/// (the `ArchSpec::tiny` window is too small to hold bench-length
/// sessions).
fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "bench-batch".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

/// One timed batch-size configuration.
#[derive(Debug, Serialize)]
struct BatchTiming {
    /// Sessions advanced together per decode step.
    batch: usize,
    /// Fresh-session rounds run to reach the fixed total.
    rounds: usize,
    /// Total new tokens decoded (identical across all configurations).
    total_tokens: usize,
    /// Repetitions the median is taken over.
    reps: usize,
    /// Median wall-clock decode time per repetition, microseconds.
    median_us: f64,
    /// Fastest repetition, microseconds.
    min_us: f64,
    /// New tokens per second at the median.
    tokens_per_sec: f64,
    /// Median microseconds per decoded token (batch-wide: a batch-8 step
    /// producing 8 tokens counts 8).
    us_per_token: f64,
    /// Median microseconds per decode *step* (one `decode_batch` call).
    us_per_step: f64,
}

#[derive(Debug, Serialize)]
struct BatchBench {
    mode: String,
    reps: usize,
    total_tokens: usize,
    tokens_per_session: usize,
    timings: Vec<BatchTiming>,
    /// Batch-8 tokens/sec over batch-1 tokens/sec: the headline number.
    speedup_8_over_1: f64,
}

/// Decodes `total_tokens` greedy tokens in rounds of `batch` fresh
/// sessions, `tokens_per_session` tokens each, and returns decode-only
/// wall time. Session setup (allocation + prefill) is excluded.
fn run_once(
    model: &std::sync::Arc<TinyLm>,
    batch: usize,
    rounds: usize,
    tokens_per_session: usize,
) -> Duration {
    let mut decode_time = Duration::ZERO;
    for round in 0..rounds {
        // Distinct seeded prompts per session so the batch holds genuinely
        // divergent KV histories, like real traffic would.
        let mut caches: Vec<KvCache> = (0..batch)
            .map(|s| {
                let prompt: Vec<u32> = (0..PROMPT_LEN)
                    .map(|i| (4 + (round * 31 + s * 7 + i) % 90) as u32)
                    .collect();
                let mut cache = KvCache::new(model);
                cache.prefill(&prompt).expect("prompt fits the window");
                cache
            })
            .collect();
        let mut tokens: Vec<u32> = (0..batch).map(|s| (4 + s % 90) as u32).collect();
        let t0 = Instant::now();
        for _ in 0..tokens_per_session {
            let mut refs: Vec<&mut KvCache> = caches.iter_mut().collect();
            let logits = KvCache::decode_batch(&mut refs, &tokens).expect("within window");
            for (next, row) in tokens.iter_mut().zip(&logits) {
                *next = ops::argmax(row).expect("non-empty vocab") as u32;
            }
        }
        decode_time += t0.elapsed();
    }
    decode_time
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 7 });
    let tokens_per_session = if smoke {
        TOKENS_PER_SESSION_SMOKE
    } else {
        TOKENS_PER_SESSION
    };
    let batches: &[usize] = &[1, 2, 4, 8, 16];
    // Fixed total work: the largest batch runs exactly one round of fresh
    // sessions, every smaller batch runs proportionally more rounds.
    let total_tokens = batches.iter().max().copied().unwrap_or(1) * tokens_per_session;

    let model = std::sync::Arc::new(
        TinyLm::new(&bench_arch(), &mut Pcg32::seed(20_250_806)).expect("arch"),
    );

    let mut timings: Vec<BatchTiming> = Vec::new();
    for &batch in batches {
        let rounds = total_tokens / (batch * tokens_per_session);
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| run_once(&model, batch, rounds, tokens_per_session).as_secs_f64() * 1e6)
            .collect();
        samples.sort_by(f64::total_cmp);
        let median_us = samples[samples.len() / 2];
        let min_us = samples[0];
        let steps = (rounds * tokens_per_session) as f64;
        timings.push(BatchTiming {
            batch,
            rounds,
            total_tokens,
            reps,
            median_us,
            min_us,
            tokens_per_sec: total_tokens as f64 / (median_us / 1e6),
            us_per_token: median_us / total_tokens as f64,
            us_per_step: median_us / steps,
        });
    }

    for t in &timings {
        eprintln!(
            "[bench_batch] batch {:>2}  {:>7.0} tok/s  {:>7.2} us/token  {:>7.2} us/step  (median {:>9.1} us over {} reps)",
            t.batch, t.tokens_per_sec, t.us_per_token, t.us_per_step, t.median_us, t.reps
        );
    }

    let rate = |b: usize| {
        timings
            .iter()
            .find(|t| t.batch == b)
            .map_or(0.0, |t| t.tokens_per_sec)
    };
    let speedup_8_over_1 = rate(8) / rate(1).max(1e-9);
    eprintln!("[bench_batch] batch-8 over batch-1: {speedup_8_over_1:.2}x");

    let report = BatchBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        total_tokens,
        tokens_per_session,
        timings,
        speedup_8_over_1,
    };
    harness::write_bench_json("batch", &report, smoke)
}

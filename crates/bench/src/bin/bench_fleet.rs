//! Fleet-scaling benchmark: throughput and prefix-hit preservation of the
//! prefix-affinity router against a random-routing baseline.
//!
//! An in-process fleet of identically-seeded replicas sits behind a
//! [`RouterServer`]; scaffold families (prompts sharing a long prefix)
//! are driven through it, one concurrent stream per family. Affinity
//! routing pins each family to one replica, so the family's later
//! members hit that replica's shared-prefix KV cache; random routing
//! scatters them, and the hit rate collapses as the fleet grows. The
//! sweep over replica counts × routing modes measures exactly that,
//! plus throughput scaling.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_fleet            # full sweep + JSON
//! cargo run --release -p chipalign-bench --bin bench_fleet -- --smoke # tiny sweep, no JSON
//! ```
//!
//! Environment knobs: `CHIPALIGN_FLEET_SESSIONS` (members per scaffold
//! family, default 5, 3 in smoke mode), `CHIPALIGN_FLEET_TOKENS`
//! (per-request budget, default 24, 8 in smoke mode). The full run
//! writes `BENCH_fleet.json` at the repo root (or `CHIPALIGN_BENCH_OUT`).

use std::time::{Duration, Instant};

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_model::ArchSpec;
use chipalign_nn::TinyLm;
use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_router::{RouterConfig, RouterServer, RoutingMode};
use chipalign_serve::{
    Client, GenerateRequest, ModelRegistry, SchedulerConfig, Server, ServerConfig,
};
use chipalign_tensor::rng::Pcg32;

const MODEL: &str = "fleet";

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A substrate with enough context window for scaffold + members.
fn fleet_arch() -> ArchSpec {
    ArchSpec {
        name: "bench-fleet".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

/// One replica with the shared fleet model registered. Identical seeds
/// everywhere: the fleet-deployment assumption that makes failover (and
/// this benchmark's cross-replica comparison) byte-exact.
fn replica(index: usize) -> Server {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 1,
        cache_dir: None,
    })
    .expect("zoo");
    let registry = ModelRegistry::new(zoo);
    registry.register(
        MODEL,
        TinyLm::new(&fleet_arch(), &mut Pcg32::seed(20_260_808)).expect("model"),
    );
    Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 64,
                slice_tokens: 8,
                stall_slices: 64,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: Some(format!("r{index}")),
        },
        registry,
    )
    .expect("bind replica")
}

/// The scaffold for family `f`: the family id sits inside the 16-char
/// affinity prefix (each family gets its own ring home) and the shared
/// tail is long enough that a same-replica follow-up reuses a
/// meaningful KV prefix.
fn scaffold(f: usize) -> String {
    format!("F{f:02} timing report: the critical path through the retimed multiplier stage ")
}

/// One measured configuration.
#[derive(Debug, Serialize)]
struct FleetPoint {
    /// Replicas behind the router.
    replicas: usize,
    /// `"affinity"` or `"random"`.
    routing: String,
    /// Total requests driven (families × members).
    requests: usize,
    /// Total new tokens produced.
    tokens: u64,
    /// Wall-clock duration of the burst in milliseconds.
    wall_ms: u64,
    /// New tokens per wall-clock second.
    tokens_per_sec: f64,
    /// Fleet-wide shared-prefix cache hits (absorbed across replicas).
    prefix_hits: u64,
    /// `prefix_hits` over completed requests. A family's first member
    /// always misses, so the ceiling is `(members-1)/members`.
    prefix_hit_rate: f64,
    /// Requests answered by their first-choice replica.
    primary_hit_rate: f64,
    /// Attempts moved to another replica (should be 0 on a healthy fleet).
    failovers: u64,
}

#[derive(Debug, Serialize)]
struct FleetBench {
    mode: String,
    /// Scaffold families per replica in the fleet (each family is one
    /// concurrent request stream).
    families_per_replica: usize,
    members_per_family: usize,
    tokens_per_request: usize,
    points: Vec<FleetPoint>,
    /// Affinity prefix-hit rate over random's at the largest fleet: the
    /// headline locality-preservation number.
    prefix_preservation: f64,
    /// Affinity tokens/sec at the largest fleet over one replica's.
    throughput_scaling: f64,
}

/// Drives `members` sequential requests per family through the router,
/// one thread per family, and returns a measured [`FleetPoint`].
fn run_point(n_replicas: usize, routing: RoutingMode, members: usize, budget: usize) -> FleetPoint {
    let servers: Vec<Server> = (0..n_replicas).map(replica).collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let front = RouterServer::bind(
        RouterConfig {
            routing,
            probe_interval: Duration::from_millis(250),
            ..RouterConfig::default()
        },
        addrs,
    )
    .expect("bind router");
    let router_addr = front.local_addr();

    // Two families per replica keeps per-replica concurrency constant as
    // the fleet grows, so tokens/sec isolates scaling.
    let families = 2 * n_replicas;
    let start = Instant::now();
    let handles: Vec<_> = (0..families)
        .map(|f| {
            std::thread::spawn(move || -> u64 {
                let mut client = Client::connect(router_addr).expect("connect router");
                let base = scaffold(f);
                let mut tokens = 0u64;
                for m in 0..members {
                    let mut req =
                        GenerateRequest::greedy(MODEL, &format!("{base}member {m};A:"), budget);
                    // Fixed-length generations: every point decodes
                    // identical work per request.
                    req.stop_at_eos = false;
                    tokens += client.generate(req).expect("routed generate").tokens as u64;
                }
                tokens
            })
        })
        .collect();
    let tokens: u64 = handles.into_iter().map(|h| h.join().expect("family")).sum();
    let wall_ms = start.elapsed().as_millis() as u64;

    // Fleet-wide serving counters, absorbed across replicas by the router.
    let fleet_snap = Client::connect(router_addr)
        .expect("connect router")
        .metrics()
        .expect("fleet metrics");
    let routing_snap = front.router().metrics().snapshot();

    front.shutdown();
    for s in servers {
        s.shutdown();
    }

    let requests = families * members;
    FleetPoint {
        replicas: n_replicas,
        routing: match routing {
            RoutingMode::Affinity => "affinity".to_string(),
            RoutingMode::Random => "random".to_string(),
        },
        requests,
        tokens,
        wall_ms,
        tokens_per_sec: tokens as f64 / (wall_ms as f64 / 1e3).max(1e-9),
        prefix_hits: fleet_snap.prefix_hits,
        prefix_hit_rate: fleet_snap.prefix_hits as f64 / (fleet_snap.completed as f64).max(1.0),
        primary_hit_rate: routing_snap.primary_hits as f64 / (routing_snap.routed as f64).max(1.0),
        failovers: routing_snap.failovers,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let members = env_usize("CHIPALIGN_FLEET_SESSIONS", if smoke { 3 } else { 5 });
    let budget = env_usize("CHIPALIGN_FLEET_TOKENS", if smoke { 8 } else { 24 });
    let replica_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    let mut points = Vec::new();
    for &n in replica_counts {
        for routing in [RoutingMode::Affinity, RoutingMode::Random] {
            let point = run_point(n, routing, members, budget);
            eprintln!(
                "[bench_fleet] {} replica(s) {:<8} {:>7.0} tok/s  prefix-hit {:>5.1}%  primary {:>5.1}%  failovers {}",
                point.replicas,
                point.routing,
                point.tokens_per_sec,
                100.0 * point.prefix_hit_rate,
                100.0 * point.primary_hit_rate,
                point.failovers,
            );
            points.push(point);
        }
    }

    let find = |n: usize, mode: &str| {
        points
            .iter()
            .find(|p| p.replicas == n && p.routing == mode)
            .expect("point")
    };
    let max_n = *replica_counts.last().expect("nonempty sweep");
    let affinity_max = find(max_n, "affinity");
    let prefix_preservation =
        affinity_max.prefix_hit_rate / find(max_n, "random").prefix_hit_rate.max(1e-9);
    let throughput_scaling =
        affinity_max.tokens_per_sec / find(1, "affinity").tokens_per_sec.max(1e-9);
    eprintln!(
        "[bench_fleet] at {max_n} replicas: affinity preserves {prefix_preservation:.2}x the \
         prefix-hit rate of random routing; throughput {throughput_scaling:.2}x of 1 replica"
    );

    let report = FleetBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        families_per_replica: 2,
        members_per_family: members,
        tokens_per_request: budget,
        points,
        prefix_preservation,
        throughput_scaling,
    };
    harness::write_bench_json("fleet", &report, smoke)
}

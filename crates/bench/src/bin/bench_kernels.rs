//! Kernel micro-benchmark baseline: times the blocked GEMM family, the
//! full backend × dtype decode matvec matrix (scalar/blocked/simd ×
//! f32/int8), the `m == 1` skinny-GEMM fast path, the KV-cached decode
//! loop at both dtypes, and a full geodesic merge materialization, and
//! writes `BENCH_kernels.json` at the repo root so future PRs have a perf
//! trajectory to regress against.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_kernels            # full run + JSON
//! cargo run --release -p chipalign-bench --bin bench_kernels -- --smoke # tiny shapes, no JSON
//! ```
//!
//! The backend matrix drives the three [`backend`] singletons *directly*
//! (bypassing the process-wide one-time selection), so a single run times
//! all of them; matvec rows also report `bytes` — the weight bytes one
//! evaluation streams — which is where the int8 rows win: a `s×s` int8
//! matvec moves `s² + 4s` bytes against f32's `4s²`.
//!
//! Everything is seeded (inputs come from `Pcg32`) and each timing is the
//! median of `CHIPALIGN_BENCH_REPS` repetitions (default 9, 3 in smoke
//! mode), so runs are comparable across commits on the same machine.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{ArchSpec, Checkpoint};
use chipalign_nn::{KvCache, TinyLm};
use chipalign_tensor::backend::{self, KernelBackend};
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::{Matrix, QuantizedMatrix};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed kernel configuration.
#[derive(Debug, Serialize)]
struct KernelTiming {
    /// Kernel name (`matmul`, `matmul_bt`, `matmul_bt_m1`, `matmul_at`,
    /// `transpose`, `matvec_<dtype>_<backend>`, `decode_step`,
    /// `decode_step_int8`, `geodesic_merge`).
    kernel: String,
    /// Human-readable problem shape, e.g. `128x128x128`.
    shape: String,
    /// Repetitions the median is taken over.
    reps: usize,
    /// Median wall-clock time per repetition, microseconds.
    median_us: f64,
    /// Fastest repetition, microseconds.
    min_us: f64,
    /// Useful work rate at the median (multiply-accumulates per second for
    /// GEMM/matvec, tokens/sec for decode, tensors/sec for merge); `0` when
    /// not meaningful.
    rate: f64,
    /// Weight bytes one repetition streams from memory (`0` when not
    /// meaningful). The decode-path figure of merit: int8 rows must beat
    /// their f32 siblings here by ~4×.
    bytes: u64,
}

#[derive(Debug, Serialize)]
struct KernelBench {
    mode: String,
    reps: usize,
    timings: Vec<KernelTiming>,
}

/// Times `f` `reps` times and returns `(median_us, min_us)`.
fn time_median(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples[0])
}

fn gemm_timings(sizes: &[usize], reps: usize, out: &mut Vec<KernelTiming>) {
    for &s in sizes {
        let mut rng = Pcg32::seed(41);
        let a = Matrix::randn(s, s, 1.0, &mut rng);
        let b = Matrix::randn(s, s, 1.0, &mut rng);
        let macs = (s * s * s) as f64;
        let mut push =
            |kernel: &str, (median_us, min_us): (f64, f64), out: &mut Vec<KernelTiming>| {
                out.push(KernelTiming {
                    kernel: kernel.to_string(),
                    shape: format!("{s}x{s}x{s}"),
                    reps,
                    median_us,
                    min_us,
                    rate: macs / (median_us / 1e6),
                    bytes: 0,
                });
            };
        let t = time_median(reps, || {
            black_box(a.matmul(&b).expect("conformable"));
        });
        push("matmul", t, out);
        let t = time_median(reps, || {
            black_box(a.matmul_bt(&b).expect("conformable"));
        });
        push("matmul_bt", t, out);
        let t = time_median(reps, || {
            black_box(a.matmul_at(&b).expect("conformable"));
        });
        push("matmul_at", t, out);
        let (median_us, min_us) = time_median(reps, || {
            black_box(a.transpose());
        });
        out.push(KernelTiming {
            kernel: "transpose".to_string(),
            shape: format!("{s}x{s}"),
            reps,
            median_us,
            min_us,
            rate: 0.0,
            bytes: 0,
        });
    }
}

/// One f32 matvec through a *specific* backend (per-row dots, bypassing the
/// process-wide selection) so a single run can time all three tiers.
fn matvec_with(b: &dyn KernelBackend, w: &Matrix, x: &[f32], out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = b.dot(w.row(r), x);
    }
}

/// The int8 sibling of [`matvec_with`]: per-row-scaled int8 weight rows
/// against an f32 activation vector.
fn matvec_q8_with(b: &dyn KernelBackend, w: &QuantizedMatrix, x: &[f32], out: &mut [f32]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = b.dot_q8(w.row(r), w.scale(r), x);
    }
}

/// The full backend × dtype decode-matvec matrix: every backend tier times
/// both the f32 and the int8 weight format on the same shapes, with the
/// weight bytes each evaluation streams reported alongside.
fn matvec_timings(sizes: &[usize], reps: usize, out: &mut Vec<KernelTiming>) {
    for &s in sizes {
        let mut rng = Pcg32::seed(42);
        let w = Matrix::randn(s, s, 1.0, &mut rng);
        let x = Matrix::randn(1, s, 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let f32_bytes = 4 * (s * s) as u64;
        let int8_bytes = q.weights_bytes();
        let macs = (s * s) as f64;
        let mut buf = vec![0.0f32; s];
        for b in backend::all() {
            let t = time_median(reps, || {
                matvec_with(b, &w, x.data(), &mut buf);
                black_box(&mut buf);
            });
            out.push(KernelTiming {
                kernel: format!("matvec_f32_{}", b.name()),
                shape: format!("{s}x{s} . {s}"),
                reps,
                median_us: t.0,
                min_us: t.1,
                rate: macs / (t.0 / 1e6),
                bytes: f32_bytes,
            });
            let t = time_median(reps, || {
                matvec_q8_with(b, &q, x.data(), &mut buf);
                black_box(&mut buf);
            });
            out.push(KernelTiming {
                kernel: format!("matvec_int8_{}", b.name()),
                shape: format!("{s}x{s} . {s}"),
                reps,
                median_us: t.0,
                min_us: t.1,
                rate: macs / (t.0 / 1e6),
                bytes: int8_bytes,
            });
        }
        // The routed entry: whatever the process-wide selection picked,
        // through the public `Matrix::matvec` door (dispatch overhead and
        // all) — comparable against historical `matvec` rows.
        let (median_us, min_us) = time_median(reps, || {
            black_box(w.matvec(x.data()).expect("conformable"));
        });
        out.push(KernelTiming {
            kernel: "matvec".to_string(),
            shape: format!("{s}x{s} . {s}"),
            reps,
            median_us,
            min_us,
            rate: macs / (median_us / 1e6),
            bytes: f32_bytes,
        });
    }
}

/// The `m == 1` skinny-GEMM fast path, swept explicitly: a 1-row activation
/// through `matmul_bt` must ride the matvec dispatch, including on
/// rectangular (non-square, non-lane-multiple) weights.
fn matmul_bt_m1_timings(sizes: &[usize], reps: usize, out: &mut Vec<KernelTiming>) {
    for &s in sizes {
        // A deliberately ragged column count exercises tile tails.
        let cols = s + s / 2 + 1;
        let mut rng = Pcg32::seed(43);
        let w = Matrix::randn(s, cols, 1.0, &mut rng);
        let x = Matrix::randn(1, cols, 1.0, &mut rng);
        let (median_us, min_us) = time_median(reps, || {
            black_box(x.matmul_bt(&w).expect("conformable"));
        });
        out.push(KernelTiming {
            kernel: "matmul_bt_m1".to_string(),
            shape: format!("1x{cols} . ({s}x{cols})^T"),
            reps,
            median_us,
            min_us,
            rate: (s * cols) as f64 / (median_us / 1e6),
            bytes: 4 * (s * cols) as u64,
        });
    }
}

/// End-to-end KV-cached decode at both dtypes: the int8 row streams the
/// quantized sidecar (projections at 1 byte/weight) and must beat the f32
/// row on `bytes`.
fn decode_timings(tokens: usize, reps: usize, out: &mut Vec<KernelTiming>) {
    let mut arch = ArchSpec::tiny("bench-kernels");
    arch.vocab_size = 99;
    let f32_model =
        std::sync::Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(7)).expect("valid arch"));
    let mut quantized = (*f32_model).clone();
    quantized.quantize();
    let int8_model = std::sync::Arc::new(quantized);
    let budget = tokens.min(arch.max_seq_len);
    for (kernel, model) in [
        ("decode_step", &f32_model),
        ("decode_step_int8", &int8_model),
    ] {
        let (median_us, min_us) = time_median(reps, || {
            let mut cache = KvCache::new(model);
            for i in 0..budget {
                black_box(cache.decode_step((4 + i % 90) as u32).expect("in vocab"));
            }
        });
        out.push(KernelTiming {
            kernel: kernel.to_string(),
            shape: format!("{budget} tokens, kv-cached, {}", model.dtype()),
            reps,
            median_us,
            min_us,
            rate: budget as f64 / (median_us / 1e6),
            bytes: model.weights_bytes() * budget as u64,
        });
    }
}

fn merge_timing(reps: usize, out: &mut Vec<KernelTiming>) {
    let arch = ArchSpec::tiny("bench-merge");
    let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
    let merger = GeodesicMerge::recommended();
    let tensors = chip.param_count();
    let (median_us, min_us) = time_median(reps, || {
        black_box(merger.merge_pair(&chip, &instruct).expect("conformable"));
    });
    out.push(KernelTiming {
        kernel: "geodesic_merge".to_string(),
        shape: format!("{tensors} tensors, lambda=0.6"),
        reps,
        median_us,
        min_us,
        rate: tensors as f64 / (median_us / 1e6),
        bytes: 0,
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 9 });
    let gemm_sizes: &[usize] = if smoke { &[8, 24] } else { &[32, 64, 128, 256] };
    let matvec_sizes: &[usize] = if smoke { &[16] } else { &[64, 256, 1024] };
    let decode_tokens = if smoke { 8 } else { 32 };

    eprintln!(
        "[bench_kernels] process-wide backend: {} (matrix rows time all tiers directly)",
        backend::active_name()
    );
    let mut timings = Vec::new();
    gemm_timings(gemm_sizes, reps, &mut timings);
    matvec_timings(matvec_sizes, reps, &mut timings);
    matmul_bt_m1_timings(matvec_sizes, reps, &mut timings);
    decode_timings(decode_tokens, reps, &mut timings);
    merge_timing(reps, &mut timings);

    for t in &timings {
        eprintln!(
            "[bench_kernels] {:<20} {:<28} median {:>10.1} us  min {:>10.1} us  bytes {:>12}",
            t.kernel, t.shape, t.median_us, t.min_us, t.bytes
        );
    }

    let report = KernelBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        timings,
    };
    harness::write_bench_json("kernels", &report, smoke)
}

//! Kernel micro-benchmark baseline: times the blocked GEMM family, the
//! KV-cached decode matvec path, and a full geodesic merge materialization,
//! and writes `BENCH_kernels.json` at the repo root so future PRs have a
//! perf trajectory to regress against.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_kernels            # full run + JSON
//! cargo run --release -p chipalign-bench --bin bench_kernels -- --smoke # tiny shapes, no JSON
//! ```
//!
//! Everything is seeded (inputs come from `Pcg32`) and each timing is the
//! median of `CHIPALIGN_BENCH_REPS` repetitions (default 9, 3 in smoke
//! mode), so runs are comparable across commits on the same machine.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{ArchSpec, Checkpoint};
use chipalign_nn::{KvCache, TinyLm};
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::Matrix;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed kernel configuration.
#[derive(Debug, Serialize)]
struct KernelTiming {
    /// Kernel name (`matmul`, `matmul_bt`, `matmul_at`, `transpose`,
    /// `matvec`, `decode_step`, `geodesic_merge`).
    kernel: String,
    /// Human-readable problem shape, e.g. `128x128x128`.
    shape: String,
    /// Repetitions the median is taken over.
    reps: usize,
    /// Median wall-clock time per repetition, microseconds.
    median_us: f64,
    /// Fastest repetition, microseconds.
    min_us: f64,
    /// Useful work rate at the median (multiply-accumulates per second for
    /// GEMM/matvec, tokens/sec for decode, tensors/sec for merge); `0` when
    /// not meaningful.
    rate: f64,
}

#[derive(Debug, Serialize)]
struct KernelBench {
    mode: String,
    reps: usize,
    timings: Vec<KernelTiming>,
}

/// Times `f` `reps` times and returns `(median_us, min_us)`.
fn time_median(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples[0])
}

fn gemm_timings(sizes: &[usize], reps: usize, out: &mut Vec<KernelTiming>) {
    for &s in sizes {
        let mut rng = Pcg32::seed(41);
        let a = Matrix::randn(s, s, 1.0, &mut rng);
        let b = Matrix::randn(s, s, 1.0, &mut rng);
        let macs = (s * s * s) as f64;
        let mut push =
            |kernel: &str, (median_us, min_us): (f64, f64), out: &mut Vec<KernelTiming>| {
                out.push(KernelTiming {
                    kernel: kernel.to_string(),
                    shape: format!("{s}x{s}x{s}"),
                    reps,
                    median_us,
                    min_us,
                    rate: macs / (median_us / 1e6),
                });
            };
        let t = time_median(reps, || {
            black_box(a.matmul(&b).expect("conformable"));
        });
        push("matmul", t, out);
        let t = time_median(reps, || {
            black_box(a.matmul_bt(&b).expect("conformable"));
        });
        push("matmul_bt", t, out);
        let t = time_median(reps, || {
            black_box(a.matmul_at(&b).expect("conformable"));
        });
        push("matmul_at", t, out);
        let (median_us, min_us) = time_median(reps, || {
            black_box(a.transpose());
        });
        out.push(KernelTiming {
            kernel: "transpose".to_string(),
            shape: format!("{s}x{s}"),
            reps,
            median_us,
            min_us,
            rate: 0.0,
        });
    }
}

fn matvec_timings(sizes: &[usize], reps: usize, out: &mut Vec<KernelTiming>) {
    for &s in sizes {
        let mut rng = Pcg32::seed(42);
        let w = Matrix::randn(s, s, 1.0, &mut rng);
        let x = Matrix::randn(1, s, 1.0, &mut rng);
        let (median_us, min_us) = time_median(reps, || {
            black_box(w.matvec(x.data()).expect("conformable"));
        });
        out.push(KernelTiming {
            kernel: "matvec".to_string(),
            shape: format!("{s}x{s} . {s}"),
            reps,
            median_us,
            min_us,
            rate: (s * s) as f64 / (median_us / 1e6),
        });
    }
}

fn decode_timing(tokens: usize, reps: usize, out: &mut Vec<KernelTiming>) {
    let mut arch = ArchSpec::tiny("bench-kernels");
    arch.vocab_size = 99;
    let model = std::sync::Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(7)).expect("valid arch"));
    let budget = tokens.min(arch.max_seq_len);
    let (median_us, min_us) = time_median(reps, || {
        let mut cache = KvCache::new(&model);
        for i in 0..budget {
            black_box(cache.decode_step((4 + i % 90) as u32).expect("in vocab"));
        }
    });
    out.push(KernelTiming {
        kernel: "decode_step".to_string(),
        shape: format!("{budget} tokens, kv-cached"),
        reps,
        median_us,
        min_us,
        rate: budget as f64 / (median_us / 1e6),
    });
}

fn merge_timing(reps: usize, out: &mut Vec<KernelTiming>) {
    let arch = ArchSpec::tiny("bench-merge");
    let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
    let merger = GeodesicMerge::recommended();
    let tensors = chip.param_count();
    let (median_us, min_us) = time_median(reps, || {
        black_box(merger.merge_pair(&chip, &instruct).expect("conformable"));
    });
    out.push(KernelTiming {
        kernel: "geodesic_merge".to_string(),
        shape: format!("{tensors} tensors, lambda=0.6"),
        reps,
        median_us,
        min_us,
        rate: tensors as f64 / (median_us / 1e6),
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 9 });
    let gemm_sizes: &[usize] = if smoke { &[8, 24] } else { &[32, 64, 128, 256] };
    let matvec_sizes: &[usize] = if smoke { &[16] } else { &[64, 256, 1024] };
    let decode_tokens = if smoke { 8 } else { 32 };

    let mut timings = Vec::new();
    gemm_timings(gemm_sizes, reps, &mut timings);
    matvec_timings(matvec_sizes, reps, &mut timings);
    decode_timing(decode_tokens, reps, &mut timings);
    merge_timing(reps, &mut timings);

    for t in &timings {
        eprintln!(
            "[bench_kernels] {:<16} {:<24} median {:>10.1} us  min {:>10.1} us",
            t.kernel, t.shape, t.median_us, t.min_us
        );
    }

    let report = KernelBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        timings,
    };
    harness::write_bench_json("kernels", &report, smoke)
}

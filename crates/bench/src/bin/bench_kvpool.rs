//! Paged KV-pool benchmark: what block-based KV storage with zero-copy
//! prefix sharing buys over per-session contiguous caches.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_kvpool            # full run + JSON
//! cargo run --release -p chipalign-bench --bin bench_kvpool -- --smoke # tiny sweep, no JSON
//! ```
//!
//! Scenario: `N` sessions share a long prompt scaffold and diverge with a
//! short fresh suffix each — the repeated-scaffold traffic the serving
//! prefix cache targets. Three headline numbers:
//!
//! * **KV bytes / sessions-per-GB** — paged sessions alias the scaffold's
//!   blocks (one copy total, plus a copy-on-write tail block per fork),
//!   while contiguous sessions each hold a private full-window copy.
//! * **Fork latency** — a paged fork clones `O(blocks)` `Arc`s; a
//!   contiguous fork deep-copies every KV row.
//! * **Prefix-hit allocation** — forking the donor allocates zero new
//!   blocks until the session writes past the shared prefix (the pool's
//!   `cow_copies` counter shows the divergence copies that follow).
//!
//! Everything is seeded and each timing is the median of
//! `CHIPALIGN_BENCH_REPS` repetitions (default 7, 3 in smoke mode). The
//! full run writes `BENCH_kvpool.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_model::ArchSpec;
use chipalign_nn::{KvCache, KvPool, KvPoolConfig, TinyLm};
use chipalign_tensor::rng::Pcg32;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Same substrate as `bench_prefill`: a window large enough for
/// bench-length scaffolds.
fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "bench-kvpool".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

fn prompt(len: usize) -> Vec<u32> {
    (0..len).map(|i| (4 + (i * 7) % 90) as u32).collect()
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn timed(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

#[derive(Debug, Serialize)]
struct KvPoolBench {
    mode: String,
    reps: usize,
    /// Positions per KV block.
    block_tokens: usize,
    /// Shared scaffold length (tokens); deliberately not block-aligned so
    /// every fork's first divergent write exercises copy-on-write.
    scaffold_len: usize,
    /// Fresh suffix tokens per session after the fork.
    suffix_len: usize,
    /// Forked sessions resident at once.
    sessions: usize,
    /// Total KV bytes held with paged storage (blocks in use × block size).
    paged_total_bytes: usize,
    /// Total KV bytes with one contiguous cache per session.
    contiguous_total_bytes: usize,
    /// Paged savings over contiguous, percent.
    bytes_saved_pct: f64,
    /// Concurrent sessions one GB of KV budget can hold, both ways
    /// (marginal cost: total bytes divided by session count).
    sessions_per_gb_paged: f64,
    sessions_per_gb_contiguous: f64,
    /// Median time to fork the scaffold-length donor, microseconds.
    fork_paged_median_us: f64,
    fork_contiguous_median_us: f64,
    /// Contiguous over paged fork time.
    fork_speedup: f64,
    /// Blocks newly allocated by a prefix-hit fork (must be zero).
    prefix_hit_new_blocks: usize,
    /// Copy-on-write block copies performed as the sessions diverged.
    cow_copies: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 7 });
    // Scaffold ends mid-block (not a multiple of block_tokens) so each
    // fork's first write past the prefix must copy the shared tail block.
    let scaffold_len = if smoke { 22 } else { 190 };
    let suffix_len = 8;
    let sessions = if smoke { 4 } else { 16 };

    let arch = bench_arch();
    let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(20_250_806)).expect("arch"));
    let pool = KvPool::new(KvPoolConfig {
        block_tokens: 16,
        max_blocks: 65_536,
    })
    .expect("pool");
    let block_bytes = pool.block_bytes(arch.n_layers, arch.d_model);
    let scaffold = prompt(scaffold_len);

    // Donors built once, outside every timed region.
    let mut paged_donor = KvCache::new_paged(&model, &pool);
    paged_donor.prefill(&scaffold).expect("fits window");
    let mut flat_donor = KvCache::new(&model);
    flat_donor.prefill(&scaffold).expect("fits window");

    // Fork latency: paged aliases O(blocks) Arcs, contiguous deep-copies
    // every row.
    let mut fork_paged = Vec::with_capacity(reps);
    let mut fork_flat = Vec::with_capacity(reps);
    for _ in 0..reps {
        fork_paged.push(
            timed(|| {
                let fork = paged_donor.fork_from(scaffold_len).expect("within donor");
                std::hint::black_box(&fork);
            })
            .as_secs_f64()
                * 1e6,
        );
        fork_flat.push(
            timed(|| {
                let fork = flat_donor.fork_from(scaffold_len).expect("within donor");
                std::hint::black_box(&fork);
            })
            .as_secs_f64()
                * 1e6,
        );
    }
    let fork_paged_median_us = median_us(fork_paged);
    let fork_contiguous_median_us = median_us(fork_flat);

    // Prefix-hit allocation: a fork of the donor must cost zero blocks.
    let before = pool.blocks_in_use();
    let hit = paged_donor.fork_from(scaffold_len).expect("within donor");
    let prefix_hit_new_blocks = pool.blocks_in_use() - before;
    drop(hit);

    // Residency: N forked sessions diverge with a fresh suffix each and
    // stay alive together. Paged cost = blocks actually in use; the
    // contiguous twin fleet pays a private full-length cache per session.
    let cow_before = pool.cow_copies();
    let mut paged_fleet = Vec::with_capacity(sessions);
    let mut contiguous_total_bytes = 0usize;
    for s in 0..sessions {
        let suffix: Vec<u32> = (0..suffix_len)
            .map(|i| (4 + (s * 13 + i * 7) % 90) as u32)
            .collect();
        let mut fork = paged_donor.fork_from(scaffold_len).expect("within donor");
        fork.prefill_chunk(&suffix).expect("fits window");
        contiguous_total_bytes += fork.kv_bytes();
        paged_fleet.push(fork);
    }
    let paged_total_bytes = pool.blocks_in_use() * block_bytes;
    let cow_copies = pool.cow_copies() - cow_before;

    let per_session_paged = paged_total_bytes as f64 / sessions as f64;
    let per_session_flat = contiguous_total_bytes as f64 / sessions as f64;
    let report = KvPoolBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        block_tokens: pool.block_tokens(),
        scaffold_len,
        suffix_len,
        sessions,
        paged_total_bytes,
        contiguous_total_bytes,
        bytes_saved_pct: (1.0 - paged_total_bytes as f64 / contiguous_total_bytes.max(1) as f64)
            * 100.0,
        sessions_per_gb_paged: 1e9 / per_session_paged.max(1.0),
        sessions_per_gb_contiguous: 1e9 / per_session_flat.max(1.0),
        fork_paged_median_us,
        fork_contiguous_median_us,
        fork_speedup: fork_contiguous_median_us / fork_paged_median_us.max(1e-9),
        prefix_hit_new_blocks,
        cow_copies,
    };
    drop(paged_fleet);

    eprintln!(
        "[bench_kvpool] {} sessions sharing a {}-token scaffold (+{} fresh): paged {} B, contiguous {} B ({:.1}% saved)",
        report.sessions,
        report.scaffold_len,
        report.suffix_len,
        report.paged_total_bytes,
        report.contiguous_total_bytes,
        report.bytes_saved_pct,
    );
    eprintln!(
        "[bench_kvpool] sessions per GB: paged {:.0}, contiguous {:.0}",
        report.sessions_per_gb_paged, report.sessions_per_gb_contiguous,
    );
    eprintln!(
        "[bench_kvpool] fork: paged {:.1} us, contiguous {:.1} us ({:.2}x)",
        report.fork_paged_median_us, report.fork_contiguous_median_us, report.fork_speedup,
    );
    eprintln!(
        "[bench_kvpool] prefix-hit fork allocated {} new blocks; {} CoW copies across {} diverging sessions",
        report.prefix_hit_new_blocks, report.cow_copies, report.sessions,
    );
    assert_eq!(
        report.prefix_hit_new_blocks, 0,
        "a prefix hit must allocate zero new KV blocks"
    );

    harness::write_bench_json("kvpool", &report, smoke)
}

//! Paged KV-pool benchmark: what block-based KV storage with zero-copy
//! prefix sharing buys over per-session contiguous caches — and what int8
//! block sealing buys on top.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_kvpool                  # both dtypes + JSON
//! cargo run --release -p chipalign-bench --bin bench_kvpool -- --smoke       # tiny sweep, no JSON
//! cargo run --release -p chipalign-bench --bin bench_kvpool -- --dtype int8  # one lane only
//! ```
//!
//! Scenario: `N` sessions share a long prompt scaffold and diverge with a
//! short fresh suffix each — the repeated-scaffold traffic the serving
//! prefix cache targets. The sweep runs once per KV dtype (`f32`, `int8`;
//! `--dtype` restricts it) on a pool of that dtype. Headline numbers per
//! lane:
//!
//! * **KV bytes / sessions-per-GB** — paged sessions alias the scaffold's
//!   blocks (one copy total, plus a copy-on-write tail block per fork),
//!   while contiguous sessions each hold a private full-window copy. Int8
//!   pools shrink every *sealed* block to i8 codes plus per-head scales
//!   (~¼ the bytes), so the shared scaffold and each session's sealed
//!   divergence block cost a fraction of their f32 birth size; the run
//!   asserts ≥ 1.8× sessions-per-GB for int8 over f32.
//! * **Fork latency** — a paged fork clones `O(blocks)` `Arc`s; a
//!   contiguous fork deep-copies every KV row.
//! * **Prefix-hit allocation** — forking the donor allocates zero new
//!   blocks until the session writes past the shared prefix (the pool's
//!   `cow_copies` counter shows the divergence copies that follow).
//!
//! Everything is seeded and each timing is the median of
//! `CHIPALIGN_BENCH_REPS` repetitions (default 7, 3 in smoke mode). The
//! full run writes `BENCH_kvpool.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_model::ArchSpec;
use chipalign_nn::{KvCache, KvDtype, KvPool, KvPoolConfig, TinyLm};
use chipalign_tensor::rng::Pcg32;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--dtype f32|int8` (or `--dtype=…`); `None` benches both lanes.
fn arg_dtype() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--dtype=") {
            return Some(v.to_string());
        }
        if a == "--dtype" {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Same substrate as `bench_prefill`: a window large enough for
/// bench-length scaffolds.
fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "bench-kvpool".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

fn prompt(len: usize) -> Vec<u32> {
    (0..len).map(|i| (4 + (i * 7) % 90) as u32).collect()
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn timed(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// One KV dtype's residency and fork numbers for the shared scenario.
#[derive(Debug, Serialize)]
struct DtypeLane {
    dtype: String,
    /// Exact KV bytes resident with the fleet alive (`KvPool::bytes_in_use`,
    /// so sealed int8 blocks count at their shrunken size, not their f32
    /// birth size).
    paged_total_bytes: usize,
    /// Marginal cost: total bytes divided by session count.
    bytes_per_session: f64,
    /// Concurrent sessions one GB of KV budget can hold at this dtype.
    sessions_per_gb: f64,
    /// Paged savings over the contiguous twin fleet, percent.
    bytes_saved_pct: f64,
    /// Median time to fork the scaffold-length donor, microseconds.
    fork_paged_median_us: f64,
    /// Blocks newly allocated by a prefix-hit fork (must be zero).
    prefix_hit_new_blocks: usize,
    /// Copy-on-write block copies performed as the sessions diverged.
    cow_copies: u64,
}

#[derive(Debug, Serialize)]
struct KvPoolBench {
    mode: String,
    reps: usize,
    /// Positions per KV block.
    block_tokens: usize,
    /// Shared scaffold length (tokens); deliberately not block-aligned so
    /// every fork's first divergent write exercises copy-on-write.
    scaffold_len: usize,
    /// Fresh suffix tokens per session after the fork; long enough to
    /// cross the next block boundary so the copied block seals.
    suffix_len: usize,
    /// Forked sessions resident at once.
    sessions: usize,
    /// Total KV bytes with one contiguous (always-f32) cache per session.
    contiguous_total_bytes: usize,
    sessions_per_gb_contiguous: f64,
    fork_contiguous_median_us: f64,
    /// One lane per KV dtype benched (`--dtype` restricts the sweep).
    dtypes: Vec<DtypeLane>,
    /// Int8 over f32 sessions-per-GB — present only when both lanes ran;
    /// the run asserts it stays ≥ 1.8.
    kv8_sessions_per_gb_ratio: Option<f64>,
}

fn run_lane(
    model: &Arc<TinyLm>,
    dtype: KvDtype,
    scaffold: &[u32],
    suffix_len: usize,
    sessions: usize,
    reps: usize,
    contiguous_total_bytes: usize,
) -> DtypeLane {
    let pool = KvPool::new(KvPoolConfig {
        block_tokens: 16,
        max_blocks: 65_536,
        dtype,
    })
    .expect("pool");
    let scaffold_len = scaffold.len();

    // Donor built once, outside every timed region. On int8 pools every
    // filled block has already sealed (and shrunk) by the time the forks
    // arrive; the tail block stays open f32 either way.
    let mut donor = KvCache::new_paged(model, &pool);
    donor.prefill(scaffold).expect("fits window");

    // Fork latency: aliasing O(blocks) Arcs, dtype-independent work.
    let mut fork_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        fork_samples.push(
            timed(|| {
                let fork = donor.fork_from(scaffold_len).expect("within donor");
                std::hint::black_box(&fork);
            })
            .as_secs_f64()
                * 1e6,
        );
    }

    // Prefix-hit allocation: a fork of the donor must cost zero blocks.
    let before = pool.blocks_in_use();
    let hit = donor.fork_from(scaffold_len).expect("within donor");
    let prefix_hit_new_blocks = pool.blocks_in_use() - before;
    drop(hit);

    // Residency: N forked sessions diverge with a fresh suffix each and
    // stay alive together. The suffix crosses the next block boundary, so
    // each session's copy-on-write block seals — on int8 pools that is
    // where the fleet's marginal bytes shrink.
    let cow_before = pool.cow_copies();
    let mut fleet = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let suffix: Vec<u32> = (0..suffix_len)
            .map(|i| (4 + (s * 13 + i * 7) % 90) as u32)
            .collect();
        let mut fork = donor.fork_from(scaffold_len).expect("within donor");
        fork.prefill_chunk(&suffix).expect("fits window");
        fleet.push(fork);
    }
    let paged_total_bytes = pool.bytes_in_use();
    let cow_copies = pool.cow_copies() - cow_before;
    drop(fleet);

    let bytes_per_session = paged_total_bytes as f64 / sessions as f64;
    DtypeLane {
        dtype: dtype.name().to_string(),
        paged_total_bytes,
        bytes_per_session,
        sessions_per_gb: 1e9 / bytes_per_session.max(1.0),
        bytes_saved_pct: (1.0 - paged_total_bytes as f64 / contiguous_total_bytes.max(1) as f64)
            * 100.0,
        fork_paged_median_us: median_us(fork_samples),
        prefix_hit_new_blocks,
        cow_copies,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 7 });
    // Scaffold ends mid-block (not a multiple of block_tokens) so each
    // fork's first write past the prefix must copy the shared tail block;
    // the suffix then crosses the next block boundary so that copy seals,
    // making the residency numbers steady-state rather than open-tail
    // transients (sealing is what shrinks int8 blocks).
    let scaffold_len = if smoke { 86 } else { 190 };
    let suffix_len = 12;
    let sessions = if smoke { 4 } else { 16 };

    let arch = bench_arch();
    let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(20_250_806)).expect("arch"));
    let scaffold = prompt(scaffold_len);

    // Contiguous twin fleet: always f32 and dtype-independent, measured
    // once. Each twin pays a private full-length cache.
    let mut flat_donor = KvCache::new(&model);
    flat_donor.prefill(&scaffold).expect("fits window");
    let mut fork_flat = Vec::with_capacity(reps);
    for _ in 0..reps {
        fork_flat.push(
            timed(|| {
                let fork = flat_donor.fork_from(scaffold_len).expect("within donor");
                std::hint::black_box(&fork);
            })
            .as_secs_f64()
                * 1e6,
        );
    }
    let fork_contiguous_median_us = median_us(fork_flat);
    let mut flat_session = flat_donor.fork_from(scaffold_len).expect("within donor");
    flat_session
        .prefill_chunk(&prompt(suffix_len))
        .expect("fits window");
    let contiguous_total_bytes = flat_session.kv_bytes() * sessions;
    drop(flat_session);

    let lane_dtypes = match arg_dtype().as_deref() {
        None => vec![KvDtype::F32, KvDtype::Int8],
        Some("f32") => vec![KvDtype::F32],
        Some("int8") => vec![KvDtype::Int8],
        Some(other) => {
            return Err(format!("unknown --dtype {other:?} (expected f32 or int8)").into())
        }
    };
    let dtypes: Vec<DtypeLane> = lane_dtypes
        .into_iter()
        .map(|dtype| {
            run_lane(
                &model,
                dtype,
                &scaffold,
                suffix_len,
                sessions,
                reps,
                contiguous_total_bytes,
            )
        })
        .collect();

    let per_session_flat = contiguous_total_bytes as f64 / sessions as f64;
    let lane_by = |name: &str| dtypes.iter().find(|l| l.dtype == name);
    let kv8_sessions_per_gb_ratio = match (lane_by("f32"), lane_by("int8")) {
        (Some(f), Some(q)) => Some(q.sessions_per_gb / f.sessions_per_gb.max(1.0)),
        _ => None,
    };
    let report = KvPoolBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        block_tokens: 16,
        scaffold_len,
        suffix_len,
        sessions,
        contiguous_total_bytes,
        sessions_per_gb_contiguous: 1e9 / per_session_flat.max(1.0),
        fork_contiguous_median_us,
        dtypes,
        kv8_sessions_per_gb_ratio,
    };

    for lane in &report.dtypes {
        eprintln!(
            "[bench_kvpool] {} sessions sharing a {}-token scaffold (+{} fresh) on a {} pool: paged {} B, contiguous {} B ({:.1}% saved)",
            report.sessions,
            report.scaffold_len,
            report.suffix_len,
            lane.dtype,
            lane.paged_total_bytes,
            report.contiguous_total_bytes,
            lane.bytes_saved_pct,
        );
        eprintln!(
            "[bench_kvpool] {}: sessions per GB {:.0} (contiguous {:.0}); fork {:.1} us (contiguous {:.1} us)",
            lane.dtype,
            lane.sessions_per_gb,
            report.sessions_per_gb_contiguous,
            lane.fork_paged_median_us,
            report.fork_contiguous_median_us,
        );
        eprintln!(
            "[bench_kvpool] {}: prefix-hit fork allocated {} new blocks; {} CoW copies across {} diverging sessions",
            lane.dtype, lane.prefix_hit_new_blocks, lane.cow_copies, report.sessions,
        );
        assert_eq!(
            lane.prefix_hit_new_blocks, 0,
            "a prefix hit must allocate zero new KV blocks ({} lane)",
            lane.dtype
        );
    }
    if let Some(ratio) = report.kv8_sessions_per_gb_ratio {
        eprintln!("[bench_kvpool] int8 over f32 sessions-per-GB: {ratio:.2}x");
        // Byte accounting is deterministic (no timing in this number), so
        // this is a hard floor, not a flaky perf gate.
        assert!(
            ratio >= 1.8,
            "int8 KV must fit at least 1.8x the sessions per GB (got {ratio:.2}x)"
        );
    }

    harness::write_bench_json("kvpool", &report, smoke)
}

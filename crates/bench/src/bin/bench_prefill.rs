//! Prefill benchmark: times the three ways a prompt window can reach the
//! KV cache — one-shot cold prefill, chunked prefill (the scheduler's
//! head-of-line fix feeds prompts in bounded chunks), and a shared-prefix
//! hit ([`chipalign_nn::KvCache::fork_from`] a donor cache, then prefill
//! only the remainder) — across several prompt lengths.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_prefill            # full run + JSON
//! cargo run --release -p chipalign-bench --bin bench_prefill -- --smoke # tiny sweep, no JSON
//! ```
//!
//! Everything is seeded (model weights from `Pcg32`, prompts from a fixed
//! formula) and each configuration's timing is the median of
//! `CHIPALIGN_BENCH_REPS` repetitions (default 7, 3 in smoke mode). Cache
//! allocation and donor construction happen outside the timed region. The
//! full run writes `BENCH_prefill.json` at the repo root, including the
//! headline prefix-hit speedup at the longest prompt and the chunking
//! overhead (which should be noise: chunked prefill does the same token
//! forwards in the same order).

use std::time::{Duration, Instant};

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_model::ArchSpec;
use chipalign_nn::{KvCache, TinyLm};
use chipalign_tensor::rng::Pcg32;

/// The scheduler's default prefill chunk size, mirrored here so the
/// chunked timing reflects what `chipalign-serve` actually does.
const CHUNK: usize = 32;
/// Suffix tokens NOT covered by the donor in the prefix-hit scenario:
/// models a repeated scaffold with a fresh question at the end.
const FRESH_SUFFIX: usize = 8;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Same substrate as `bench_batch`: a window large enough to hold
/// bench-length prompts (the `ArchSpec::tiny` window is 32 tokens).
fn bench_arch() -> ArchSpec {
    ArchSpec {
        name: "bench-prefill".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 256,
    }
}

fn prompt(len: usize) -> Vec<u32> {
    (0..len).map(|i| (4 + (i * 7) % 90) as u32).collect()
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn timed(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// One prompt-length configuration.
#[derive(Debug, Serialize)]
struct PrefillTiming {
    /// Prompt tokens prefilled.
    prompt_len: usize,
    /// Repetitions the medians are taken over.
    reps: usize,
    /// Median one-shot prefill time, microseconds.
    cold_median_us: f64,
    /// Median chunked prefill time (CHUNK-token slices), microseconds.
    chunked_median_us: f64,
    /// Chunked over cold, percent (expected ~0: same work, same order).
    chunked_overhead_pct: f64,
    /// Donor tokens reused in the prefix-hit scenario.
    prefix_reused: usize,
    /// Median fork-and-finish time on a prefix hit, microseconds.
    prefix_hit_median_us: f64,
    /// Cold over prefix-hit: what shared-prefix reuse buys.
    prefix_speedup: f64,
}

#[derive(Debug, Serialize)]
struct PrefillBench {
    mode: String,
    reps: usize,
    chunk: usize,
    timings: Vec<PrefillTiming>,
    /// Prefix-hit speedup at the longest prompt: the headline number.
    prefix_speedup_longest: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 7 });
    let lengths: &[usize] = if smoke { &[16, 32] } else { &[64, 128, 224] };

    let model = std::sync::Arc::new(
        TinyLm::new(&bench_arch(), &mut Pcg32::seed(20_250_806)).expect("arch"),
    );

    let mut timings: Vec<PrefillTiming> = Vec::new();
    for &len in lengths {
        let tokens = prompt(len);
        let reused = len.saturating_sub(FRESH_SUFFIX).max(1);
        // Donor built once, outside the timed region: the serving-path
        // analogue is a prefix snapshot already resident in the cache.
        let mut donor = KvCache::new(&model);
        donor.prefill(&tokens[..reused]).expect("fits window");

        let mut cold = Vec::with_capacity(reps);
        let mut chunked = Vec::with_capacity(reps);
        let mut prefix_hit = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut cache = KvCache::new(&model);
            cold.push(
                timed(|| {
                    cache.prefill(&tokens).expect("fits window");
                })
                .as_secs_f64()
                    * 1e6,
            );

            let mut cache = KvCache::new(&model);
            chunked.push(
                timed(|| {
                    for piece in tokens.chunks(CHUNK) {
                        cache.prefill_chunk(piece).expect("fits window");
                    }
                })
                .as_secs_f64()
                    * 1e6,
            );

            prefix_hit.push(
                timed(|| {
                    let mut fork = donor.fork_from(reused).expect("within donor");
                    fork.prefill_chunk(&tokens[reused..]).expect("fits window");
                })
                .as_secs_f64()
                    * 1e6,
            );
        }

        let cold_median_us = median_us(cold);
        let chunked_median_us = median_us(chunked);
        let prefix_hit_median_us = median_us(prefix_hit);
        timings.push(PrefillTiming {
            prompt_len: len,
            reps,
            cold_median_us,
            chunked_median_us,
            chunked_overhead_pct: (chunked_median_us / cold_median_us.max(1e-9) - 1.0) * 100.0,
            prefix_reused: reused,
            prefix_hit_median_us,
            prefix_speedup: cold_median_us / prefix_hit_median_us.max(1e-9),
        });
    }

    for t in &timings {
        eprintln!(
            "[bench_prefill] len {:>3}  cold {:>8.1} us  chunked {:>8.1} us ({:>+5.1}%)  prefix-hit {:>8.1} us ({:.2}x, {} reused)",
            t.prompt_len,
            t.cold_median_us,
            t.chunked_median_us,
            t.chunked_overhead_pct,
            t.prefix_hit_median_us,
            t.prefix_speedup,
            t.prefix_reused,
        );
    }

    let prefix_speedup_longest = timings.last().map_or(0.0, |t| t.prefix_speedup);
    eprintln!("[bench_prefill] prefix-hit speedup at longest prompt: {prefix_speedup_longest:.2}x");

    let report = PrefillBench {
        mode: if smoke { "smoke" } else { "paper" }.to_string(),
        reps,
        chunk: CHUNK,
        timings,
        prefix_speedup_longest,
    };
    harness::write_bench_json("prefill", &report, smoke)
}

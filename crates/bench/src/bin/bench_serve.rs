//! Load generator for chipalign-serve: measures batched throughput against
//! a serialized baseline and writes `BENCH_serve.json` at the repo root.
//!
//! The server hosts the paper's deliverable — the λ=0.6 geodesic merge of
//! the EDA and instruct models — and the generator drives it twice with
//! identical request sets: once strictly serialized (one request in flight
//! at a time, the no-batching baseline) and once with every session
//! submitted concurrently, which is what continuous batching exists for.
//!
//! ```text
//! CHIPALIGN_QUALITY=smoke cargo run --release -p chipalign-bench --bin bench_serve
//! cargo run --release -p chipalign-bench --bin bench_serve -- --smoke  # tiny load, no JSON
//! ```
//!
//! `--smoke` follows the shared perf-binary convention: a smoke-quality
//! zoo, a tiny session count, and no `BENCH_serve.json` written.
//!
//! Environment knobs: `CHIPALIGN_QUALITY` (`smoke`/`paper`),
//! `CHIPALIGN_SERVE_WORKERS` (default 4), `CHIPALIGN_SERVE_SESSIONS`
//! (default 32, 6 in smoke mode), `CHIPALIGN_SERVE_TOKENS` (per-request
//! budget, default 48, 12 in smoke mode), `CHIPALIGN_SERVE_MAX_BATCH`
//! (sessions advanced together per slice, default 8; 1 disables
//! cross-session batching).

use std::time::Instant;

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_serve::{
    Client, GenerateRequest, ModelRegistry, SchedulerConfig, Server, ServerConfig,
};

const MERGE_SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Debug, Serialize)]
struct PhaseReport {
    /// Requests completed.
    requests: usize,
    /// Total new tokens produced.
    tokens: u64,
    /// Wall-clock duration of the phase in milliseconds.
    wall_ms: u64,
    /// Completed requests per wall-clock second.
    requests_per_sec: f64,
    /// New tokens per wall-clock second.
    tokens_per_sec: f64,
    /// Exact median per-request latency in milliseconds.
    latency_p50_ms: f64,
    /// Exact 95th-percentile per-request latency in milliseconds.
    latency_p95_ms: f64,
}

#[derive(Debug, Serialize)]
struct ServeBench {
    model: String,
    quality: String,
    workers: usize,
    sessions: usize,
    tokens_per_request: usize,
    serialized: PhaseReport,
    batched: PhaseReport,
    /// Batched tokens/sec over serialized tokens/sec.
    speedup: f64,
    server_metrics: chipalign_serve::MetricsSnapshot,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

fn phase_report(latencies_ms: Vec<f64>, tokens: u64, wall_ms: u64) -> PhaseReport {
    let mut sorted = latencies_ms;
    sorted.sort_by(f64::total_cmp);
    let wall_s = (wall_ms as f64 / 1e3).max(1e-9);
    PhaseReport {
        requests: sorted.len(),
        tokens,
        wall_ms,
        requests_per_sec: sorted.len() as f64 / wall_s,
        tokens_per_sec: tokens as f64 / wall_s,
        latency_p50_ms: percentile(&sorted, 0.50),
        latency_p95_ms: percentile(&sorted, 0.95),
    }
}

fn request_for(i: usize, budget: usize) -> GenerateRequest {
    let mut req = GenerateRequest::greedy(
        MERGE_SPEC,
        &format!("Q:describe the timing path {i};A:"),
        budget,
    );
    // Fixed-length generations make the two phases decode identical work.
    req.stop_at_eos = false;
    req
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    if smoke {
        // --smoke implies a smoke-quality zoo unless explicitly overridden.
        if std::env::var("CHIPALIGN_QUALITY").is_err() {
            std::env::set_var("CHIPALIGN_QUALITY", "smoke");
        }
    }
    let workers = env_usize("CHIPALIGN_SERVE_WORKERS", 4);
    let sessions = env_usize("CHIPALIGN_SERVE_SESSIONS", if smoke { 6 } else { 32 });
    let budget = env_usize("CHIPALIGN_SERVE_TOKENS", if smoke { 12 } else { 48 });
    let max_batch = env_usize("CHIPALIGN_SERVE_MAX_BATCH", 8);
    let quality = std::env::var("CHIPALIGN_QUALITY").unwrap_or_else(|_| "paper".to_string());

    let zoo = harness::paper_zoo()?;
    let registry = ModelRegistry::new(zoo);
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers,
                max_sessions: sessions.max(1) * 2,
                slice_tokens: 8,
                stall_slices: 32,
                max_batch,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: budget.max(1),
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry,
    )?;
    let addr = server.local_addr();
    eprintln!("[bench_serve] serving on {addr} ({workers} workers)");

    // Materialize the merge once up front so neither phase pays for
    // training or merging.
    let mut admin = Client::connect(addr)?;
    let model_key = admin.load(MERGE_SPEC)?;
    eprintln!("[bench_serve] warmed {model_key}");

    // Phase 1: serialized baseline — one request in flight at a time.
    let start = Instant::now();
    let mut serialized_latencies = Vec::with_capacity(sessions);
    let mut serialized_tokens = 0u64;
    for i in 0..sessions {
        let t0 = Instant::now();
        let generation = admin.generate(request_for(i, budget))?;
        serialized_latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        serialized_tokens += generation.tokens as u64;
    }
    let serialized = phase_report(
        serialized_latencies,
        serialized_tokens,
        start.elapsed().as_millis() as u64,
    );
    eprintln!(
        "[bench_serve] serialized: {:.1} tok/s, p95 {:.0} ms",
        serialized.tokens_per_sec, serialized.latency_p95_ms
    );

    // Phase 2: continuous batching — every session in flight at once, one
    // connection per session, same request set.
    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            std::thread::spawn(move || -> Result<(f64, u64), chipalign_serve::ServeError> {
                let mut client = Client::connect(addr)?;
                let t0 = Instant::now();
                let generation = client.generate(request_for(i, budget))?;
                Ok((t0.elapsed().as_secs_f64() * 1e3, generation.tokens as u64))
            })
        })
        .collect();
    let mut batched_latencies = Vec::with_capacity(sessions);
    let mut batched_tokens = 0u64;
    for h in handles {
        let (latency_ms, tokens) = h.join().expect("client thread")?;
        batched_latencies.push(latency_ms);
        batched_tokens += tokens;
    }
    let batched = phase_report(
        batched_latencies,
        batched_tokens,
        start.elapsed().as_millis() as u64,
    );
    eprintln!(
        "[bench_serve] batched:    {:.1} tok/s, p95 {:.0} ms",
        batched.tokens_per_sec, batched.latency_p95_ms
    );

    let server_metrics = admin.metrics()?;
    server.shutdown();

    // How full the batches actually ran: occupancy histogram entry `n`
    // counts slices that advanced exactly `n` sessions together.
    let occupancy: String = server_metrics
        .batch_occupancy
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(n, c)| format!("{n}:{c}"))
        .collect::<Vec<_>>()
        .join(" ");
    eprintln!(
        "[bench_serve] batched slices {} (max_batch {max_batch}), occupancy [{occupancy}]",
        server_metrics.batched_slices
    );
    eprintln!(
        "[bench_serve] kv pool: {} blocks in use ({} B), {} free, {} CoW copies, {} evictions",
        server_metrics.kv_blocks_in_use,
        server_metrics.kv_bytes_in_use,
        server_metrics.kv_blocks_free,
        server_metrics.cow_copies,
        server_metrics.pool_evictions
    );
    for row in &server_metrics.kv_pool_dtypes {
        eprintln!(
            "[bench_serve] kv pool [{}]: {} blocks in use, {} free, {} B resident",
            row.dtype, row.blocks_in_use, row.blocks_free, row.bytes_in_use
        );
    }

    let speedup = batched.tokens_per_sec / serialized.tokens_per_sec.max(1e-9);
    let report = ServeBench {
        model: model_key,
        quality,
        workers,
        sessions,
        tokens_per_request: budget,
        serialized,
        batched,
        speedup,
        server_metrics,
    };
    eprintln!("[bench_serve] speedup {speedup:.2}x");
    harness::write_bench_json("serve", &report, smoke)
}

//! Speculative-decoding benchmark: sweeps draft choice × draft length `k`
//! and reports decode throughput plus draft-acceptance rate, writing
//! `BENCH_spec.json` at the repo root.
//!
//! Two draft families are swept, both against the paper's deliverable
//! (the λ=0.6 geodesic merge of the EDA and instruct models):
//!
//! - **merge-family draft**: the instruct ingredient drafts for the
//!   merge it was blended into — the zoo's free source of agreeing
//!   proposals, since the merge sits on the geodesic between its
//!   ingredients.
//! - **self-draft**: the target truncated to its first layer
//!   ([`TinyLm::truncate_layers`]) — the classic cheap-draft shape, where
//!   the draft forward costs a fraction of the target's.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin bench_spec            # full sweep + JSON
//! cargo run --release -p chipalign-bench --bin bench_spec -- --smoke # k ∈ {2,4}, no JSON
//! ```
//!
//! Every configuration decodes the *same* greedy transcript: the harness
//! asserts the speculative token stream is byte-identical to the plain
//! [`StepDecoder`] stream (that is the whole point of verified
//! speculation), and that the merge-family pair accepts at least one
//! draft token (the zoo's distribution-affinity premise). Timings
//! are medians of `CHIPALIGN_BENCH_REPS` repetitions (default 7, 3 in
//! smoke mode); session setup and prompt prefill stay outside the timed
//! region.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use chipalign_bench::harness;
use chipalign_nn::generate::{GenerateConfig, StepDecoder};
use chipalign_nn::{SpecDecoder, TinyLm};
use chipalign_serve::ModelRegistry;
use chipalign_tensor::rng::Pcg32;

const MERGE_SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";
const DRAFT_SPEC: &str = "instruct-qwen";

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed (draft, k) configuration.
#[derive(Debug, Serialize)]
struct SpecTiming {
    /// Human label for the draft choice.
    draft: String,
    /// Draft tokens proposed per speculative round.
    k: usize,
    /// New tokens decoded per repetition (identical across configurations).
    tokens: usize,
    /// Repetitions the medians are taken over.
    reps: usize,
    /// Median plain (non-speculative) decode wall time, microseconds.
    plain_median_us: f64,
    /// Median speculative decode wall time, microseconds.
    spec_median_us: f64,
    /// Plain tokens per second at the median.
    plain_tokens_per_sec: f64,
    /// Speculative tokens per second at the median.
    spec_tokens_per_sec: f64,
    /// Speculative over plain tokens/sec.
    speedup: f64,
    /// Draft tokens proposed across one repetition.
    proposed: u64,
    /// Draft tokens accepted across one repetition.
    accepted: u64,
    /// accepted / proposed.
    acceptance_rate: f64,
    /// Speculative rounds that fell back to plain stepping.
    fallbacks: u64,
}

#[derive(Debug, Serialize)]
struct SpecBench {
    target: String,
    quality: String,
    reps: usize,
    tokens_per_run: usize,
    prompt_len: usize,
    timings: Vec<SpecTiming>,
}

/// Decodes `budget` greedy tokens from `prompt` without speculation and
/// returns (transcript, wall time).
fn run_plain(
    target: &Arc<TinyLm>,
    prompt: &[u32],
    cfg: &GenerateConfig,
) -> Result<(Vec<u32>, f64), Box<dyn std::error::Error>> {
    let mut session = StepDecoder::new(target, prompt, cfg)?;
    let mut tokens = Vec::with_capacity(cfg.max_new_tokens);
    let t0 = Instant::now();
    while let Some(next) = session.step()? {
        tokens.push(next);
    }
    Ok((tokens, t0.elapsed().as_secs_f64() * 1e6))
}

/// Decodes the same transcript speculatively and returns
/// (transcript, wall time, stats for this run).
fn run_spec(
    target: &Arc<TinyLm>,
    draft: &Arc<TinyLm>,
    k: usize,
    prompt: &[u32],
    cfg: &GenerateConfig,
) -> Result<(Vec<u32>, f64, chipalign_nn::SpecStats), Box<dyn std::error::Error>> {
    let mut session = SpecDecoder::new(StepDecoder::new(target, prompt, cfg)?, draft, k)?;
    let mut tokens = Vec::with_capacity(cfg.max_new_tokens);
    let t0 = Instant::now();
    while let Some(next) = session.step()? {
        tokens.push(next);
    }
    let elapsed_us = t0.elapsed().as_secs_f64() * 1e6;
    Ok((tokens, elapsed_us, session.take_stats()))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = harness::smoke_mode();
    if smoke && std::env::var("CHIPALIGN_QUALITY").is_err() {
        std::env::set_var("CHIPALIGN_QUALITY", "smoke");
    }
    let quality = std::env::var("CHIPALIGN_QUALITY").unwrap_or_else(|_| "paper".to_string());
    let reps = env_usize("CHIPALIGN_BENCH_REPS", if smoke { 3 } else { 7 });
    let budget = env_usize("CHIPALIGN_SPEC_TOKENS", if smoke { 16 } else { 64 });
    let ks: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };

    let zoo = harness::paper_zoo()?;
    let registry = ModelRegistry::new(zoo);
    let (target_key, target) = registry.resolve_str(MERGE_SPEC)?;
    let (_, merge_draft) = registry.resolve_str(DRAFT_SPEC)?;
    let self_draft = Arc::new(target.truncate_layers(1)?);
    eprintln!(
        "[bench_spec] target {target_key}, {} tokens/run, {reps} reps, k in {ks:?}",
        budget
    );

    // A fixed seeded prompt keeps every configuration decoding the exact
    // same work; vocab ids stay clear of the EOS band at the bottom.
    let mut rng = Pcg32::seed(harness::BENCH_SEED);
    let vocab = target.arch().vocab_size as u32;
    let prompt: Vec<u32> = (0..8).map(|_| 4 + rng.next_u32() % (vocab - 8)).collect();
    let cfg = GenerateConfig {
        max_new_tokens: budget,
        stop_at_eos: false,
        ..GenerateConfig::default()
    };

    // The merge-family pair must show real acceptance (the zoo's whole
    // premise: a merge and its ingredient agree heavily in distribution);
    // the heavily-truncated self-draft is reported but not gated — a
    // one-layer prefix of a tiny model may legitimately never agree.
    let drafts: Vec<(String, Arc<TinyLm>, bool)> = vec![
        (format!("merge-family ({DRAFT_SPEC})"), merge_draft, true),
        ("self-draft (1 layer)".to_string(), self_draft, false),
    ];

    let reference = run_plain(&target, &prompt, &cfg)?.0;
    let mut timings = Vec::new();
    for (label, draft, must_accept) in &drafts {
        for &k in ks {
            let mut plain_us = Vec::with_capacity(reps);
            let mut spec_us = Vec::with_capacity(reps);
            let mut stats = chipalign_nn::SpecStats::default();
            for _ in 0..reps {
                let (plain_tokens, us) = run_plain(&target, &prompt, &cfg)?;
                assert_eq!(
                    plain_tokens, reference,
                    "plain decode must be deterministic"
                );
                plain_us.push(us);

                let (spec_tokens, us, s) = run_spec(&target, draft, k, &prompt, &cfg)?;
                assert_eq!(
                    spec_tokens, reference,
                    "speculative transcript diverged from plain decode ({label}, k={k})"
                );
                spec_us.push(us);
                stats = s;
            }
            assert!(
                !*must_accept || stats.accepted > 0,
                "no draft tokens accepted ({label}, k={k})"
            );
            let plain_median_us = median(plain_us);
            let spec_median_us = median(spec_us);
            let acceptance_rate = stats.accepted as f64 / (stats.proposed as f64).max(1.0);
            let timing = SpecTiming {
                draft: label.clone(),
                k,
                tokens: budget,
                reps,
                plain_median_us,
                spec_median_us,
                plain_tokens_per_sec: budget as f64 / (plain_median_us / 1e6).max(1e-9),
                spec_tokens_per_sec: budget as f64 / (spec_median_us / 1e6).max(1e-9),
                speedup: plain_median_us / spec_median_us.max(1e-9),
                proposed: stats.proposed,
                accepted: stats.accepted,
                acceptance_rate,
                fallbacks: stats.fallbacks,
            };
            eprintln!(
                "[bench_spec] {label} k={k}: {:.1} tok/s spec vs {:.1} plain ({:.2}x), \
                 acceptance {:.0}% ({}/{})",
                timing.spec_tokens_per_sec,
                timing.plain_tokens_per_sec,
                timing.speedup,
                100.0 * acceptance_rate,
                stats.accepted,
                stats.proposed
            );
            timings.push(timing);
        }
    }

    let report = SpecBench {
        target: target_key,
        quality,
        reps,
        tokens_per_run: budget,
        prompt_len: prompt.len(),
        timings,
    };
    harness::write_bench_json("spec", &report, smoke)
}

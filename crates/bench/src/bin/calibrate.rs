//! Mechanism calibration: verifies that the synthetic world reproduces the
//! paper's capability split before any table is generated.
//!
//! Trains one backbone's base → instruct → EDA chain plus the merged model
//! and prints the diagnostic grid:
//!
//! * instruction model: high tag compliance, low chip ROUGE;
//! * EDA model: high chip ROUGE on untagged prompts, degraded tag
//!   compliance;
//! * ChipAlign merge: both.
//!
//! Run with `CHIPALIGN_QUALITY=smoke` for a fast sanity pass.

use chipalign_bench::harness;
use chipalign_data::ifeval_bench;
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_eval::rouge::rouge_l;
use chipalign_pipeline::evalkit::{mean, respond};
use chipalign_pipeline::experiments::{ifeval, merged_variants};
use chipalign_pipeline::zoo::{Backbone, ZooModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let backbone = Backbone::LlamaTiny;

    let instruct = zoo.model(ZooModel::Instruct(backbone))?;
    let eda = zoo.model(ZooModel::Eda(backbone))?;
    let merged = merged_variants(&zoo, backbone)?;
    let chipalign = &merged
        .iter()
        .find(|(n, _)| n.ends_with("ChipAlign"))
        .expect("ChipAlign variant")
        .1;

    let bench = OpenRoadBenchmark::generate(harness::BENCH_SEED);
    let triplets = &bench.triplets[..30.min(bench.triplets.len())];
    let prompts = ifeval_bench::generate(harness::BENCH_SEED);
    let if_prompts = &prompts[..100.min(prompts.len())];

    println!("model                 tagged-rouge  plain-rouge  ifeval-strict");
    for (name, model) in [
        ("instruct", &instruct),
        ("eda", &eda),
        ("chipalign", chipalign),
    ] {
        // Tagged QA (the real benchmark condition).
        let mut tagged = Vec::new();
        let mut plain = Vec::new();
        for t in triplets {
            let r = respond(model, &t.prompt())?;
            tagged.push(rouge_l(&r, &t.golden).f1);
            // Plain condition: same triplet without tags, scored against
            // the untagged answer.
            let plain_prompt = chipalign_data::prompt::format_prompt(&t.context, &t.question, &[]);
            let plain_golden = {
                // Undo the tag by checking against the raw fact answer via
                // the context (answer is embedded in the doc minus the
                // trailing period).
                t.context.trim_end_matches('.').to_string()
            };
            let r2 = respond(model, &plain_prompt)?;
            plain.push(rouge_l(&r2, &plain_golden).f1);
        }
        let report = ifeval::eval_subset(model, if_prompts)?;
        println!(
            "{name:<22} {:>10.3} {:>12.3} {:>13.3}",
            mean(&tagged),
            mean(&plain),
            report.prompt_strict
        );
    }

    // Show a couple of concrete responses for eyeballing.
    for t in &triplets[..3] {
        println!("\nprompt : {}", t.prompt());
        println!("golden : {}", t.golden);
        println!("  instruct : {}", respond(&instruct, &t.prompt())?);
        println!("  eda      : {}", respond(&eda, &t.prompt())?);
        println!("  chipalign: {}", respond(chipalign, &t.prompt())?);
    }
    Ok(())
}

//! Regenerates **Figure 2**: the normalized capability overview (radar
//! chart data) for LLaMA2-70B-{Chat, ChipNeMo, ChipAlign}.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin fig2_radar
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::radar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = radar::fig2(&zoo, harness::BENCH_SEED)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("fig2.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());
    Ok(())
}

//! Regenerates **Figure 5**: qualitative OpenROAD QA comparison — the
//! instruct, EDA, and ChipAlign models answering the same GUI-category
//! question side by side.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin fig5_qualitative
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::qualitative;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let comparison = qualitative::fig5(&zoo, harness::BENCH_SEED)?;
    println!("Figure 5: OpenROAD QA qualitative comparison\n");
    println!("{}", comparison.render());
    Ok(())
}

//! Regenerates **Figure 6**: qualitative industrial (BUILD category)
//! comparison with grader scores for Chat / ChipNeMo / ChipAlign.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin fig6_qualitative
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::qualitative;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let comparison = qualitative::fig6(&zoo, harness::BENCH_SEED)?;
    println!("Figure 6: industrial chip QA qualitative comparison\n");
    println!("{}", comparison.render());
    Ok(())
}

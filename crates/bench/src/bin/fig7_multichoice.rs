//! Regenerates **Figure 7**: multi-choice chip QA accuracy (EDA scripts /
//! bugs / circuits) for the large trio.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin fig7_multichoice
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::multichoice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = multichoice::fig7(&zoo, harness::BENCH_SEED)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("fig7.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());
    Ok(())
}

//! Regenerates **Figure 8**: sensitivity of OpenROAD QA ROUGE-L to the
//! interpolation coefficient λ for both backbones.
//!
//! Pass `--ablate` to additionally print the raw-SLERP and
//! arithmetic-norm-restoration ablations at λ = 0.6 (the design choices
//! called out in DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin fig8_lambda_sweep [-- --ablate]
//! ```

use chipalign_bench::harness;
use chipalign_merge::{GeodesicMerge, Merger, NormRestore};
use chipalign_nn::TinyLm;
use chipalign_pipeline::experiments::openroad::{ContextMode, OpenRoadEval};
use chipalign_pipeline::experiments::{openroad, PAPER_LAMBDA};
use chipalign_pipeline::report::TextTable;
use chipalign_pipeline::zoo::{Backbone, ZooModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = openroad::fig8(&zoo, harness::BENCH_SEED, 11)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("fig8.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());

    if std::env::args().any(|a| a == "--ablate") {
        let eval = OpenRoadEval::new(harness::BENCH_SEED);
        let mut ablation = TextTable::new(
            "Ablation at lambda=0.6: geometric variants (All, golden context)",
            &["Qwen1.5-14B", "LLaMA3-8B"],
            3,
        );
        let variants: Vec<(&str, GeodesicMerge)> = vec![
            ("ChipAlign (paper)", GeodesicMerge::new(PAPER_LAMBDA)?),
            ("Raw SLERP", GeodesicMerge::raw_slerp(PAPER_LAMBDA)?),
            (
                "Arithmetic norm restore",
                GeodesicMerge::new(PAPER_LAMBDA)?.with_norm_restore(NormRestore::Arithmetic),
            ),
        ];
        for (label, merger) in variants {
            let mut row = Vec::new();
            for backbone in [Backbone::QwenTiny, Backbone::LlamaTiny] {
                let instruct = zoo.model(ZooModel::Instruct(backbone))?.to_checkpoint()?;
                let eda = zoo.model(ZooModel::Eda(backbone))?.to_checkpoint()?;
                let merged = merger.merge_pair(&eda, &instruct)?;
                let model = TinyLm::from_checkpoint(&merged)?;
                let scores = eval.eval_model(&model, ContextMode::Golden)?;
                row.push(scores.all);
            }
            ablation.push_row(label, row);
        }
        println!("{}", ablation.render());
        let out = harness::results_dir()?.join("fig8_ablation.json");
        ablation.save_json(&out)?;
        println!("saved {}", out.display());
    }
    Ok(())
}

//! Pretraining probe: how much pretraining does the base need before
//! copy/extraction generalises to unseen (chip) vocabulary?
//!
//! Trains bases at increasing step counts and reports extraction ROUGE on
//! (a) held-out random extraction QA and (b) the chip benchmark facts —
//! neither seen in pretraining.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin probe_base [steps...]
//! ```

use chipalign_data::corpus::{extraction_qa, general_corpus};
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_data::prompt::format_prompt;
use chipalign_eval::rouge::rouge_l;
use chipalign_nn::train::{train, TrainConfig};
use chipalign_nn::{AdamConfig, TinyLm};
use chipalign_pipeline::evalkit::{mean, respond};
use chipalign_pipeline::zoo::{pretrain_example, Backbone, Quality};
use chipalign_tensor::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let steps = if steps.is_empty() {
        vec![2500, 5000]
    } else {
        steps
    };

    let arch = Backbone::LlamaTiny.arch(Quality::Paper);
    let bench = OpenRoadBenchmark::generate(2025);
    let chip_triplets = &bench.triplets[..30];
    let mut eval_rng = Pcg32::seed(999);
    let heldout: Vec<(String, String, String)> =
        (0..30).map(|_| extraction_qa(&mut eval_rng)).collect();

    for &n_steps in &steps {
        let mut model = TinyLm::new(&arch, &mut Pcg32::seed(1))?;
        let mut data_rng = Pcg32::seed(50);
        let docs = general_corpus(4000, &mut data_rng);
        let examples: Vec<_> = docs.iter().map(|d| pretrain_example(d)).collect();
        let started = std::time::Instant::now();
        train(
            &mut model,
            &examples,
            &TrainConfig {
                steps: n_steps,
                batch_size: 8,
                adam: AdamConfig {
                    lr: 3e-3,
                    ..AdamConfig::default()
                },
                seed: 42,
            },
        )?;
        let train_secs = started.elapsed().as_secs_f32();

        let mut heldout_scores = Vec::new();
        for (ctx, q, a) in &heldout {
            let r = respond(&model, &format_prompt(ctx, q, &[]))?;
            heldout_scores.push(rouge_l(&r, a).f1);
        }
        let mut chip_scores = Vec::new();
        for t in chip_triplets {
            let plain_golden = t.context.trim_end_matches('.');
            let r = respond(&model, &format_prompt(&t.context, &t.question, &[]))?;
            chip_scores.push(rouge_l(&r, plain_golden).f1);
        }
        println!(
            "steps {n_steps:>5} ({train_secs:>5.0}s): heldout-extraction {:.3}, chip-extraction {:.3}",
            mean(&heldout_scores),
            mean(&chip_scores)
        );
        // Show a sample so quality is eyeballable.
        let t = &chip_triplets[0];
        let r = respond(&model, &format_prompt(&t.context, &t.question, &[]))?;
        println!("  sample: {} -> {r}", t.question);
    }
    Ok(())
}

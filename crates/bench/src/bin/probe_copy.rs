//! Induction probe: can the architecture learn pure copy-from-context at
//! all, and how does fidelity scale with width/depth/steps?
//!
//! Trains on a *copy-only* corpus (`C:<random>;Q:say it;A:<random>`) and
//! measures verbatim-copy ROUGE on fresh random phrases and on chip
//! documentation sentences.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin probe_copy [d_model n_layers steps]...
//! ```

use chipalign_data::corpus::random_phrase;
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_data::prompt::format_prompt;
use chipalign_eval::rouge::rouge_l;
use chipalign_model::ArchSpec;
use chipalign_nn::train::{train, TrainConfig};
use chipalign_nn::{AdamConfig, TinyLm};
use chipalign_pipeline::evalkit::{mean, respond};
use chipalign_pipeline::zoo::pretrain_example;
use chipalign_tensor::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let configs: Vec<(usize, usize, usize)> = if args.len() >= 3 {
        args.chunks(3).map(|c| (c[0], c[1], c[2])).collect()
    } else {
        vec![(48, 2, 3000), (64, 2, 3000), (64, 3, 3000)]
    };

    let bench = OpenRoadBenchmark::generate(2025);
    for (d_model, n_layers, steps) in configs {
        let arch = ArchSpec {
            name: format!("copy-d{d_model}-l{n_layers}"),
            vocab_size: 99,
            d_model,
            n_layers,
            n_heads: 4,
            d_ff: d_model * 2,
            max_seq_len: 320,
        };
        let mut model = TinyLm::new(&arch, &mut Pcg32::seed(1))?;
        // Copy-only corpus.
        let mut rng = Pcg32::seed(5);
        let docs: Vec<String> = (0..4000)
            .map(|_| {
                let phrase = random_phrase(&mut rng, 3, 6);
                format!("{}{phrase}", format_prompt(&phrase, "say it", &[]))
            })
            .collect();
        let examples: Vec<_> = docs.iter().map(|d| pretrain_example(d)).collect();
        let started = std::time::Instant::now();
        train(
            &mut model,
            &examples,
            &TrainConfig {
                steps,
                batch_size: 8,
                adam: AdamConfig {
                    lr: 3e-3,
                    ..AdamConfig::default()
                },
                seed: 42,
            },
        )?;
        let secs = started.elapsed().as_secs_f32();

        // Copy fidelity on fresh random phrases.
        let mut eval_rng = Pcg32::seed(777);
        let mut fresh = Vec::new();
        for _ in 0..30 {
            let phrase = random_phrase(&mut eval_rng, 3, 6);
            let out = respond(&model, &format_prompt(&phrase, "say it", &[]))?;
            fresh.push(rouge_l(&out, &phrase).f1);
        }
        // Copy fidelity on chip documentation (fully out of distribution).
        let mut chip = Vec::new();
        for t in &bench.triplets[..20] {
            let target = t.context.trim_end_matches('.');
            let out = respond(&model, &format_prompt(target, "say it", &[]))?;
            chip.push(rouge_l(&out, target).f1);
        }
        println!(
            "d={d_model} L={n_layers} steps={steps} ({secs:.0}s): fresh-copy {:.3}, chip-copy {:.3}",
            mean(&fresh),
            mean(&chip)
        );
        let demo = random_phrase(&mut eval_rng, 4, 4);
        let out = respond(&model, &format_prompt(&demo, "say it", &[]))?;
        println!("  sample: {demo:?} -> {out:?}");
    }
    Ok(())
}

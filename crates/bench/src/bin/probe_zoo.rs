//! Quick diagnostics for cached zoo models: tagged/plain extraction and
//! IFEval on small subsets, plus sample responses.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin probe_zoo -- instruct-qwen eda-qwen
//! ```

use chipalign_bench::harness;
use chipalign_data::ifeval_bench;
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_eval::rouge::rouge_l;
use chipalign_model::format;
use chipalign_nn::TinyLm;
use chipalign_pipeline::evalkit::{mean, respond};
use chipalign_pipeline::experiments::ifeval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let slugs: Vec<String> = std::env::args().skip(1).collect();
    let bench = OpenRoadBenchmark::generate(harness::BENCH_SEED);
    let triplets = &bench.triplets[..25];
    let prompts = ifeval_bench::generate(harness::BENCH_SEED);
    let if_prompts = &prompts[..60];

    for slug in &slugs {
        let path = harness::zoo_dir().join(format!("{slug}-paper-s{}.calt", harness::BENCH_SEED));
        if !path.exists() {
            println!("{slug}: not cached at {}", path.display());
            continue;
        }
        let model = TinyLm::from_checkpoint(&format::load(&path)?)?;
        let mut tagged = Vec::new();
        for t in triplets {
            let r = respond(&model, &t.prompt())?;
            tagged.push(rouge_l(&r, &t.golden).f1);
        }
        let report = ifeval::eval_subset(&model, if_prompts)?;
        println!(
            "{slug:<16} tagged-rouge {:.3}  ifeval-strict {:.3}",
            mean(&tagged),
            report.prompt_strict
        );
        let t = &triplets[0];
        println!("  q: {}", t.prompt());
        println!("  golden: {}", t.golden);
        println!("  answer: {}", respond(&model, &t.prompt())?);
    }
    Ok(())
}

//! Regenerates **Table 1**: ROUGE-L scores on the OpenROAD QA benchmark —
//! golden-context and RAG-context columns, three categories plus "All",
//! for both backbones and every merging method.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin table1_openroad_qa
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::openroad;
use chipalign_pipeline::zoo::Backbone;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = openroad::table1(&zoo, harness::BENCH_SEED)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("table1.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());

    // Is the headline margin real? Paired bootstrap against the strongest
    // merging baseline on the golden-context benchmark.
    for backbone in [Backbone::QwenTiny, Backbone::LlamaTiny] {
        let r = openroad::chipalign_vs_soup_significance(&zoo, backbone, harness::BENCH_SEED)?;
        println!(
            "{}: ChipAlign {:.3} vs ModelSoup {:.3} (delta {:+.3}, p = {:.3}, {} resamples)",
            backbone.paper_name(),
            r.mean_a,
            r.mean_b,
            r.delta,
            r.p_value,
            r.resamples
        );
    }
    Ok(())
}

//! Regenerates **Table 2**: rubric-graded scores on the industrial chip QA
//! benchmark — ARCH/BUILD/LSF/TESTGEN + All, single and multi turn, for
//! LLaMA2-70B-{Chat, ChipNeMo, ChipAlign} stand-ins.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin table2_industrial_qa
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::industrial;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = industrial::table2(&zoo, harness::BENCH_SEED)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("table2.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());
    Ok(())
}

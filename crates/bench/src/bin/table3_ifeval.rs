//! Regenerates **Table 3**: instruction-following accuracy on the
//! IFEval-style benchmark — strict/loose at prompt and instruction level
//! for the paper's six models.
//!
//! ```text
//! cargo run --release -p chipalign-bench --bin table3_ifeval
//! ```

use chipalign_bench::harness;
use chipalign_pipeline::experiments::ifeval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = harness::paper_zoo()?;
    let table = ifeval::table3(&zoo, harness::BENCH_SEED)?;
    println!("{}", table.render());
    let out = harness::results_dir()?.join("table3.json");
    table.save_json(&out)?;
    println!("saved {}", out.display());
    Ok(())
}

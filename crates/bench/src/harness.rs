//! Shared setup for the experiment binaries.

use std::path::PathBuf;

use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_pipeline::PipelineError;

/// The seed every experiment binary uses, so tables are mutually
/// consistent.
pub const BENCH_SEED: u64 = 2025;

/// Resolves the on-disk zoo cache directory (`artifacts/zoo` under the
/// workspace root, overridable with `CHIPALIGN_ZOO_DIR`).
#[must_use]
pub fn zoo_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CHIPALIGN_ZOO_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|p| p.join("artifacts/zoo"))
        .unwrap_or_else(|| PathBuf::from("artifacts/zoo"))
}

/// Builds the paper-quality zoo backed by the on-disk cache.
///
/// Respects `CHIPALIGN_QUALITY=smoke` for quick dry runs.
///
/// # Errors
///
/// Propagates cache-directory creation failures.
pub fn paper_zoo() -> Result<Zoo, PipelineError> {
    let quality = match std::env::var("CHIPALIGN_QUALITY").as_deref() {
        Ok("smoke") => Quality::Smoke,
        _ => Quality::Paper,
    };
    Zoo::new(ZooConfig {
        quality,
        seed: BENCH_SEED,
        cache_dir: Some(zoo_dir()),
    })
}

/// Resolves the workspace root (the directory holding `artifacts/`).
#[must_use]
pub fn workspace_root() -> PathBuf {
    zoo_dir()
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Whether the binary was invoked with `--smoke`: tiny shapes, and no
/// `BENCH_*.json` is written (so CI smoke runs never clobber the
/// committed full-run reports). Every perf binary shares this flag.
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Writes `BENCH_<name>.json` for a full run, or skips it in smoke mode.
///
/// The destination is the workspace root, overridable with
/// `CHIPALIGN_BENCH_OUT` (a directory) — the shared output-path
/// convention for every perf binary.
///
/// # Errors
///
/// Propagates serialization and filesystem failures.
pub fn write_bench_json<T: serde::Serialize>(
    name: &str,
    report: &T,
    smoke: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    if smoke {
        eprintln!("[bench_{name}] smoke mode: skipping BENCH_{name}.json");
        return Ok(());
    }
    let dir = match std::env::var("CHIPALIGN_BENCH_OUT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => workspace_root(),
    };
    std::fs::create_dir_all(&dir)?;
    let out = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&out, serde_json::to_string_pretty(report)?)?;
    println!("wrote {}", out.display());
    Ok(())
}

/// Resolves the results directory (`artifacts/results`), creating it.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn results_dir() -> Result<PathBuf, PipelineError> {
    let dir = zoo_dir()
        .parent()
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("artifacts/results"));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_dir_is_under_artifacts() {
        let dir = zoo_dir();
        assert!(dir.to_string_lossy().contains("artifacts"));
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir().expect("create");
        assert!(dir.exists());
    }
}

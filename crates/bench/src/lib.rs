//! Benchmark harness for the ChipAlign reproduction.
//!
//! This crate hosts two things:
//!
//! * **Experiment binaries** (`src/bin/`) — one per paper table and figure,
//!   each printing the same rows/series the paper reports. Run e.g.
//!   `cargo run --release -p chipalign-bench --bin table1_openroad_qa`.
//!   All binaries accept the zoo cache under `artifacts/zoo/` and train the
//!   model zoo on first use.
//! * **Criterion benches** (`benches/`) — microbenchmarks backing the
//!   paper's §III-C complexity analysis (merge time vs parameter count,
//!   method-vs-method throughput) and the substrate hot paths (ROUGE-L,
//!   BM25, forward/backward, decoding).
//!
//! Three diagnostic binaries document how the reproduction was calibrated
//! (see DESIGN.md §6): `calibrate` (the capability-split grid for one
//! backbone), `probe_copy` (does induction/copying form at a given
//! width/depth?), `probe_base` (does extraction generalise to chip
//! vocabulary?), and `probe_zoo` (spot-check any cached zoo model).
//!
//! The [`harness`] module carries the tiny amount of shared setup the
//! binaries need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

//! Pretraining corpora (the DAPT stage's data).
//!
//! * [`general_corpus`] — simple templated English plus prompt-grammar
//!   exercises (copy tasks, generic QA), standing in for the web/text mix
//!   the base LLMs were pretrained on. Every model in the zoo starts from
//!   a base trained here, which is what teaches the `C:/Q:/A:` grammar and
//!   the copy-from-context (induction) skill.
//! * [`chip_corpus`] — the synthetic chip documentation (all OpenROAD-world
//!   fact sentences), standing in for ChipNeMo's 24B-token DAPT corpus.
//! * [`GENERAL_QA`] — a tiny general-knowledge QA pool used by the
//!   instruction SFT stage and the IFEval prompt generator.

use chipalign_tensor::rng::Pcg32;

use crate::facts::{industrial_facts, openroad_facts};
use crate::prompt::format_prompt;

const SUBJECTS: &[&str] = &[
    "the cat", "the dog", "a bird", "the car", "a ship", "the moon", "the sun", "a tree",
    "the rain", "a kid", "the chef", "a robot",
];
const VERBS: &[&str] = &[
    "sees", "likes", "finds", "moves", "holds", "makes", "takes", "keeps", "shows", "meets",
];
const OBJECTS: &[&str] = &[
    "a red box", "the old map", "a warm meal", "the long road", "a small key",
    "the blue door", "a quiet song", "the fast train", "a round stone", "the green field",
];

/// General-knowledge QA pairs (question, answer) used for instruction SFT.
pub const GENERAL_QA: &[(&str, &str)] = &[
    ("what color is the sky?", "the sky is blue"),
    ("what color is grass?", "grass is green"),
    ("what does a cat say?", "a cat says meow"),
    ("what does a dog say?", "a dog says woof"),
    ("how many legs has a cat?", "a cat has 4 legs"),
    ("how many days in a week?", "a week has 7 days"),
    ("what melts in the sun?", "ice melts in the sun"),
    ("what falls from clouds?", "rain falls from clouds"),
    ("where do fish live?", "fish live in water"),
    ("when does the sun rise?", "the sun rises at dawn"),
    ("what do bees make?", "bees make honey"),
    ("what pulls the tide?", "the moon pulls the tide"),
    ("how many wheels has a car?", "a car has 4 wheels"),
    ("what do cows drink?", "cows drink water"),
    ("what burns in a fire?", "wood burns in a fire"),
    ("what color is snow?", "snow is white"),
];

/// One random plain sentence from the general templates.
#[must_use]
pub fn general_sentence(rng: &mut Pcg32) -> String {
    format!(
        "{} {} {}",
        rng.choose(SUBJECTS),
        rng.choose(VERBS),
        rng.choose(OBJECTS)
    )
}

const CONSONANTS: &[u8] = b"bcdfgklmnprstvz";
const VOWELS: &[u8] = b"aeiou";
const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const DIGITS: &[u8] = b"0123456789";

/// A random nonsense word.
///
/// Unpredictable content is what forces the models to learn *copying from
/// context* (induction) rather than memorising templates — the skill that
/// later transfers to unseen chip vocabulary. Crucially the character
/// distribution must cover everything the chip worlds use: a mix of
/// pronounceable CV syllables, uniformly random letter strings, and
/// digit-bearing identifiers (like bug ids `b106`), so the induction skill
/// is content-independent rather than tuned to one letter statistic.
#[must_use]
pub fn random_word(rng: &mut Pcg32) -> String {
    let style = rng.uniform();
    if style < 0.45 {
        // Pronounceable CV syllables.
        let syllables = rng.range(2, 3);
        let mut word = String::with_capacity(syllables * 2 + 1);
        for _ in 0..syllables {
            word.push(char::from(*rng.choose(CONSONANTS)));
            word.push(char::from(*rng.choose(VOWELS)));
        }
        if rng.chance(0.3) {
            word.push(char::from(*rng.choose(CONSONANTS)));
        }
        word
    } else if style < 0.85 {
        // Uniform random letters.
        let len = rng.range(2, 8);
        (0..len)
            .map(|_| char::from(*rng.choose(LETTERS)))
            .collect()
    } else {
        // Identifier with digits (b106-style).
        let head_len = rng.range(1, 3);
        let digit_len = rng.range(1, 3);
        let mut word: String = (0..head_len)
            .map(|_| char::from(*rng.choose(LETTERS)))
            .collect();
        word.extend((0..digit_len).map(|_| char::from(*rng.choose(DIGITS))));
        word
    }
}

/// A random phrase of `lo..=hi` nonsense words.
#[must_use]
pub fn random_phrase(rng: &mut Pcg32, lo: usize, hi: usize) -> String {
    let n = rng.range(lo, hi);
    (0..n)
        .map(|_| random_word(rng))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One random extraction-QA triple `(context, question, answer)`.
///
/// This is the *shape* of the chip benchmarks (context carries a
/// subject-does-something fact; the question asks what the subject does;
/// the answer restates the fact). Subjects are random nonsense names most
/// of the time, so the extraction skill generalises to arbitrary (chip)
/// vocabulary instead of memorising a closed template set. Pretraining on
/// it gives every model the grounding/extraction skill, so domain finetunes
/// only have to adapt vocabulary — the small weight deltas that make
/// weight-space interpolation well-behaved.
#[must_use]
pub fn extraction_qa(rng: &mut Pcg32) -> (String, String, String) {
    let subject = if rng.chance(0.8) {
        format!(
            "the {} {}",
            random_word(rng),
            *rng.choose(&["cmd", "unit", "tool", "stage", "cell", "pane"][..])
        )
    } else {
        (*rng.choose(SUBJECTS)).to_string()
    };
    // The predicate is *always* unpredictable: if any slice of the answer
    // were guessable from priors, training would reward plausible
    // template generation over context copying, and the skill would not
    // transfer to chip vocabulary.
    let predicate = format!("{} {}", rng.choose(VERBS), random_phrase(rng, 2, 3));
    let sentence = format!("{subject} {predicate}");
    let question = format!("what does {subject} do?");
    (sentence.clone(), question, sentence)
}

/// One random copy-task sentence: unpredictable word salad that can only
/// be reproduced by attending to the context.
#[must_use]
pub fn copy_sentence(rng: &mut Pcg32) -> String {
    if rng.chance(0.3) {
        general_sentence(rng)
    } else {
        random_phrase(rng, 3, 5)
    }
}

/// Generates the general pretraining corpus: plain sentences, copy-task
/// exercises, extraction QA, and generic QA — all in the shared prompt
/// grammar.
#[must_use]
pub fn general_corpus(n_docs: usize, rng: &mut Pcg32) -> Vec<String> {
    let mut docs = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        let roll = rng.uniform();
        if roll < 0.05 {
            // Plain text.
            docs.push(format!("{}.", general_sentence(rng)));
        } else if roll < 0.2 {
            // Pure induction: the same random phrase twice. The strongest
            // possible pressure toward content-independent copy heads.
            let phrase = random_phrase(rng, 3, 6);
            docs.push(format!("{phrase}. {phrase}."));
        } else if roll < 0.45 {
            // Copy task: answer restates the context (induction skill).
            let sentence = copy_sentence(rng);
            let prompt = format_prompt(&sentence, "say it", &[]);
            docs.push(format!("{prompt}{sentence}"));
        } else if roll < 0.85 {
            // Extraction QA: the benchmark shape with general vocabulary.
            let (ctx, q, a) = extraction_qa(rng);
            let prompt = format_prompt(&ctx, &q, &[]);
            docs.push(format!("{prompt}{a}"));
        } else {
            // Generic QA in the grammar.
            let (q, a) = rng.choose(GENERAL_QA);
            let prompt = format_prompt("", q, &[]);
            docs.push(format!("{prompt}{a}"));
        }
    }
    docs
}

/// Generates the chip documentation corpus: every fact sentence of both
/// worlds, shuffled deterministically.
#[must_use]
pub fn chip_corpus(rng: &mut Pcg32) -> Vec<String> {
    let mut docs: Vec<String> = openroad_facts().iter().map(|f| f.doc.clone()).collect();
    docs.extend(industrial_facts().iter().map(|f| f.doc.clone()));
    rng.shuffle(&mut docs);
    docs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_and_determinism() {
        let a = general_corpus(50, &mut Pcg32::seed(1));
        let b = general_corpus(50, &mut Pcg32::seed(1));
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
        let c = general_corpus(50, &mut Pcg32::seed(2));
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_mixes_modes() {
        let docs = general_corpus(200, &mut Pcg32::seed(3));
        let copies = docs.iter().filter(|d| d.contains("Q:say it;")).count();
        let qa = docs.iter().filter(|d| d.starts_with("Q:")).count();
        let plain = docs
            .iter()
            .filter(|d| !d.contains("Q:"))
            .count();
        assert!(copies > 30, "copy tasks underrepresented: {copies}");
        assert!(qa > 20, "generic QA underrepresented: {qa}");
        assert!(plain > 30, "plain text underrepresented: {plain}");
    }

    #[test]
    fn documents_fit_small_contexts() {
        for doc in general_corpus(300, &mut Pcg32::seed(4)) {
            assert!(doc.len() <= 150, "doc too long ({}): {doc}", doc.len());
        }
    }

    #[test]
    fn chip_corpus_covers_both_worlds() {
        let docs = chip_corpus(&mut Pcg32::seed(5));
        assert_eq!(docs.len(), 60 + 40);
        assert!(docs.iter().any(|d| d.contains("gpl")));
        assert!(docs.iter().any(|d| d.contains("zbld")));
    }

    #[test]
    fn general_qa_answers_echo_question_topic() {
        // Sanity: each pair shares at least one content word, so ROUGE can
        // partially reward near misses.
        use chipalign_eval::text::tokenize;
        for (q, a) in GENERAL_QA {
            let qt = tokenize(q);
            let at = tokenize(a);
            assert!(
                qt.iter().any(|t| at.contains(t)),
                "no lexical overlap: {q} / {a}"
            );
        }
    }
}

//! Compositional fact bases: the synthetic "OpenROAD world" and
//! "industrial world".
//!
//! A fact is a (name, question, answer, documentation sentence) tuple in
//! one domain. Facts are generated compositionally from name and action
//! pools so that each world has enough distinct facts for disjoint train /
//! eval splits, while each individual fact stays short enough for a
//! character-level context window.

use chipalign_tensor::rng::Pcg32;

/// The domain a fact belongs to. The first three are the ChipNeMo
/// multi-choice domains (Figure 7); all five feed the OpenROAD QA category
/// split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// EDA script/command usage.
    EdaScripts,
    /// Bug reports and their fixes.
    Bugs,
    /// Circuit cells and their functions.
    Circuits,
    /// VLSI flow stages.
    FlowStages,
    /// GUI, installation, and test actions.
    Gui,
}

impl Domain {
    /// All domains in canonical order.
    pub const ALL: [Domain; 5] = [
        Domain::EdaScripts,
        Domain::Bugs,
        Domain::Circuits,
        Domain::FlowStages,
        Domain::Gui,
    ];

    /// The OpenROAD QA category this domain reports under (Table 1).
    #[must_use]
    pub fn openroad_category(self) -> &'static str {
        match self {
            Domain::EdaScripts | Domain::Circuits => "Functionality",
            Domain::Bugs | Domain::FlowStages => "VLSI Flow",
            Domain::Gui => "GUI & Install & Test",
        }
    }
}

/// One atomic fact about the synthetic world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// The entity name (command, bug id, cell, stage, or GUI item).
    pub name: String,
    /// The canonical question about the entity.
    pub question: String,
    /// The canonical answer (untagged, lowercase).
    pub answer: String,
    /// The documentation sentence carrying the fact.
    pub doc: String,
    /// The fact's domain.
    pub domain: Domain,
}

const COMMAND_NAMES: &[&str] = &[
    "gpl", "dpl", "cts", "grt", "drt", "rsz", "ifp", "tap", "pdn", "mpl", "sta", "psm",
    "fin", "dft", "eco", "lec",
];
const COMMAND_ACTIONS: &[&str] = &[
    "runs global placement",
    "legalizes cell sites",
    "builds the clock tree",
    "routes global nets",
    "routes detail tracks",
    "resizes weak drivers",
    "inits the floorplan",
    "inserts tap cells",
    "builds the power grid",
    "places the macros",
    "checks timing paths",
    "checks ir drop",
    "adds filler cells",
    "inserts scan chains",
    "patches the netlist",
    "checks logic equal",
];

const BUG_NAMES: &[&str] = &[
    "b101", "b102", "b103", "b104", "b105", "b106", "b107", "b108", "b109", "b110",
    "b111", "b112",
];
const BUG_FIXES: &[&str] = &[
    "fixed by a rerun of cts",
    "fixed by more core margin",
    "fixed by a newer pdk drop",
    "fixed by relaxing the util",
    "fixed by a hold buffer pass",
    "fixed by pin access repair",
    "fixed by a clean rebuild",
    "fixed by a cap on fanout",
    "fixed by swapping the lib",
    "fixed by a site row patch",
    "fixed by an eco reroute",
    "fixed by a wider halo",
];

const CELL_NAMES: &[&str] = &[
    "nand2", "nor3", "aoi21", "oai22", "dffrs", "latq", "mux4", "xor2", "invx8", "bufx4",
    "clkgt", "isow",
];
const CELL_FUNCS: &[&str] = &[
    "drives a two input nand",
    "drives a three input nor",
    "mixes and or invert logic",
    "mixes or and invert logic",
    "keeps state on clock edge",
    "holds data while enabled",
    "selects one of four inputs",
    "computes exclusive or",
    "drives a strong inverter",
    "buffers a heavy net",
    "gates the clock pin",
    "isolates a power domain",
];

const STAGE_NAMES: &[&str] = &[
    "synth", "floor", "place", "ctree", "route", "signoff", "lvs", "drc", "fill", "gds",
];
const STAGE_ROLES: &[&str] = &[
    "maps rtl to gates",
    "shapes the die and rows",
    "spreads cells on rows",
    "balances the clock skew",
    "draws the wire tracks",
    "closes timing and power",
    "matches layout to netlist",
    "checks layout rules",
    "adds dummy metal fill",
    "streams the final layout",
];

const GUI_NAMES: &[&str] = &[
    "timing icon", "heat map", "find box", "layer list", "path view", "log pane",
    "zoom tool", "ruler tool", "help menu", "test tab",
];
const GUI_ACTIONS: &[&str] = &[
    "opens the timing report",
    "shades cells by density",
    "jumps to a named net",
    "toggles metal layers",
    "walks a timing path",
    "shows the run messages",
    "scales the canvas view",
    "measures a distance",
    "lists install steps",
    "runs the smoke tests",
];

/// Builds the OpenROAD-world fact base: every `(name, action)` pair from
/// the per-domain pools, in deterministic order.
///
/// The documentation sentence (`doc`) is written in terse reference style
/// (`"cmd gpl: runs global placement."`) while the golden answer is the
/// assistant-style sentence (`"the gpl cmd runs global placement"`). The
/// shared core (the action phrase) keeps answers extractive from context,
/// but the surface transformation is something the chip DAFT *learns* —
/// which is exactly why the paper's EDA models outscore the general
/// instruct models on this benchmark.
#[must_use]
pub fn openroad_facts() -> Vec<Fact> {
    let mut facts = Vec::new();
    let pools: [(&[&str], &[&str], Domain, &str, &str, &str); 5] = [
        (
            COMMAND_NAMES,
            COMMAND_ACTIONS,
            Domain::EdaScripts,
            "what does the NAME cmd do?",
            "the NAME cmd ACTION",
            "cmd NAME: ACTION.",
        ),
        (
            BUG_NAMES,
            BUG_FIXES,
            Domain::Bugs,
            "how was bug NAME fixed?",
            "bug NAME was ACTION",
            "bug NAME: ACTION.",
        ),
        (
            CELL_NAMES,
            CELL_FUNCS,
            Domain::Circuits,
            "what does the NAME cell do?",
            "the NAME cell ACTION",
            "cell NAME: ACTION.",
        ),
        (
            STAGE_NAMES,
            STAGE_ROLES,
            Domain::FlowStages,
            "what does the NAME stage do?",
            "the NAME stage ACTION",
            "stage NAME: ACTION.",
        ),
        (
            GUI_NAMES,
            GUI_ACTIONS,
            Domain::Gui,
            "what does the NAME do?",
            "the NAME ACTION",
            "gui NAME: ACTION.",
        ),
    ];
    for (names, actions, domain, q_tpl, a_tpl, d_tpl) in pools {
        for (i, name) in names.iter().enumerate() {
            let action = actions[i % actions.len()];
            let question = q_tpl.replace("NAME", name);
            let answer = a_tpl.replace("NAME", name).replace("ACTION", action);
            let doc = d_tpl.replace("NAME", name).replace("ACTION", action);
            facts.push(Fact {
                name: (*name).to_string(),
                question,
                answer,
                doc,
                domain,
            });
        }
    }
    facts
}

/// Industrial-world categories (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndustrialCategory {
    /// Hardware architecture questions.
    Arch,
    /// Build-process questions.
    Build,
    /// Job-scheduling (LSF) questions.
    Lsf,
    /// Verification/test-generation questions.
    Testgen,
}

impl IndustrialCategory {
    /// All categories in the paper's column order.
    pub const ALL: [IndustrialCategory; 4] = [
        IndustrialCategory::Arch,
        IndustrialCategory::Build,
        IndustrialCategory::Lsf,
        IndustrialCategory::Testgen,
    ];

    /// Column label as printed in Table 2.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IndustrialCategory::Arch => "ARCH",
            IndustrialCategory::Build => "BUILD",
            IndustrialCategory::Lsf => "LSF",
            IndustrialCategory::Testgen => "TESTGEN",
        }
    }
}

/// One industrial fact (same shape as [`Fact`], different world).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndustrialFact {
    /// Redacted-style entity name (the paper masks tools as ZZZ etc.).
    pub name: String,
    /// Canonical question.
    pub question: String,
    /// Canonical answer.
    pub answer: String,
    /// Documentation sentence.
    pub doc: String,
    /// Category.
    pub category: IndustrialCategory,
    /// A follow-up question about the same entity (for the multi-turn
    /// setting) and its answer.
    pub followup: (String, String),
}

const ARCH_UNITS: &[&str] = &["fetch", "decode", "issue", "alu", "lsu", "rob", "tlb", "l2c", "noc", "pmu"];
const ARCH_ROLES: &[&str] = &[
    "pulls ops from the icache",
    "cracks ops into uops",
    "picks ready uops per cycle",
    "runs the integer math",
    "moves loads and stores",
    "retires ops in order",
    "maps virtual pages",
    "serves shared cache lines",
    "links the core tiles",
    "counts perf events",
];
const ARCH_EXTRA: &[&str] = &[
    "it is four wide",
    "it is two wide",
    "it is eight wide",
    "it has two lanes",
    "it has four lanes",
    "it holds 96 slots",
    "it holds 64 pages",
    "it holds 2 mb",
    "it is a 2d mesh",
    "it has 8 counters",
];

const BUILD_TOOLS: &[&str] = &["zbld", "zgen", "zpak", "zsync", "zlint", "zsig", "zrun", "zmap", "zdep", "zver"];
const BUILD_USES: &[&str] = &[
    "use -build plus the target name",
    "use -gen to emit the tree",
    "use -pack to bundle outputs",
    "use -sync to pull sources",
    "use -lint to scan the rtl",
    "use -sign to stamp the drop",
    "use -run to launch the job",
    "use -map to list targets",
    "use -deps to print the graph",
    "use -ver to print the tag",
];
const BUILD_EXTRA: &[&str] = &[
    "add -only to skip deps",
    "add -force to redo all",
    "add -out to set the dir",
    "add -rev to pin a commit",
    "add -fix to auto repair",
    "add -key to pick the key",
    "add -q to queue it",
    "add -all to show hidden",
    "add -flat to flatten it",
    "add -long for full hash",
];

const LSF_CMDS: &[&str] = &["qsub", "qstat", "qdel", "qhold", "qmove", "qpri", "qlim", "qlog", "qres", "qping"];
const LSF_USES: &[&str] = &[
    "sends a job to the farm",
    "lists the queue state",
    "kills a queued job",
    "parks a job on hold",
    "shifts a job between queues",
    "bumps a job priority",
    "shows the slot limits",
    "tails the job log",
    "books a reserved slot",
    "checks the farm health",
];
const LSF_EXTRA: &[&str] = &[
    "pass -m for more memory",
    "pass -u to filter by user",
    "pass -f to force it",
    "pass -t to set a timer",
    "pass -q to name the queue",
    "pass -n to dry run",
    "pass -g to pick a group",
    "pass -w to watch live",
    "pass -d to set a date",
    "pass -v for verbose",
];

const TEST_KITS: &[&str] = &["tgen", "tseq", "tcov", "trand", "tchk", "tfmt", "tbus", "tirq", "tmem", "tioq"];
const TEST_USES: &[&str] = &[
    "emits directed stimulus",
    "orders test sequences",
    "merges coverage runs",
    "drives random traffic",
    "scores the checkers",
    "formats the test report",
    "stresses the bus ports",
    "fires interrupt storms",
    "sweeps memory patterns",
    "floods the io queues",
];
const TEST_EXTRA: &[&str] = &[
    "seed it with -s",
    "cap the depth with -d",
    "merge with -m",
    "bias it with -b",
    "gate it with -g",
    "theme it with -t",
    "pick ports with -p",
    "rate it with -r",
    "range it with -a",
    "queue it with -q",
];

/// Builds the industrial-world fact base.
#[must_use]
pub fn industrial_facts() -> Vec<IndustrialFact> {
    let mut facts = Vec::new();
    let pools: [(&[&str], &[&str], &[&str], IndustrialCategory, &str, &str, &str); 4] = [
        (
            ARCH_UNITS,
            ARCH_ROLES,
            ARCH_EXTRA,
            IndustrialCategory::Arch,
            "what does the NAME unit do?",
            "the NAME unit ACTION",
            "how wide is the NAME unit?",
        ),
        (
            BUILD_TOOLS,
            BUILD_USES,
            BUILD_EXTRA,
            IndustrialCategory::Build,
            "how do i build with NAME?",
            "with NAME ACTION",
            "what flag narrows a NAME run?",
        ),
        (
            LSF_CMDS,
            LSF_USES,
            LSF_EXTRA,
            IndustrialCategory::Lsf,
            "what does NAME do on the farm?",
            "NAME ACTION",
            "what flag tunes NAME?",
        ),
        (
            TEST_KITS,
            TEST_USES,
            TEST_EXTRA,
            IndustrialCategory::Testgen,
            "what does the NAME kit do?",
            "the NAME kit ACTION",
            "how do i tune the NAME kit?",
        ),
    ];
    for (names, actions, extras, category, q_tpl, a_tpl, f_tpl) in pools {
        for (i, name) in names.iter().enumerate() {
            let action = actions[i % actions.len()];
            let extra = extras[i % extras.len()];
            let question = q_tpl.replace("NAME", name);
            let answer = a_tpl.replace("NAME", name).replace("ACTION", action);
            let f_question = f_tpl.replace("NAME", name);
            let f_answer = format!("for {name} {extra}");
            // Terse internal-wiki style; the assistant-style answer is the
            // transformation the ChipNeMo-style DAFT learns.
            let tag = match category {
                IndustrialCategory::Arch => "arch",
                IndustrialCategory::Build => "tool",
                IndustrialCategory::Lsf => "farm",
                IndustrialCategory::Testgen => "kit",
            };
            let doc = format!("{tag} {name}: {action}. for {name} {extra}.");
            facts.push(IndustrialFact {
                name: (*name).to_string(),
                question,
                answer,
                doc,
                category,
                followup: (f_question, f_answer),
            });
        }
    }
    facts
}

/// Deterministically samples `n` distinct facts from a slice.
///
/// # Panics
///
/// Panics if `n > facts.len()`.
#[must_use]
pub fn sample_facts<'a, T>(facts: &'a [T], n: usize, rng: &mut Pcg32) -> Vec<&'a T> {
    assert!(n <= facts.len(), "cannot sample {n} from {}", facts.len());
    let mut indices: Vec<usize> = (0..facts.len()).collect();
    rng.shuffle(&mut indices);
    indices[..n].iter().map(|&i| &facts[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openroad_fact_counts() {
        let facts = openroad_facts();
        assert_eq!(facts.len(), 16 + 12 + 12 + 10 + 10);
        // Every domain is populated.
        for d in Domain::ALL {
            assert!(facts.iter().any(|f| f.domain == d), "{d:?} missing");
        }
    }

    #[test]
    fn facts_are_distinct_and_short() {
        let facts = openroad_facts();
        let mut answers: Vec<&str> = facts.iter().map(|f| f.answer.as_str()).collect();
        answers.sort_unstable();
        answers.dedup();
        assert_eq!(answers.len(), facts.len(), "answers must be unique");
        for f in &facts {
            assert!(f.question.len() <= 40, "question too long: {}", f.question);
            assert!(f.answer.len() <= 48, "answer too long: {}", f.answer);
            assert!(f.doc.len() <= 56, "doc too long: {}", f.doc);
        }
    }

    #[test]
    fn docs_ground_answers() {
        // Docs are terse reference lines, answers assistant sentences; the
        // content words of every answer must still be recoverable from its
        // doc (the benchmark stays extractive).
        use chipalign_eval::text::tokenize;
        for f in openroad_facts() {
            let doc_tokens: std::collections::HashSet<String> =
                tokenize(&f.doc).into_iter().collect();
            let answer_tokens = tokenize(&f.answer);
            let grounded = answer_tokens
                .iter()
                .filter(|t| doc_tokens.contains(*t))
                .count();
            assert!(
                grounded * 10 >= answer_tokens.len() * 7,
                "answer poorly grounded in doc: {f:?}"
            );
            // The action phrase itself appears verbatim.
            assert!(f.doc.contains(": "), "terse doc style expected: {}", f.doc);
        }
    }

    #[test]
    fn categories_map_to_paper_columns() {
        assert_eq!(Domain::EdaScripts.openroad_category(), "Functionality");
        assert_eq!(Domain::FlowStages.openroad_category(), "VLSI Flow");
        assert_eq!(Domain::Gui.openroad_category(), "GUI & Install & Test");
    }

    #[test]
    fn industrial_fact_counts_and_categories() {
        let facts = industrial_facts();
        assert_eq!(facts.len(), 40);
        for c in IndustrialCategory::ALL {
            assert_eq!(
                facts.iter().filter(|f| f.category == c).count(),
                10,
                "{c:?} must have 10 facts"
            );
        }
    }

    #[test]
    fn industrial_followups_are_present_and_short() {
        for f in industrial_facts() {
            assert!(!f.followup.0.is_empty());
            assert!(!f.followup.1.is_empty());
            assert!(f.doc.len() <= 95, "doc too long: {}", f.doc);
            // The follow-up answer is grounded verbatim in the doc.
            assert!(
                f.doc.contains(&f.followup.1),
                "followup must be grounded: {f:?}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let facts = openroad_facts();
        let a = sample_facts(&facts, 10, &mut Pcg32::seed(5));
        let b = sample_facts(&facts, 10, &mut Pcg32::seed(5));
        assert_eq!(
            a.iter().map(|f| &f.name).collect::<Vec<_>>(),
            b.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
        let mut names: Vec<&str> = a.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let facts = openroad_facts();
        let n = facts.len() + 1;
        let _ = sample_facts(&facts, n, &mut Pcg32::seed(1));
    }
}

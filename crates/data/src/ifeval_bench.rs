//! The IFEval-style benchmark (paper Table 3).
//!
//! 541 prompts — the size of the original IFEval — each carrying one or two
//! verifiable format directives over general (non-chip) content. Responses
//! are verified with `chipalign-eval`'s strict and loose checkers and
//! aggregated at prompt and instruction level.

use chipalign_eval::ifeval::Instruction;
use chipalign_tensor::rng::Pcg32;

use crate::corpus::{general_sentence, GENERAL_QA};
use crate::prompt::format_prompt;
use crate::tags::FormatTag;

/// Number of prompts, matching IFEval.
pub const NUM_PROMPTS: usize = 541;

/// Fraction of prompts carrying two directives instead of one.
const TWO_TAG_FRACTION: f32 = 0.2;

/// One benchmark prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct IfEvalPrompt {
    /// The rendered prompt.
    pub prompt: String,
    /// The format directives it carries (1 or 2).
    pub tags: Vec<FormatTag>,
    /// The corresponding verifiable checkers.
    pub instructions: Vec<Instruction>,
    /// A reference answer that satisfies all directives (not used for
    /// scoring — IFEval scores by checker — but useful for debugging).
    pub reference: String,
}

/// Generates the 541-prompt benchmark deterministically.
#[must_use]
pub fn generate(seed: u64) -> Vec<IfEvalPrompt> {
    let mut rng = Pcg32::seed(seed);
    let mut prompts = Vec::with_capacity(NUM_PROMPTS);
    for _ in 0..NUM_PROMPTS {
        let mut tags = vec![FormatTag::sample(&mut rng)];
        if rng.chance(TWO_TAG_FRACTION) {
            // Add a compatible second tag: one content tag plus one surface
            // tag, so both constraints are simultaneously satisfiable.
            let second = match tags[0] {
                // Surface first tag -> add a content tag.
                FormatTag::Upper | FormatTag::Lower | FormatTag::Quote => {
                    FormatTag::sample_content(&mut rng)
                }
                // Content first tag -> add a surface tag.
                _ => match rng.below(3) {
                    0 => FormatTag::Upper,
                    1 => FormatTag::Lower,
                    _ => FormatTag::Quote,
                },
            };
            tags.push(second);
        }
        // Canonical application order: content transforms before surface
        // transforms, so e.g. [UP][END] yields "... DONE".
        let mut ordered = tags.clone();
        ordered.sort_by_key(|t| match t {
            FormatTag::Pre | FormatTag::End | FormatTag::Key(_) => 0,
            _ => 1,
        });

        let (prompt, mut reference) = if rng.chance(0.5) {
            let sentence = general_sentence(&mut rng);
            (format_prompt(&sentence, "say it", &tags), sentence)
        } else {
            let (q, a) = rng.choose(GENERAL_QA);
            (format_prompt("", q, &tags), (*a).to_string())
        };
        for tag in &ordered {
            reference = tag.apply(&reference);
        }
        let instructions = tags.iter().map(FormatTag::instruction).collect();
        prompts.push(IfEvalPrompt {
            prompt,
            tags,
            instructions,
            reference,
        });
    }
    prompts
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_eval::ifeval::PromptVerdict;

    #[test]
    fn generates_541_prompts() {
        let prompts = generate(11);
        assert_eq!(prompts.len(), NUM_PROMPTS);
    }

    #[test]
    fn references_satisfy_all_instructions() {
        // The benchmark must be *satisfiable*: the reference answer passes
        // every checker on its prompt.
        for p in generate(11) {
            let verdict = PromptVerdict::of(&p.instructions, &p.reference);
            assert!(
                verdict.strict.iter().all(|&b| b),
                "reference violates instructions: {p:?} -> {verdict:?}"
            );
        }
    }

    #[test]
    fn tag_and_instruction_counts_match() {
        for p in generate(11) {
            assert_eq!(p.tags.len(), p.instructions.len());
            assert!((1..=2).contains(&p.tags.len()));
            for tag in &p.tags {
                assert!(p.prompt.contains(&tag.tag_str()));
            }
        }
    }

    #[test]
    fn roughly_one_fifth_have_two_tags() {
        let prompts = generate(11);
        let two = prompts.iter().filter(|p| p.tags.len() == 2).count();
        assert!(
            (70..=150).contains(&two),
            "two-tag share should be ~108/541, got {two}"
        );
    }

    #[test]
    fn two_tag_prompts_mix_content_and_surface() {
        for p in generate(11) {
            if p.tags.len() == 2 {
                let content = p
                    .tags
                    .iter()
                    .filter(|t| {
                        matches!(t, FormatTag::Pre | FormatTag::End | FormatTag::Key(_))
                    })
                    .count();
                assert_eq!(content, 1, "exactly one content tag expected: {:?}", p.tags);
            }
        }
    }

    #[test]
    fn prompts_fit_context_window() {
        for p in generate(11) {
            let total = p.prompt.len() + p.reference.len() + 2;
            assert!(total <= 240, "prompt too long ({total}): {p:?}");
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(generate(3), generate(3));
        assert_ne!(generate(3), generate(4));
    }
}

//! The industrial chip QA benchmark (paper Table 2).
//!
//! 39 practical engineer questions over the redacted-style internal world,
//! split across ARCH / BUILD / LSF / TESTGEN, each with a follow-up
//! question for the multi-turn setting. Prompts carry the context retrieved
//! for the question plus format directives (the paper's prompts include
//! explicit instructions such as "answer only from the context chunks");
//! responses are graded by the deterministic rubric grader.

use chipalign_rag::Document;
use chipalign_tensor::rng::Pcg32;

use crate::facts::{industrial_facts, IndustrialCategory};
use crate::prompt::{format_followup, format_prompt};
use crate::tags::FormatTag;

/// Number of questions, matching the paper.
pub const NUM_QUESTIONS: usize = 39;

/// One benchmark question with its follow-up turn.
#[derive(Debug, Clone, PartialEq)]
pub struct IndustrialQuestion {
    /// Category (Table 2 column).
    pub category: IndustrialCategory,
    /// Retrieved context (the grounding documentation).
    pub context: String,
    /// First-turn question.
    pub question: String,
    /// First-turn format directives.
    pub tags: Vec<FormatTag>,
    /// First-turn golden answer (directives applied).
    pub golden: String,
    /// Follow-up question (multi-turn setting).
    pub followup_question: String,
    /// Follow-up golden answer (plain; the follow-up carries no tag so the
    /// turn fits the context window).
    pub followup_golden: String,
}

impl IndustrialQuestion {
    /// The single-turn prompt.
    #[must_use]
    pub fn prompt(&self) -> String {
        format_prompt(&self.context, &self.question, &self.tags)
    }

    /// The multi-turn prompt: first turn replayed with `first_answer`
    /// (normally the model's own first response), then the follow-up cue.
    #[must_use]
    pub fn followup_prompt(&self, first_answer: &str) -> String {
        format_followup(&self.prompt(), first_answer, &self.followup_question, &[])
    }
}

/// The generated benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct IndustrialBenchmark {
    /// The 39 questions.
    pub questions: Vec<IndustrialQuestion>,
}

impl IndustrialBenchmark {
    /// Generates the benchmark deterministically from a seed.
    ///
    /// 39 of the 40 industrial facts are used (one TESTGEN fact dropped, so
    /// the categories split 10/10/10/9 as in the paper's uneven 39).
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let facts = industrial_facts();
        let mut rng = Pcg32::seed(seed);
        let content_tags = FormatTag::content_tags();
        let mut questions = Vec::with_capacity(NUM_QUESTIONS);
        // Drop the last TESTGEN fact deterministically.
        let mut dropped_testgen = false;
        for fact in facts.iter().rev() {
            if !dropped_testgen && fact.category == IndustrialCategory::Testgen {
                dropped_testgen = true;
                continue;
            }
            let tag = content_tags[rng.below(content_tags.len())].clone();
            questions.push(IndustrialQuestion {
                category: fact.category,
                context: fact.doc.clone(),
                question: fact.question.clone(),
                golden: tag.apply(&fact.answer),
                tags: vec![tag],
                followup_question: fact.followup.0.clone(),
                followup_golden: fact.followup.1.clone(),
            });
        }
        questions.reverse();
        IndustrialBenchmark { questions }
    }

    /// The internal documentation corpus as retrievable documents.
    #[must_use]
    pub fn corpus_documents() -> Vec<Document> {
        industrial_facts()
            .iter()
            .enumerate()
            .map(|(i, f)| Document::new(i, &f.name, &f.doc))
            .collect()
    }

    /// Questions of one category.
    #[must_use]
    pub fn by_category(&self, category: IndustrialCategory) -> Vec<&IndustrialQuestion> {
        self.questions
            .iter()
            .filter(|q| q.category == category)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_nine_questions_with_paper_split() {
        let bench = IndustrialBenchmark::generate(7);
        assert_eq!(bench.questions.len(), NUM_QUESTIONS);
        assert_eq!(bench.by_category(IndustrialCategory::Arch).len(), 10);
        assert_eq!(bench.by_category(IndustrialCategory::Build).len(), 10);
        assert_eq!(bench.by_category(IndustrialCategory::Lsf).len(), 10);
        assert_eq!(bench.by_category(IndustrialCategory::Testgen).len(), 9);
    }

    #[test]
    fn goldens_obey_directives_and_are_grounded() {
        let bench = IndustrialBenchmark::generate(7);
        for q in &bench.questions {
            for tag in &q.tags {
                assert!(
                    tag.instruction().check_strict(&q.golden),
                    "golden violates {tag:?}: {}",
                    q.golden
                );
            }
            assert!(
                q.context.contains(&q.followup_golden),
                "follow-up must be grounded: {q:?}"
            );
        }
    }

    #[test]
    fn single_turn_prompt_shape() {
        let bench = IndustrialBenchmark::generate(7);
        let q = &bench.questions[0];
        let p = q.prompt();
        assert!(p.starts_with("C:"));
        assert!(p.contains(&q.question));
        assert!(p.ends_with("A:"));
    }

    #[test]
    fn multi_turn_prompt_replays_history() {
        let bench = IndustrialBenchmark::generate(7);
        let q = &bench.questions[0];
        let p2 = q.followup_prompt("first answer text");
        assert!(p2.starts_with(&q.prompt()));
        assert!(p2.contains("first answer text;"));
        assert!(p2.contains(&q.followup_question));
        assert!(p2.ends_with("A:"));
    }

    #[test]
    fn multi_turn_fits_context_window() {
        let bench = IndustrialBenchmark::generate(7);
        for q in &bench.questions {
            // Budget the first answer at its golden length.
            let total = q.followup_prompt(&q.golden).len() + q.followup_golden.len() + 2;
            assert!(total <= 250, "multi-turn too long ({total}): {q:?}");
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(
            IndustrialBenchmark::generate(1),
            IndustrialBenchmark::generate(1)
        );
    }

    #[test]
    fn corpus_covers_contexts() {
        let docs = IndustrialBenchmark::corpus_documents();
        let bench = IndustrialBenchmark::generate(7);
        for q in &bench.questions {
            assert!(docs.iter().any(|d| d.text == q.context));
        }
    }
}

//! Synthetic corpora and benchmarks for the ChipAlign reproduction.
//!
//! The paper's data is unavailable (proprietary NVIDIA chip QA, OpenROAD
//! documentation QA, IFEval): this crate generates deterministic synthetic
//! equivalents that preserve the *structure* each experiment needs, scaled
//! to the character-level models of `chipalign-nn`.
//!
//! The synthetic world is built from three pieces:
//!
//! * [`facts`] — a compositional fact base of EDA commands, bugs, circuit
//!   cells, flow stages, and GUI actions (the "OpenROAD world"), plus a
//!   redacted-style internal fact base (ARCH/BUILD/LSF/TESTGEN — the
//!   "industrial world").
//! * [`tags`] — compact, in-prompt *format directives* (`[UP]`, `[PRE]`,
//!   `[END]`, ...). Each tag maps to a golden-answer transformation and to
//!   a verifiable [`chipalign_eval::ifeval::Instruction`], which is how
//!   instruction alignment stays measurable at character scale.
//! * [`prompt`] — the shared prompt grammar (`C:<context>;Q:<question>;
//!   [TAGS]A:`) used identically by training data and benchmarks.
//!
//! On top of those:
//!
//! * [`corpus`] — DAPT corpora (general text, chip documentation).
//! * [`sft`] — DAFT datasets: instruction SFT (format-tagged, general
//!   content) and chip SFT (context-grounded, untagged — which is exactly
//!   what makes the chip specialist *lose* instruction alignment, as the
//!   paper observes of ChipNeMo).
//! * [`openroad`] — the 90-triplet OpenROAD-QA-style benchmark with the
//!   paper's category split (Functionality / VLSI Flow / GUI & Install &
//!   Test) and golden-vs-RAG context modes (Table 1, Figure 8).
//! * [`industrial`] — the 39-question industrial chip QA benchmark with
//!   ARCH/BUILD/LSF/TESTGEN categories and single/multi-turn settings
//!   (Table 2).
//! * [`ifeval_bench`] — 541 verifiable-instruction prompts (Table 3).
//! * [`multichoice`] — multi-choice chip QA over the three ChipNeMo domains
//!   (Figure 7).
//!
//! Everything is seeded and bit-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod facts;
pub mod ifeval_bench;
pub mod industrial;
pub mod multichoice;
pub mod openroad;
pub mod prompt;
pub mod sft;
pub mod tags;

//! The multi-choice chip QA benchmark (paper Figure 7).
//!
//! ChipNeMo's in-house evaluation poses instruction-free multiple-choice
//! questions over three domains — EDA scripts, bugs, and circuits. Each
//! item here pairs a fact question with the true answer and three
//! same-domain distractors; models are scored by length-normalised answer
//! log-likelihood (`chipalign_nn::score::choose`).

use chipalign_tensor::rng::Pcg32;

use crate::facts::{openroad_facts, Domain};
use crate::prompt::format_prompt;

/// Domains evaluated in Figure 7.
pub const DOMAINS: [Domain; 3] = [Domain::EdaScripts, Domain::Bugs, Domain::Circuits];

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiChoiceItem {
    /// The fact domain.
    pub domain: Domain,
    /// The prompt (question only, no context, no directives).
    pub prompt: String,
    /// Four answer options.
    pub choices: Vec<String>,
    /// Index of the correct option.
    pub correct: usize,
}

/// Generates the benchmark: one item per fact in each Figure-7 domain.
#[must_use]
pub fn generate(seed: u64) -> Vec<MultiChoiceItem> {
    let facts = openroad_facts();
    let mut rng = Pcg32::seed(seed);
    let mut items = Vec::new();
    for domain in DOMAINS {
        let domain_facts: Vec<_> = facts.iter().filter(|f| f.domain == domain).collect();
        for (i, fact) in domain_facts.iter().enumerate() {
            // Three distinct same-domain distractors.
            let mut distractor_ids: Vec<usize> =
                (0..domain_facts.len()).filter(|&j| j != i).collect();
            rng.shuffle(&mut distractor_ids);
            let mut choices: Vec<String> = distractor_ids[..3]
                .iter()
                .map(|&j| domain_facts[j].answer.clone())
                .collect();
            let correct_pos = rng.below(4);
            choices.insert(correct_pos, fact.answer.clone());
            items.push(MultiChoiceItem {
                domain,
                prompt: format_prompt("", &fact.question, &[]),
                choices,
                correct: correct_pos,
            });
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_item_per_fact_in_figure7_domains() {
        let items = generate(9);
        assert_eq!(items.len(), 16 + 12 + 12);
        for d in DOMAINS {
            assert!(items.iter().any(|i| i.domain == d));
        }
    }

    #[test]
    fn four_distinct_choices_with_correct_inside() {
        for item in generate(9) {
            assert_eq!(item.choices.len(), 4);
            assert!(item.correct < 4);
            let mut sorted = item.choices.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "choices must be distinct: {item:?}");
        }
    }

    #[test]
    fn correct_choice_answers_the_question() {
        let facts = openroad_facts();
        for item in generate(9) {
            let answer = &item.choices[item.correct];
            assert!(
                facts.iter().any(|f| item.prompt.contains(&f.question) && &f.answer == answer),
                "correct option must be the fact's answer: {item:?}"
            );
        }
    }

    #[test]
    fn correct_positions_are_spread() {
        let items = generate(9);
        let mut counts = [0usize; 4];
        for item in &items {
            counts[item.correct] += 1;
        }
        for (pos, c) in counts.iter().enumerate() {
            assert!(*c > 0, "position {pos} never correct — scoring bias risk");
        }
    }

    #[test]
    fn prompts_are_contextless() {
        for item in generate(9) {
            assert!(item.prompt.starts_with("Q:"));
            assert!(!item.prompt.contains("C:"));
            assert!(!item.prompt.contains('['));
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(generate(2), generate(2));
    }
}

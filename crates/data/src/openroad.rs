//! The OpenROAD-QA-style benchmark (paper Table 1, Figure 8).
//!
//! 90 context-query-answer triplets over the OpenROAD world, each carrying
//! one content-affecting format directive (the benchmark's prompts "all
//! follow the same instruction" in the paper; here the directive varies by
//! triplet so compliance is measurable via ROUGE-L). Categories follow the
//! paper's split: Functionality / VLSI Flow / GUI & Install & Test.
//!
//! Evaluation supports both context modes of Table 1: the *golden context*
//! (the fact's own documentation sentence) and the *RAG context* (whatever
//! the retrieval pipeline returns from the full documentation corpus).

use chipalign_rag::Document;
use chipalign_tensor::rng::Pcg32;

use crate::facts::{openroad_facts, Fact};
use crate::prompt::format_prompt;
use crate::tags::FormatTag;

/// Number of evaluation triplets, matching the paper.
pub const NUM_TRIPLETS: usize = 90;

/// One evaluation triplet.
#[derive(Debug, Clone, PartialEq)]
pub struct QaTriplet {
    /// Paper category (`"Functionality"`, `"VLSI Flow"`,
    /// `"GUI & Install & Test"`).
    pub category: &'static str,
    /// Golden context (the grounding documentation sentence).
    pub context: String,
    /// The question.
    pub question: String,
    /// The format directive(s) the prompt carries.
    pub tags: Vec<FormatTag>,
    /// The golden answer with directives applied.
    pub golden: String,
    /// Name of the underlying fact (for RAG relevance checking).
    pub fact_name: String,
}

impl QaTriplet {
    /// Renders the evaluation prompt, with the golden context or an
    /// override (the RAG-retrieved context).
    #[must_use]
    pub fn prompt_with_context(&self, context: &str) -> String {
        format_prompt(context, &self.question, &self.tags)
    }

    /// The golden-context prompt.
    #[must_use]
    pub fn prompt(&self) -> String {
        self.prompt_with_context(&self.context)
    }
}

/// The generated benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRoadBenchmark {
    /// The 90 evaluation triplets.
    pub triplets: Vec<QaTriplet>,
}

impl OpenRoadBenchmark {
    /// Generates the benchmark deterministically from a seed.
    ///
    /// Each triplet pairs a fact with a content tag; `(fact, tag)` pairs
    /// are unique, and every category is represented.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let facts = openroad_facts();
        let content_tags = FormatTag::content_tags();
        let mut rng = Pcg32::seed(seed);

        // Enumerate all (fact, tag) combinations, shuffle, take 90 with a
        // per-category floor.
        let mut combos: Vec<(usize, usize)> = (0..facts.len())
            .flat_map(|f| (0..content_tags.len()).map(move |t| (f, t)))
            .collect();
        rng.shuffle(&mut combos);

        let mut triplets = Vec::with_capacity(NUM_TRIPLETS);
        for (fi, ti) in combos {
            if triplets.len() == NUM_TRIPLETS {
                break;
            }
            let fact: &Fact = &facts[fi];
            let tag = content_tags[ti].clone();
            triplets.push(QaTriplet {
                category: fact.domain.openroad_category(),
                context: fact.doc.clone(),
                question: fact.question.clone(),
                golden: tag.apply(&fact.answer),
                tags: vec![tag],
                fact_name: fact.name.clone(),
            });
        }
        OpenRoadBenchmark { triplets }
    }

    /// The full documentation corpus as retrievable documents (for the RAG
    /// context mode).
    #[must_use]
    pub fn corpus_documents() -> Vec<Document> {
        openroad_facts()
            .iter()
            .enumerate()
            .map(|(i, f)| Document::new(i, &f.name, &f.doc))
            .collect()
    }

    /// Triplets of one category.
    #[must_use]
    pub fn by_category(&self, category: &str) -> Vec<&QaTriplet> {
        self.triplets
            .iter()
            .filter(|t| t.category == category)
            .collect()
    }

    /// The paper's category columns in order.
    pub const CATEGORIES: [&'static str; 3] =
        ["Functionality", "VLSI Flow", "GUI & Install & Test"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_ninety_unique_triplets() {
        let bench = OpenRoadBenchmark::generate(42);
        assert_eq!(bench.triplets.len(), NUM_TRIPLETS);
        let mut keys: Vec<(String, String)> = bench
            .triplets
            .iter()
            .map(|t| (t.fact_name.clone(), t.tags[0].tag_str()))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), NUM_TRIPLETS, "(fact, tag) pairs must be unique");
    }

    #[test]
    fn all_categories_represented() {
        let bench = OpenRoadBenchmark::generate(42);
        for cat in OpenRoadBenchmark::CATEGORIES {
            let n = bench.by_category(cat).len();
            assert!(n >= 8, "category {cat} underrepresented: {n}");
        }
        let total: usize = OpenRoadBenchmark::CATEGORIES
            .iter()
            .map(|c| bench.by_category(c).len())
            .sum();
        assert_eq!(total, NUM_TRIPLETS);
    }

    #[test]
    fn goldens_obey_their_directives() {
        let bench = OpenRoadBenchmark::generate(42);
        for t in &bench.triplets {
            for tag in &t.tags {
                assert!(
                    tag.instruction().check_strict(&t.golden),
                    "golden violates {tag:?}: {}",
                    t.golden
                );
            }
        }
    }

    #[test]
    fn prompts_carry_context_question_and_tag() {
        let bench = OpenRoadBenchmark::generate(42);
        let t = &bench.triplets[0];
        let p = t.prompt();
        assert!(p.starts_with("C:"));
        assert!(p.contains(&t.question));
        assert!(p.contains(&t.tags[0].tag_str()));
        assert!(p.ends_with("A:"));
        let over = t.prompt_with_context("other context");
        assert!(over.starts_with("C:other context."));
    }

    #[test]
    fn prompts_fit_the_context_window() {
        let bench = OpenRoadBenchmark::generate(42);
        for t in &bench.triplets {
            let total = t.prompt().len() + t.golden.len() + 2;
            assert!(total <= 240, "triplet too long ({total}): {t:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        assert_eq!(OpenRoadBenchmark::generate(1), OpenRoadBenchmark::generate(1));
        assert_ne!(OpenRoadBenchmark::generate(1), OpenRoadBenchmark::generate(2));
    }

    #[test]
    fn corpus_documents_cover_all_facts() {
        let docs = OpenRoadBenchmark::corpus_documents();
        assert_eq!(docs.len(), 60);
        let bench = OpenRoadBenchmark::generate(42);
        for t in &bench.triplets {
            assert!(
                docs.iter().any(|d| d.text == t.context),
                "golden context must exist in the corpus: {}",
                t.context
            );
        }
    }
}

//! The shared prompt grammar.
//!
//! Training data and benchmarks must agree exactly on prompt layout or the
//! models cannot transfer; this module is the single source of truth:
//!
//! ```text
//! [context?]  C:<context>;
//! [question]  Q:<question>;
//! [tags?]     [UP][KEY ref]...
//! [cue]       A:
//! ```
//!
//! Multi-turn conversations repeat the `Q:...;A:...` block with the answer
//! text inline, then open a new cue.

use crate::tags::FormatTag;

/// The answer cue every prompt ends with.
pub const ANSWER_CUE: &str = "A:";

/// Formats a single-turn prompt.
///
/// `context` may be empty (no-context QA, e.g. the multi-choice benchmark).
#[must_use]
pub fn format_prompt(context: &str, question: &str, tags: &[FormatTag]) -> String {
    let mut out = String::new();
    if !context.trim().is_empty() {
        out.push_str("C:");
        out.push_str(context.trim());
        if !out.ends_with('.') {
            out.push('.');
        }
        out.push(';');
    }
    out.push_str("Q:");
    out.push_str(question.trim());
    out.push(';');
    for tag in tags {
        out.push_str(&tag.tag_str());
    }
    out.push_str(ANSWER_CUE);
    out
}

/// Formats a follow-up turn appended to a finished first turn.
///
/// The first turn's prompt and answer are replayed verbatim (the standard
/// chat-history encoding), then the follow-up question opens a new cue.
#[must_use]
pub fn format_followup(
    first_prompt: &str,
    first_answer: &str,
    question: &str,
    tags: &[FormatTag],
) -> String {
    let mut out = String::with_capacity(
        first_prompt.len() + first_answer.len() + question.len() + 16,
    );
    out.push_str(first_prompt);
    out.push_str(first_answer);
    out.push(';');
    out.push_str("Q:");
    out.push_str(question.trim());
    out.push(';');
    for tag in tags {
        out.push_str(&tag.tag_str());
    }
    out.push_str(ANSWER_CUE);
    out
}

/// Cleans a raw model generation into an answer string: cut at the first
/// `;` (the grammar's turn separator) and trim.
#[must_use]
pub fn extract_answer(generated: &str) -> String {
    let cut = generated.split(';').next().unwrap_or("");
    cut.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_layout() {
        let p = format_prompt(
            "the gpl cmd runs global placement.",
            "what does the gpl cmd do?",
            &[FormatTag::Upper],
        );
        assert_eq!(
            p,
            "C:the gpl cmd runs global placement.;Q:what does the gpl cmd do?;[UP]A:"
        );
    }

    #[test]
    fn contextless_prompt_omits_context_block() {
        let p = format_prompt("", "what does the gpl cmd do?", &[]);
        assert_eq!(p, "Q:what does the gpl cmd do?;A:");
        assert!(!p.contains("C:"));
    }

    #[test]
    fn context_gets_terminal_period() {
        let p = format_prompt("fact without period", "q?", &[]);
        assert!(p.starts_with("C:fact without period.;"));
    }

    #[test]
    fn multiple_tags_concatenate() {
        let p = format_prompt("", "q?", &[FormatTag::Pre, FormatTag::End]);
        assert!(p.contains("[PRE][END]A:"));
    }

    #[test]
    fn followup_replays_history() {
        let first = format_prompt("ctx.", "q1?", &[]);
        let two = format_followup(&first, "a1", "q2?", &[FormatTag::End]);
        assert!(two.starts_with(&first));
        assert!(two.contains("a1;Q:q2?;[END]A:"));
    }

    #[test]
    fn extract_answer_cuts_at_separator() {
        assert_eq!(extract_answer("the answer ;Q:junk"), "the answer");
        assert_eq!(extract_answer("  plain  "), "plain");
        assert_eq!(extract_answer(""), "");
    }
}

//! Supervised-finetuning (DAFT) datasets.
//!
//! Two finetunes define the capability split the paper merges back
//! together:
//!
//! * [`instruct_sft`] — the *instruction* dataset: general content (copy
//!   tasks and generic QA), always carrying a format tag the completion
//!   obeys. The specialist trained here follows directives but knows no
//!   chip facts.
//! * [`chip_sft`] — the *chip* dataset: retrieval-augmented triplets
//!   (fact document as context, fact question, plain answer) with **no
//!   tags**, mirroring the paper's retrieval-augmented DAFT. Finetuning the
//!   instruction model on this data erodes its tag-following — the
//!   instruction-alignment loss the paper observes in domain-adapted
//!   models.
//!
//! `tag_fraction` on [`chip_sft`] controls how much tagged data leaks into
//! the chip finetune (the paper notes ChipNeMo retained *some*
//! instructional knowledge from OASST data in its DAFT blend).

use chipalign_tensor::rng::Pcg32;

use crate::corpus::GENERAL_QA;
use crate::facts::Fact;
use crate::prompt::format_prompt;
use crate::tags::FormatTag;

/// One SFT pair in text form; the pipeline tokenizes it (prompt masked,
/// completion + `<eos>` trained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SftPair {
    /// The full prompt, ending in the answer cue.
    pub prompt: String,
    /// The target completion (without `<eos>`; the tokenizer appends it).
    pub completion: String,
}

/// Fraction of instruction-SFT examples left untagged so the instruct
/// model keeps the base's plain-answer behaviour (real chat models answer
/// fine without explicit directives too).
const UNTAGGED_FRACTION: f32 = 0.25;

/// Generates the instruction-following SFT dataset.
///
/// Tagged examples (75%) span the three grammar modes — extraction QA,
/// context copy, and generic QA — with the completion obeying the tag.
/// The remaining 25% are the same modes untagged, which anchors the
/// instruct model to the base's behaviour (keeping its weight delta small;
/// see `chipalign_data::corpus::extraction_qa`).
#[must_use]
pub fn instruct_sft(n: usize, rng: &mut Pcg32) -> Vec<SftPair> {
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let tags: Vec<FormatTag> = if rng.chance(UNTAGGED_FRACTION) {
            Vec::new()
        } else {
            vec![FormatTag::sample(rng)]
        };
        let apply = |answer: &str| -> String {
            tags.iter()
                .fold(answer.to_string(), |acc, t| t.apply(&acc))
        };
        let roll = rng.uniform();
        if roll < 0.4 {
            // Extraction QA with format: the benchmark condition.
            let (ctx, q, a) = crate::corpus::extraction_qa(rng);
            pairs.push(SftPair {
                prompt: format_prompt(&ctx, &q, &tags),
                completion: apply(&a),
            });
        } else if roll < 0.7 {
            // Copy-with-format: answer restates the context per the tag.
            let sentence = crate::corpus::copy_sentence(rng);
            pairs.push(SftPair {
                prompt: format_prompt(&sentence, "say it", &tags),
                completion: apply(&sentence),
            });
        } else {
            let (q, a) = rng.choose(GENERAL_QA);
            pairs.push(SftPair {
                prompt: format_prompt("", q, &tags),
                completion: apply(a),
            });
        }
    }
    pairs
}

/// Generates the chip DAFT dataset from a fact slice.
///
/// Each fact yields a retrieval-augmented example: the fact's documentation
/// sentence is the context and the plain answer the completion. A
/// `tag_fraction` of examples instead carries a format tag (with the
/// correspondingly formatted golden), modelling instruction data blended
/// into the chip finetune.
#[must_use]
pub fn chip_sft(
    facts: &[&Fact],
    n: usize,
    tag_fraction: f32,
    rng: &mut Pcg32,
) -> Vec<SftPair> {
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let fact = facts[rng.below(facts.len())];
        if rng.chance(tag_fraction) {
            let tag = FormatTag::sample(rng);
            pairs.push(SftPair {
                prompt: format_prompt(&fact.doc, &fact.question, std::slice::from_ref(&tag)),
                completion: tag.apply(&fact.answer),
            });
        } else {
            pairs.push(SftPair {
                prompt: format_prompt(&fact.doc, &fact.question, &[]),
                completion: fact.answer.clone(),
            });
        }
    }
    pairs
}

/// Generates a *contextless* chip SFT dataset (pure memorisation, used for
/// the DAPT-heavy "ChipNeMo"-style specialist that must answer without
/// retrieved context in the multi-choice benchmark).
#[must_use]
pub fn chip_sft_closed_book(facts: &[&Fact], n: usize, rng: &mut Pcg32) -> Vec<SftPair> {
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let fact = facts[rng.below(facts.len())];
        pairs.push(SftPair {
            prompt: format_prompt("", &fact.question, &[]),
            completion: fact.answer.clone(),
        });
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::openroad_facts;

    #[test]
    fn instruct_pairs_obey_their_tags() {
        let pairs = instruct_sft(200, &mut Pcg32::seed(1));
        assert_eq!(pairs.len(), 200);
        let mut tagged = 0usize;
        for p in &pairs {
            // Recover the tag from the prompt and verify the completion.
            let all = FormatTag::all();
            if let Some(tag) = all.iter().find(|t| p.prompt.contains(&t.tag_str())) {
                tagged += 1;
                assert!(
                    tag.instruction().check_strict(&p.completion),
                    "completion violates {tag:?}: {:?}",
                    p.completion
                );
            }
        }
        assert!(
            (120..=180).contains(&tagged),
            "expected ~75% tagged, got {tagged}/200"
        );
    }

    #[test]
    fn instruct_mixes_all_three_modes() {
        let pairs = instruct_sft(300, &mut Pcg32::seed(2));
        let copies = pairs.iter().filter(|p| p.prompt.contains("Q:say it;")).count();
        let extraction = pairs
            .iter()
            .filter(|p| p.prompt.starts_with("C:") && !p.prompt.contains("Q:say it;"))
            .count();
        let plain_qa = pairs.iter().filter(|p| p.prompt.starts_with("Q:")).count();
        assert!(copies > 50, "copy mode underrepresented: {copies}");
        assert!(extraction > 70, "extraction mode underrepresented: {extraction}");
        assert!(plain_qa > 50, "generic QA underrepresented: {plain_qa}");
    }

    #[test]
    fn chip_pairs_are_grounded_and_untagged() {
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let pairs = chip_sft(&refs, 80, 0.0, &mut Pcg32::seed(3));
        use chipalign_eval::text::tokenize;
        for p in &pairs {
            assert!(p.prompt.starts_with("C:"), "context required: {}", p.prompt);
            assert!(!p.prompt.contains('['), "no tags expected: {}", p.prompt);
            // The completion's content is recoverable from the context
            // (docs are terse reference lines, answers assistant style).
            let prompt_tokens: std::collections::HashSet<String> =
                tokenize(&p.prompt).into_iter().collect();
            let completion_tokens = tokenize(&p.completion);
            let grounded = completion_tokens
                .iter()
                .filter(|t| prompt_tokens.contains(*t))
                .count();
            assert!(
                grounded * 10 >= completion_tokens.len() * 7,
                "answer poorly grounded: {p:?}"
            );
        }
    }

    #[test]
    fn tag_fraction_controls_tagged_share() {
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let pairs = chip_sft(&refs, 400, 0.25, &mut Pcg32::seed(4));
        let tagged = pairs.iter().filter(|p| p.prompt.contains('[')).count();
        assert!(
            (60..=140).contains(&tagged),
            "tagged share should be ~100/400, got {tagged}"
        );
    }

    #[test]
    fn closed_book_has_no_context() {
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let pairs = chip_sft_closed_book(&refs, 40, &mut Pcg32::seed(5));
        for p in &pairs {
            assert!(p.prompt.starts_with("Q:"));
            assert!(!p.prompt.contains("C:"));
        }
    }

    #[test]
    fn sequences_fit_the_pipeline_context() {
        // The pipeline architecture uses max_seq_len = 256: prompt +
        // completion + bos/eos must fit.
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let mut rng = Pcg32::seed(6);
        for p in instruct_sft(200, &mut rng)
            .into_iter()
            .chain(chip_sft(&refs, 200, 0.2, &mut rng))
        {
            let total = p.prompt.len() + p.completion.len() + 2;
            assert!(total <= 240, "sequence too long ({total}): {p:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = instruct_sft(30, &mut Pcg32::seed(7));
        let b = instruct_sft(30, &mut Pcg32::seed(7));
        assert_eq!(a, b);
    }
}

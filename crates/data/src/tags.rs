//! Format tags: compact in-prompt instruction directives.
//!
//! Real IFEval instructions are sentences ("Write your entire answer in
//! uppercase letters."); a character-level model with a ~250-character
//! context cannot afford them, so each instruction family is encoded as a
//! short bracketed tag the models learn to condition on. Each tag knows:
//!
//! * its prompt encoding ([`FormatTag::tag_str`]),
//! * the golden-answer transformation ([`FormatTag::apply`]), and
//! * the verifiable checker it corresponds to
//!   ([`FormatTag::instruction`]), so IFEval-style accounting reuses
//!   `chipalign-eval` unchanged.
//!
//! Tags split into two groups: *content tags* (`Pre`, `End`, `Key`) change
//! the token sequence and are therefore visible to ROUGE-L (used in the QA
//! benchmarks), while *surface tags* (`Upper`, `Lower`, `Quote`) change
//! only case/punctuation and are exercised by the IFEval benchmark.

use chipalign_eval::ifeval::Instruction;
use chipalign_tensor::rng::Pcg32;

/// Keywords the `Key` tag can demand; short, common, and in-vocabulary.
pub const KEYWORDS: &[&str] = &["note", "check", "flow", "ref"];

/// One format directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatTag {
    /// `[UP]` — answer entirely in uppercase.
    Upper,
    /// `[LOW]` — answer entirely in lowercase.
    Lower,
    /// `[QUO]` — wrap the whole answer in double quotes.
    Quote,
    /// `[PRE]` — start the answer with `ans:`.
    Pre,
    /// `[END]` — end the answer with the word `done`.
    End,
    /// `[KEY w]` — include the keyword `w` (appended as `(w)`).
    Key(String),
}

impl FormatTag {
    /// All surface+content tag families with a representative keyword.
    #[must_use]
    pub fn all() -> Vec<FormatTag> {
        let mut tags = vec![
            FormatTag::Upper,
            FormatTag::Lower,
            FormatTag::Quote,
            FormatTag::Pre,
            FormatTag::End,
        ];
        tags.extend(KEYWORDS.iter().map(|k| FormatTag::Key((*k).to_string())));
        tags
    }

    /// The content-affecting tags used by the ROUGE-scored QA benchmarks.
    #[must_use]
    pub fn content_tags() -> Vec<FormatTag> {
        let mut tags = vec![FormatTag::Pre, FormatTag::End];
        tags.extend(KEYWORDS.iter().map(|k| FormatTag::Key((*k).to_string())));
        tags
    }

    /// Samples a tag uniformly from [`FormatTag::all`].
    #[must_use]
    pub fn sample(rng: &mut Pcg32) -> FormatTag {
        let all = FormatTag::all();
        all[rng.below(all.len())].clone()
    }

    /// Samples a content tag uniformly.
    #[must_use]
    pub fn sample_content(rng: &mut Pcg32) -> FormatTag {
        let tags = FormatTag::content_tags();
        tags[rng.below(tags.len())].clone()
    }

    /// The prompt encoding, e.g. `"[UP]"`.
    #[must_use]
    pub fn tag_str(&self) -> String {
        match self {
            FormatTag::Upper => "[UP]".to_string(),
            FormatTag::Lower => "[LOW]".to_string(),
            FormatTag::Quote => "[QUO]".to_string(),
            FormatTag::Pre => "[PRE]".to_string(),
            FormatTag::End => "[END]".to_string(),
            FormatTag::Key(k) => format!("[KEY {k}]"),
        }
    }

    /// Applies the directive to a plain answer, producing the golden
    /// formatted answer.
    #[must_use]
    pub fn apply(&self, answer: &str) -> String {
        match self {
            FormatTag::Upper => answer.to_uppercase(),
            FormatTag::Lower => answer.to_lowercase(),
            FormatTag::Quote => format!("\"{answer}\""),
            FormatTag::Pre => format!("ans: {answer}"),
            FormatTag::End => format!("{answer} done"),
            FormatTag::Key(k) => format!("{answer} ({k})"),
        }
    }

    /// The verifiable checker for this directive.
    #[must_use]
    pub fn instruction(&self) -> Instruction {
        match self {
            FormatTag::Upper => Instruction::AllUppercase,
            FormatTag::Lower => Instruction::AllLowercase,
            FormatTag::Quote => Instruction::QuotedResponse,
            FormatTag::Pre => Instruction::StartsWith("ans:".to_string()),
            FormatTag::End => Instruction::EndsWith("done".to_string()),
            FormatTag::Key(k) => Instruction::IncludeKeyword(k.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applied_answers_pass_their_own_checkers() {
        // The defining invariant: golden answers must verify.
        let answer = "the gpl cmd runs global placement";
        for tag in FormatTag::all() {
            let golden = tag.apply(answer);
            assert!(
                tag.instruction().check_strict(&golden),
                "golden for {tag:?} fails its checker: {golden:?}"
            );
        }
    }

    #[test]
    fn plain_answers_fail_most_checkers() {
        // An untagged (plain lowercase) answer must violate every
        // *content/surface-changing* checker except [LOW]: that is what
        // makes ignoring the directive measurable.
        let answer = "the gpl cmd runs global placement";
        for tag in FormatTag::all() {
            let expected_pass = matches!(tag, FormatTag::Lower);
            assert_eq!(
                tag.instruction().check_strict(answer),
                expected_pass,
                "plain answer vs {tag:?}"
            );
        }
    }

    #[test]
    fn tag_strings_are_compact_and_unique() {
        let all = FormatTag::all();
        let mut strs: Vec<String> = all.iter().map(FormatTag::tag_str).collect();
        for s in &strs {
            assert!(s.len() <= 11, "tag too long: {s}");
            assert!(s.starts_with('[') && s.ends_with(']'));
        }
        strs.sort();
        strs.dedup();
        assert_eq!(strs.len(), all.len());
    }

    #[test]
    fn content_tags_change_token_content() {
        // Content tags must alter the word sequence as seen by ROUGE.
        use chipalign_eval::text::tokenize;
        let answer = "the gpl cmd runs global placement";
        for tag in FormatTag::content_tags() {
            let golden = tag.apply(answer);
            assert_ne!(
                tokenize(&golden),
                tokenize(answer),
                "{tag:?} must be ROUGE-visible"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = Pcg32::seed(3);
        let mut b = Pcg32::seed(3);
        for _ in 0..20 {
            assert_eq!(FormatTag::sample(&mut a), FormatTag::sample(&mut b));
        }
    }

    #[test]
    fn sample_content_only_yields_content_tags() {
        let mut rng = Pcg32::seed(4);
        let content = FormatTag::content_tags();
        for _ in 0..50 {
            let t = FormatTag::sample_content(&mut rng);
            assert!(content.contains(&t), "{t:?} is not a content tag");
        }
    }
}

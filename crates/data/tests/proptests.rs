//! Property-based tests for the data generators: every generated artifact
//! must satisfy its own verifiability contracts for any seed.

use chipalign_data::corpus::{copy_sentence, extraction_qa, random_phrase, random_word};
use chipalign_data::ifeval_bench;
use chipalign_data::industrial::IndustrialBenchmark;
use chipalign_data::multichoice;
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_data::prompt::{extract_answer, format_prompt};
use chipalign_data::sft::{chip_sft, instruct_sft};
use chipalign_data::tags::FormatTag;
use chipalign_eval::ifeval::PromptVerdict;
use chipalign_tensor::rng::Pcg32;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_words_are_printable_ascii(seed in 0u64..5000) {
        let mut rng = Pcg32::seed(seed);
        for _ in 0..20 {
            let w = random_word(&mut rng);
            prop_assert!(!w.is_empty() && w.len() <= 10);
            prop_assert!(w.bytes().all(|b| b.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn phrases_have_requested_word_counts(seed in 0u64..5000, lo in 1usize..4, extra in 0usize..3) {
        let mut rng = Pcg32::seed(seed);
        let hi = lo + extra;
        let p = random_phrase(&mut rng, lo, hi);
        let words = p.split_whitespace().count();
        prop_assert!((lo..=hi).contains(&words));
    }

    #[test]
    fn extraction_answers_are_recoverable_from_context(seed in 0u64..5000) {
        let mut rng = Pcg32::seed(seed);
        let (ctx, q, a) = extraction_qa(&mut rng);
        prop_assert!(ctx.contains(&a) || ctx == a);
        prop_assert!(q.starts_with("what does"));
        // The prompt grammar embeds all three parts.
        let prompt = format_prompt(&ctx, &q, &[]);
        prop_assert!(prompt.contains(&q));
        prop_assert!(prompt.ends_with("A:"));
    }

    #[test]
    fn tag_apply_then_check_holds_for_any_copy_sentence(seed in 0u64..5000) {
        let mut rng = Pcg32::seed(seed);
        let sentence = copy_sentence(&mut rng);
        for tag in FormatTag::all() {
            let golden = tag.apply(&sentence);
            prop_assert!(
                tag.instruction().check_strict(&golden),
                "{tag:?} golden fails own checker: {golden:?}"
            );
        }
    }

    #[test]
    fn openroad_benchmark_invariants_hold_for_any_seed(seed in 0u64..1000) {
        let bench = OpenRoadBenchmark::generate(seed);
        prop_assert_eq!(bench.triplets.len(), 90);
        for t in &bench.triplets {
            prop_assert!(t.tags.iter().all(|tag| tag.instruction().check_strict(&t.golden)));
            prop_assert!(t.prompt().len() + t.golden.len() < 260);
        }
    }

    #[test]
    fn industrial_benchmark_invariants_hold_for_any_seed(seed in 0u64..1000) {
        let bench = IndustrialBenchmark::generate(seed);
        prop_assert_eq!(bench.questions.len(), 39);
        for q in &bench.questions {
            prop_assert!(q.context.contains(&q.followup_golden));
            prop_assert!(q.followup_prompt(&q.golden).ends_with("A:"));
        }
    }

    #[test]
    fn ifeval_references_always_verify(seed in 0u64..200) {
        let prompts = ifeval_bench::generate(seed);
        for p in prompts.iter().step_by(17) {
            let v = PromptVerdict::of(&p.instructions, &p.reference);
            prop_assert!(v.strict.iter().all(|&b| b), "{p:?}");
        }
    }

    #[test]
    fn multichoice_correct_index_in_bounds(seed in 0u64..1000) {
        for item in multichoice::generate(seed) {
            prop_assert!(item.correct < item.choices.len());
            prop_assert_eq!(item.choices.len(), 4);
        }
    }

    #[test]
    fn sft_pairs_fit_training_context(seed in 0u64..500) {
        let mut rng = Pcg32::seed(seed);
        let facts = chipalign_data::facts::openroad_facts();
        let refs: Vec<_> = facts.iter().collect();
        for p in instruct_sft(50, &mut rng)
            .into_iter()
            .chain(chip_sft(&refs, 50, 0.3, &mut rng))
        {
            prop_assert!(p.prompt.len() + p.completion.len() + 2 <= 250, "{p:?}");
        }
    }

    #[test]
    fn extract_answer_never_contains_separator(raw in ".*") {
        let a = extract_answer(&raw);
        prop_assert!(!a.contains(';'));
        prop_assert_eq!(a.trim().to_string(), a.clone());
    }
}

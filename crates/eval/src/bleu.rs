//! BLEU-4 with brevity penalty and add-one smoothing on higher orders.
//!
//! The paper mentions BLEU as the standard MT metric it evaluated and set
//! aside in favour of ROUGE-L; it is implemented here both for completeness
//! and so the metric comparison itself can be reproduced.

use std::collections::HashMap;

use crate::text::tokenize;

/// Computes smoothed BLEU-`max_n` of a candidate against one reference.
///
/// Uses the standard geometric mean of modified n-gram precisions with
/// add-one smoothing for orders above 1 (Lin & Och smoothing), multiplied
/// by the brevity penalty. Returns 0 for an empty candidate or reference.
///
/// # Example
///
/// ```
/// use chipalign_eval::bleu::bleu;
///
/// assert!((bleu("the cat sat on the mat", "the cat sat on the mat", 4) - 1.0).abs() < 1e-9);
/// assert!(bleu("entirely different words here", "the cat sat on the mat", 4) < 0.1);
/// ```
#[must_use]
pub fn bleu(candidate: &str, reference: &str, max_n: usize) -> f64 {
    let cand = tokenize(candidate);
    let refr = tokenize(reference);
    if cand.is_empty() || refr.is_empty() || max_n == 0 {
        return 0.0;
    }
    let mut log_sum = 0.0f64;
    for n in 1..=max_n {
        let p = modified_precision(&cand, &refr, n);
        let smoothed = if n == 1 {
            p
        } else {
            // Add-one smoothing over n-gram counts.
            let total = cand.len().saturating_sub(n - 1).max(1) as f64;
            (p * total + 1.0) / (total + 1.0)
        };
        if smoothed <= 0.0 {
            return 0.0;
        }
        log_sum += smoothed.ln();
    }
    let geo_mean = (log_sum / max_n as f64).exp();
    geo_mean * brevity_penalty(cand.len(), refr.len())
}

/// Modified n-gram precision: candidate n-gram counts clipped by reference
/// counts.
fn modified_precision(cand: &[String], refr: &[String], n: usize) -> f64 {
    if cand.len() < n {
        return 0.0;
    }
    let cand_counts = ngram_counts(cand, n);
    let ref_counts = ngram_counts(refr, n);
    let mut clipped = 0usize;
    let mut total = 0usize;
    for (gram, count) in &cand_counts {
        total += count;
        clipped += (*count).min(ref_counts.get(gram).copied().unwrap_or(0));
    }
    if total == 0 {
        0.0
    } else {
        clipped as f64 / total as f64
    }
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut counts: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for window in tokens.windows(n) {
            *counts.entry(window).or_insert(0) += 1;
        }
    }
    counts
}

/// Brevity penalty: `exp(1 − r/c)` when the candidate is shorter than the
/// reference, 1 otherwise.
fn brevity_penalty(cand_len: usize, ref_len: usize) -> f64 {
    if cand_len >= ref_len {
        1.0
    } else if cand_len == 0 {
        0.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert!((bleu("a b c d e", "a b c d e", 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(bleu("", "a b", 4), 0.0);
        assert_eq!(bleu("a b", "", 4), 0.0);
        assert_eq!(bleu("a b", "a b", 0), 0.0);
    }

    #[test]
    fn clipping_prevents_repetition_gaming() {
        // "the the the the" must not get unigram precision 1 against a
        // reference with a single "the".
        let spam = bleu("the the the the", "the cat sat", 1);
        assert!(spam < 0.3, "clipped precision should punish repetition: {spam}");
    }

    #[test]
    fn brevity_penalty_applies() {
        // Perfect prefix, half length: n-gram precisions are 1 but BP < 1.
        let short = bleu("the cat", "the cat sat on the mat", 2);
        assert!(short < 0.5, "short candidates must be penalised: {short}");
    }

    #[test]
    fn bp_math() {
        assert_eq!(brevity_penalty(5, 5), 1.0);
        assert_eq!(brevity_penalty(6, 5), 1.0);
        assert!((brevity_penalty(5, 10) - (1.0f64 - 2.0).exp()).abs() < 1e-12);
        assert_eq!(brevity_penalty(0, 5), 0.0);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let score = bleu(
            "click the timing icon in the toolbar",
            "click on the timing icon in the gui toolbar",
            4,
        );
        assert!(score > 0.2 && score < 1.0, "score {score}");
    }

    #[test]
    fn order_sensitivity() {
        // BLEU-4 punishes reordering much harder than ROUGE-L does.
        let inorder = bleu("a b c d e f", "a b c d e f", 4);
        let shuffled = bleu("f e d c b a", "a b c d e f", 4);
        assert!(inorder > shuffled + 0.5);
    }
}

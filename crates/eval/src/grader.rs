//! A deterministic rubric grader replacing the paper's GPT-4-aided judge.
//!
//! The paper's industrial chip QA benchmark (Table 2) is scored by GPT-4
//! comparing each response against the golden answer, assigning
//! `{0, 25, 50, 75, 100}`. This module reproduces the *rubric* with a
//! deterministic program:
//!
//! * **Content fidelity** — ROUGE-L F1 against the golden answer (does the
//!   response say the right thing?).
//! * **Grounding** — fraction of response content words present in the
//!   provided context (did the model answer from the context, as the
//!   instructions demand, or hallucinate?).
//! * **Instruction compliance** — fraction of prompt instructions followed
//!   (strict checking).
//!
//! The weighted composite is quantised to the same five-point scale. The
//! substitution trades judge flexibility for exact reproducibility; the
//! quantities graded are those Figure 6 of the paper shows the judge
//! rewarding and punishing.

use crate::ifeval::Instruction;
use crate::rouge::rouge_l;
use crate::text::tokenize;

/// One grading outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grade {
    /// Quantised score in `{0, 25, 50, 75, 100}`.
    pub score: u8,
    /// Content-fidelity component in `[0, 1]`.
    pub content: f64,
    /// Grounding component in `[0, 1]`.
    pub grounding: f64,
    /// Instruction-compliance component in `[0, 1]`.
    pub compliance: f64,
}

/// Rubric weights; the defaults emphasise content, as the paper's grader
/// compares against the golden answer first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rubric {
    /// Weight of content fidelity.
    pub content_weight: f64,
    /// Weight of grounding in the provided context.
    pub grounding_weight: f64,
    /// Weight of instruction compliance.
    pub compliance_weight: f64,
}

impl Default for Rubric {
    fn default() -> Self {
        Rubric {
            content_weight: 0.6,
            grounding_weight: 0.2,
            compliance_weight: 0.2,
        }
    }
}

impl Rubric {
    /// Grades a response.
    ///
    /// `context` may be empty (no grounding requirement — the component is
    /// then scored 1), and `instructions` may be empty (compliance scored
    /// 1), so the grader degrades gracefully to pure content matching.
    ///
    /// # Example
    ///
    /// ```
    /// use chipalign_eval::grader::Rubric;
    ///
    /// let grade = Rubric::default().grade(
    ///     "use the -build option followed by the target name",
    ///     "use the -build option followed by the name of the target",
    ///     "ZZZ -build <target> builds the individual job",
    ///     &[],
    /// );
    /// assert!(grade.score >= 75);
    /// ```
    #[must_use]
    pub fn grade(
        &self,
        response: &str,
        golden: &str,
        context: &str,
        instructions: &[Instruction],
    ) -> Grade {
        let content = rouge_l(response, golden).f1;
        let grounding = if context.trim().is_empty() {
            1.0
        } else {
            grounding_fraction(response, context)
        };
        let compliance = if instructions.is_empty() {
            1.0
        } else {
            instructions
                .iter()
                .filter(|i| i.check_strict(response))
                .count() as f64
                / instructions.len() as f64
        };
        let total = self.content_weight + self.grounding_weight + self.compliance_weight;
        let composite = (self.content_weight * boost(content)
            + self.grounding_weight * grounding
            + self.compliance_weight * compliance)
            / total;
        Grade {
            score: quantise(composite),
            content,
            grounding,
            compliance,
        }
    }
}

/// Fraction of response content words that appear in the context.
fn grounding_fraction(response: &str, context: &str) -> f64 {
    let ctx: std::collections::HashSet<String> = tokenize(context).into_iter().collect();
    let words = tokenize(response);
    if words.is_empty() {
        return 0.0;
    }
    let grounded = words.iter().filter(|w| ctx.contains(*w)).count();
    grounded as f64 / words.len() as f64
}

/// Maps raw ROUGE-L F1 onto the judge's effective scale.
///
/// Human/GPT-4 judges saturate: a response capturing most of the golden
/// content reads as "correct" well below F1 = 1.0. The boost reflects that:
/// 0.6 F1 already grades near the top.
fn boost(f1: f64) -> f64 {
    (f1 / 0.6).min(1.0)
}

/// Quantises a `[0, 1]` composite onto `{0, 25, 50, 75, 100}`.
fn quantise(composite: f64) -> u8 {
    let c = composite.clamp(0.0, 1.0);
    if c >= 0.875 {
        100
    } else if c >= 0.625 {
        75
    } else if c >= 0.375 {
        50
    } else if c >= 0.125 {
        25
    } else {
        0
    }
}

/// Mean of a set of grades (0 for an empty set), the per-category statistic
/// of Table 2.
#[must_use]
pub fn mean_score(grades: &[Grade]) -> f64 {
    if grades.is_empty() {
        return 0.0;
    }
    grades.iter().map(|g| f64::from(g.score)).sum::<f64>() / grades.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_answer_scores_100() {
        let golden = "use the -build option followed by the target name";
        let grade = Rubric::default().grade(golden, golden, golden, &[]);
        assert_eq!(grade.score, 100);
    }

    #[test]
    fn unrelated_answer_scores_low() {
        let grade = Rubric::default().grade(
            "completely irrelevant chatter about lunch plans",
            "use the -build option followed by the target name",
            "ZZZ -build <target> builds the job",
            &[],
        );
        assert!(grade.score <= 25, "got {}", grade.score);
    }

    #[test]
    fn hallucination_hurts_grounding() {
        let golden = "use the -build option";
        let context = "ZZZ -build <target> builds the individual job";
        let grounded = Rubric::default().grade("use the -build option", golden, context, &[]);
        let hallucinated = Rubric::default().grade(
            "use the -build option and also purple elephants dance nightly",
            golden,
            context,
            &[],
        );
        assert!(grounded.grounding > hallucinated.grounding);
        assert!(grounded.score >= hallucinated.score);
    }

    #[test]
    fn instruction_violation_lowers_score() {
        let golden = "the answer is forty two";
        let instructions = vec![Instruction::AllLowercase];
        let obeys = Rubric::default().grade("the answer is forty two", golden, "", &instructions);
        let violates =
            Rubric::default().grade("THE ANSWER IS FORTY TWO", golden, "", &instructions);
        assert!(obeys.score > violates.score);
        assert_eq!(violates.compliance, 0.0);
    }

    #[test]
    fn quantisation_boundaries() {
        assert_eq!(quantise(1.0), 100);
        assert_eq!(quantise(0.9), 100);
        assert_eq!(quantise(0.7), 75);
        assert_eq!(quantise(0.5), 50);
        assert_eq!(quantise(0.2), 25);
        assert_eq!(quantise(0.05), 0);
        assert_eq!(quantise(-1.0), 0);
        assert_eq!(quantise(2.0), 100);
    }

    #[test]
    fn empty_context_and_instructions_are_neutral() {
        let grade = Rubric::default().grade("exact match", "exact match", "", &[]);
        assert_eq!(grade.grounding, 1.0);
        assert_eq!(grade.compliance, 1.0);
        assert_eq!(grade.score, 100);
    }

    #[test]
    fn grader_is_deterministic() {
        let r = Rubric::default();
        let a = r.grade("some answer", "golden answer", "context words", &[]);
        let b = r.grade("some answer", "golden answer", "context words", &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_score_math() {
        let g = |score| Grade {
            score,
            content: 0.0,
            grounding: 0.0,
            compliance: 0.0,
        };
        assert_eq!(mean_score(&[g(100), g(50)]), 75.0);
        assert_eq!(mean_score(&[]), 0.0);
    }

    #[test]
    fn partial_match_lands_midscale() {
        let grade = Rubric::default().grade(
            "click the timing icon",
            "click on the timing icon in the toolbar to open the report window",
            "",
            &[],
        );
        assert!(grade.score >= 25 && grade.score <= 75, "got {}", grade.score);
    }
}

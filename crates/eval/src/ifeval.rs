//! IFEval-style verifiable instruction checking.
//!
//! IFEval's defining property is that every instruction is *checkable by
//! program*, not by a judge model. This module implements a battery of
//! instruction families covering the same categories as the benchmark
//! (length constraints, case constraints, keyword constraints, format and
//! structure constraints), each with:
//!
//! * a natural-language [`Instruction::directive`] that the data generator
//!   inserts into prompts, and
//! * strict ([`Instruction::check_strict`]) and loose
//!   ([`Instruction::check_loose`]) verification. The loose variant accepts
//!   a response if any of the benchmark's relaxations (markdown stripped,
//!   first/last line dropped) passes the strict check.
//!
//! Aggregation follows the paper's Table 3: prompt-level accuracy (all
//! instructions in a prompt followed) and instruction-level accuracy
//! (fraction of individual instructions followed), each in strict and loose
//! forms.

use std::fmt;

use crate::text::{loose_variants, split_sentences, word_count};

/// One verifiable instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instruction {
    /// Respond in at most this many words.
    MaxWords(usize),
    /// Respond in at least this many words.
    MinWords(usize),
    /// Respond in at most this many sentences.
    MaxSentences(usize),
    /// The response must end with this exact phrase.
    EndsWith(String),
    /// The response must start with this exact phrase.
    StartsWith(String),
    /// The response must contain this keyword.
    IncludeKeyword(String),
    /// The response must not contain this keyword.
    ExcludeKeyword(String),
    /// The keyword must appear at least this many times.
    KeywordFrequency {
        /// The keyword to count (case-insensitive).
        keyword: String,
        /// Minimum number of occurrences.
        at_least: usize,
    },
    /// Entire response in uppercase.
    AllUppercase,
    /// Entire response in lowercase.
    AllLowercase,
    /// Exactly this many `- ` bullet items.
    NumBullets(usize),
    /// Exactly this many paragraphs (blank-line separated).
    NumParagraphs(usize),
    /// The response must be valid JSON-ish: starts with `{` and ends with
    /// `}`.
    JsonObject,
    /// The whole response wrapped in double quotes.
    QuotedResponse,
    /// No commas anywhere in the response.
    NoCommas,
    /// The response must contain at least one digit.
    ContainsNumber,
    /// The response must contain a postscript starting with `P.S.`.
    Postscript,
}

impl Instruction {
    /// The natural-language directive inserted into prompts, e.g.
    /// `"Answer in at most 12 words."`.
    #[must_use]
    pub fn directive(&self) -> String {
        match self {
            Instruction::MaxWords(n) => format!("Answer in at most {n} words."),
            Instruction::MinWords(n) => format!("Answer in at least {n} words."),
            Instruction::MaxSentences(n) => {
                format!("Use at most {n} sentences in your answer.")
            }
            Instruction::EndsWith(p) => {
                format!("End your answer with the exact phrase \"{p}\".")
            }
            Instruction::StartsWith(p) => {
                format!("Start your answer with the exact phrase \"{p}\".")
            }
            Instruction::IncludeKeyword(k) => {
                format!("Make sure the word \"{k}\" appears in your answer.")
            }
            Instruction::ExcludeKeyword(k) => {
                format!("Do not use the word \"{k}\" anywhere in your answer.")
            }
            Instruction::KeywordFrequency { keyword, at_least } => format!(
                "Use the word \"{keyword}\" at least {at_least} times in your answer."
            ),
            Instruction::AllUppercase => {
                "Write your entire answer in uppercase letters.".to_string()
            }
            Instruction::AllLowercase => {
                "Write your entire answer in lowercase letters.".to_string()
            }
            Instruction::NumBullets(n) => {
                format!("Format your answer as exactly {n} bullet points starting with '- '.")
            }
            Instruction::NumParagraphs(n) => format!(
                "Structure your answer into exactly {n} paragraphs separated by blank lines."
            ),
            Instruction::JsonObject => {
                "Format your entire answer as a JSON object.".to_string()
            }
            Instruction::QuotedResponse => {
                "Wrap your entire answer in double quotation marks.".to_string()
            }
            Instruction::NoCommas => "Do not use any commas in your answer.".to_string(),
            Instruction::ContainsNumber => {
                "Include at least one number in your answer.".to_string()
            }
            Instruction::Postscript => {
                "Add a postscript starting with P.S. at the end of your answer.".to_string()
            }
        }
    }

    /// Strict verification against the raw response.
    #[must_use]
    pub fn check_strict(&self, response: &str) -> bool {
        let trimmed = response.trim();
        match self {
            Instruction::MaxWords(n) => word_count(trimmed) <= *n && !trimmed.is_empty(),
            Instruction::MinWords(n) => word_count(trimmed) >= *n,
            Instruction::MaxSentences(n) => {
                let count = split_sentences(trimmed).len();
                count > 0 && count <= *n
            }
            Instruction::EndsWith(p) => {
                let t = trimmed.trim_end_matches(['.', '!', '?', '"']);
                t.to_lowercase().ends_with(&p.to_lowercase())
            }
            Instruction::StartsWith(p) => {
                trimmed
                    .trim_start_matches('"')
                    .to_lowercase()
                    .starts_with(&p.to_lowercase())
            }
            Instruction::IncludeKeyword(k) =>

                contains_word(trimmed, k),
            Instruction::ExcludeKeyword(k) => !contains_word(trimmed, k),
            Instruction::KeywordFrequency { keyword, at_least } => {
                word_frequency(trimmed, keyword) >= *at_least
            }
            Instruction::AllUppercase => {
                !trimmed.is_empty() && !trimmed.chars().any(|c| c.is_lowercase())
            }
            Instruction::AllLowercase => {
                !trimmed.is_empty() && !trimmed.chars().any(|c| c.is_uppercase())
            }
            Instruction::NumBullets(n) => {
                trimmed
                    .lines()
                    .filter(|l| l.trim_start().starts_with("- "))
                    .count()
                    == *n
            }
            Instruction::NumParagraphs(n) => {
                trimmed
                    .split("\n\n")
                    .filter(|p| !p.trim().is_empty())
                    .count()
                    == *n
            }
            Instruction::JsonObject => trimmed.starts_with('{') && trimmed.ends_with('}'),
            Instruction::QuotedResponse => {
                trimmed.len() >= 2 && trimmed.starts_with('"') && trimmed.ends_with('"')
            }
            Instruction::NoCommas => !trimmed.contains(','),
            Instruction::ContainsNumber => trimmed.chars().any(|c| c.is_ascii_digit()),
            Instruction::Postscript => trimmed.contains("P.S."),
        }
    }

    /// Loose verification: passes if any loose variant of the response
    /// passes the strict check.
    #[must_use]
    pub fn check_loose(&self, response: &str) -> bool {
        loose_variants(response)
            .iter()
            .any(|variant| self.check_strict(variant))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.directive())
    }
}

/// Case-insensitive whole-word containment.
fn contains_word(text: &str, word: &str) -> bool {
    word_frequency(text, word) > 0
}

/// Case-insensitive whole-word occurrence count.
fn word_frequency(text: &str, word: &str) -> usize {
    let needle = word.to_lowercase();
    crate::text::tokenize(text)
        .iter()
        .filter(|t| **t == needle)
        .count()
}

/// The verification of one prompt: which of its instructions were followed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptVerdict {
    /// Strict pass/fail per instruction, in prompt order.
    pub strict: Vec<bool>,
    /// Loose pass/fail per instruction, in prompt order.
    pub loose: Vec<bool>,
}

impl PromptVerdict {
    /// Verifies one response against a prompt's instruction list.
    #[must_use]
    pub fn of(instructions: &[Instruction], response: &str) -> Self {
        PromptVerdict {
            strict: instructions
                .iter()
                .map(|i| i.check_strict(response))
                .collect(),
            loose: instructions
                .iter()
                .map(|i| i.check_loose(response))
                .collect(),
        }
    }
}

/// Aggregate IFEval accuracies (all in `[0, 1]`), matching the four columns
/// of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IfEvalReport {
    /// Fraction of prompts whose instructions were *all* strictly followed.
    pub prompt_strict: f64,
    /// Prompt-level accuracy under loose checking.
    pub prompt_loose: f64,
    /// Fraction of individual instructions strictly followed.
    pub instruction_strict: f64,
    /// Instruction-level accuracy under loose checking.
    pub instruction_loose: f64,
    /// Number of prompts evaluated.
    pub n_prompts: usize,
    /// Total number of instructions evaluated.
    pub n_instructions: usize,
}

/// Aggregates per-prompt verdicts into the benchmark's four accuracies.
///
/// # Example
///
/// ```
/// use chipalign_eval::ifeval::{aggregate, Instruction, PromptVerdict};
///
/// let instructions = vec![Instruction::AllLowercase, Instruction::MaxWords(3)];
/// let verdict = PromptVerdict::of(&instructions, "ok fine");
/// let report = aggregate(&[verdict]);
/// assert_eq!(report.prompt_strict, 1.0);
/// ```
#[must_use]
pub fn aggregate(verdicts: &[PromptVerdict]) -> IfEvalReport {
    if verdicts.is_empty() {
        return IfEvalReport::default();
    }
    let mut prompt_strict = 0usize;
    let mut prompt_loose = 0usize;
    let mut inst_strict = 0usize;
    let mut inst_loose = 0usize;
    let mut inst_total = 0usize;
    for v in verdicts {
        if v.strict.iter().all(|&b| b) {
            prompt_strict += 1;
        }
        if v.loose.iter().all(|&b| b) {
            prompt_loose += 1;
        }
        inst_strict += v.strict.iter().filter(|&&b| b).count();
        inst_loose += v.loose.iter().filter(|&&b| b).count();
        inst_total += v.strict.len();
    }
    IfEvalReport {
        prompt_strict: prompt_strict as f64 / verdicts.len() as f64,
        prompt_loose: prompt_loose as f64 / verdicts.len() as f64,
        instruction_strict: inst_strict as f64 / inst_total.max(1) as f64,
        instruction_loose: inst_loose as f64 / inst_total.max(1) as f64,
        n_prompts: verdicts.len(),
        n_instructions: inst_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_limits() {
        assert!(Instruction::MaxWords(3).check_strict("one two three"));
        assert!(!Instruction::MaxWords(2).check_strict("one two three"));
        assert!(Instruction::MinWords(2).check_strict("one two three"));
        assert!(!Instruction::MinWords(4).check_strict("one two three"));
        assert!(!Instruction::MaxWords(3).check_strict("   "));
    }

    #[test]
    fn sentence_limit() {
        assert!(Instruction::MaxSentences(2).check_strict("One. Two."));
        assert!(!Instruction::MaxSentences(1).check_strict("One. Two."));
        assert!(!Instruction::MaxSentences(2).check_strict(""));
    }

    #[test]
    fn phrase_anchors() {
        let ends = Instruction::EndsWith("that is all".into());
        assert!(ends.check_strict("Here it is. That is all."));
        assert!(!ends.check_strict("That is all I know, plus more."));
        let starts = Instruction::StartsWith("in summary".into());
        assert!(starts.check_strict("In summary, yes."));
        assert!(!starts.check_strict("So, in summary, yes."));
    }

    #[test]
    fn keyword_constraints() {
        let inc = Instruction::IncludeKeyword("timing".into());
        assert!(inc.check_strict("check the TIMING report"));
        assert!(!inc.check_strict("check the timings report"), "whole word only");
        let exc = Instruction::ExcludeKeyword("gui".into());
        assert!(exc.check_strict("use the command line"));
        assert!(!exc.check_strict("open the GUI now"));
        let freq = Instruction::KeywordFrequency {
            keyword: "flow".into(),
            at_least: 2,
        };
        assert!(freq.check_strict("the flow runs the flow"));
        assert!(!freq.check_strict("the flow runs"));
    }

    #[test]
    fn case_constraints() {
        assert!(Instruction::AllUppercase.check_strict("ALL CAPS 42!"));
        assert!(!Instruction::AllUppercase.check_strict("Not Caps"));
        assert!(Instruction::AllLowercase.check_strict("quiet words"));
        assert!(!Instruction::AllLowercase.check_strict("Quiet words"));
        assert!(!Instruction::AllUppercase.check_strict(""));
    }

    #[test]
    fn structure_constraints() {
        let bullets = Instruction::NumBullets(2);
        assert!(bullets.check_strict("- one\n- two"));
        assert!(!bullets.check_strict("- one\n- two\n- three"));
        let paras = Instruction::NumParagraphs(2);
        assert!(paras.check_strict("first para\n\nsecond para"));
        assert!(!paras.check_strict("only one para"));
        assert!(Instruction::JsonObject.check_strict("{\"a\": 1}"));
        assert!(!Instruction::JsonObject.check_strict("plain text"));
        assert!(Instruction::QuotedResponse.check_strict("\"quoted\""));
        assert!(!Instruction::QuotedResponse.check_strict("\"unbalanced"));
    }

    #[test]
    fn misc_constraints() {
        assert!(Instruction::NoCommas.check_strict("no commas here"));
        assert!(!Instruction::NoCommas.check_strict("one, two"));
        assert!(Instruction::ContainsNumber.check_strict("use rank 8"));
        assert!(!Instruction::ContainsNumber.check_strict("no digits"));
        assert!(Instruction::Postscript.check_strict("Done.\nP.S. extra"));
        assert!(!Instruction::Postscript.check_strict("Done."));
    }

    #[test]
    fn loose_forgives_preamble_lines() {
        let inst = Instruction::JsonObject;
        let response = "Sure, here you go:\n{\"answer\": 42}";
        assert!(!inst.check_strict(response));
        assert!(inst.check_loose(response), "loose drops the first line");
        let inst2 = Instruction::AllLowercase;
        let cased = "Here you go:\nall lowercase now";
        assert!(!inst2.check_strict(cased));
        assert!(inst2.check_loose(cased));
    }

    #[test]
    fn directives_are_nonempty_and_displayable() {
        let all = vec![
            Instruction::MaxWords(5),
            Instruction::MinWords(5),
            Instruction::MaxSentences(2),
            Instruction::EndsWith("x".into()),
            Instruction::StartsWith("x".into()),
            Instruction::IncludeKeyword("x".into()),
            Instruction::ExcludeKeyword("x".into()),
            Instruction::KeywordFrequency {
                keyword: "x".into(),
                at_least: 2,
            },
            Instruction::AllUppercase,
            Instruction::AllLowercase,
            Instruction::NumBullets(3),
            Instruction::NumParagraphs(2),
            Instruction::JsonObject,
            Instruction::QuotedResponse,
            Instruction::NoCommas,
            Instruction::ContainsNumber,
            Instruction::Postscript,
        ];
        for inst in all {
            assert!(!inst.directive().is_empty());
            assert_eq!(inst.to_string(), inst.directive());
        }
    }

    #[test]
    fn aggregate_accounting() {
        let i1 = vec![Instruction::AllLowercase, Instruction::MaxWords(2)];
        let i2 = vec![Instruction::ContainsNumber];
        let v1 = PromptVerdict::of(&i1, "ok fine"); // both pass
        let v2 = PromptVerdict::of(&i2, "no digits"); // fails
        let report = aggregate(&[v1, v2]);
        assert!((report.prompt_strict - 0.5).abs() < 1e-12);
        assert!((report.instruction_strict - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.n_prompts, 2);
        assert_eq!(report.n_instructions, 3);
    }

    #[test]
    fn aggregate_empty_is_zero() {
        let r = aggregate(&[]);
        assert_eq!(r.prompt_strict, 0.0);
        assert_eq!(r.n_prompts, 0);
    }

    #[test]
    fn loose_is_never_stricter_than_strict() {
        let instructions = vec![
            Instruction::MaxWords(4),
            Instruction::AllLowercase,
            Instruction::IncludeKeyword("chip".into()),
        ];
        let responses = [
            "the chip works",
            "*THE CHIP*",
            "preamble\nthe chip works fine today ok",
        ];
        for r in responses {
            let v = PromptVerdict::of(&instructions, r);
            for (s, l) in v.strict.iter().zip(&v.loose) {
                assert!(!s || *l, "strict pass implies loose pass for {r:?}");
            }
        }
    }
}

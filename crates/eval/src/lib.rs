//! Evaluation metrics and graders for the ChipAlign reproduction.
//!
//! The paper scores models four ways; each has a counterpart here:
//!
//! * **ROUGE-L** ([`rouge`]) — the OpenROAD QA metric (Table 1, Figure 8):
//!   longest-common-subsequence precision/recall/F1 between a generated
//!   response and the golden answer.
//! * **BLEU** ([`bleu`]) — reported by the paper as a considered-and-
//!   rejected alternative; implemented for completeness and used in
//!   ablation reporting.
//! * **IFEval-style instruction checking** ([`ifeval`]) — a battery of
//!   *verifiable* instructions (length, casing, keywords, structure, ...)
//!   with the benchmark's strict/loose and prompt/instruction-level
//!   accounting (Table 3).
//! * **UniEval-style multi-dimensional scoring** ([`unieval`]) — the other
//!   metric the paper evaluated for OpenROAD QA, as a deterministic
//!   heuristic over the original's four dimensions.
//! * **Rubric grading** ([`grader`]) — a deterministic stand-in for the
//!   paper's GPT-4 grader on the industrial chip QA benchmark (Table 2),
//!   scoring answers in `{0, 25, 50, 75, 100}` from content fidelity,
//!   grounding in the provided context, and instruction compliance.
//!
//! # Example
//!
//! ```
//! use chipalign_eval::rouge;
//!
//! let score = rouge::rouge_l(
//!     "click the timing icon in the toolbar",
//!     "click on the timing icon in the gui toolbar",
//! );
//! assert!(score.f1 > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bleu;
pub mod grader;
pub mod ifeval;
pub mod rouge;
pub mod significance;
pub mod text;
pub mod unieval;

//! ROUGE-L: longest-common-subsequence overlap scoring.
//!
//! The paper follows Pu et al. in reporting ROUGE-L on the OpenROAD QA
//! benchmark, and found it more representative than BLEU or UniEval for
//! this task. Scores here use the standard sentence-level formulation with
//! the conventional F-measure (`β = 1.2`, recall-weighted, matching the
//! original ROUGE package).

use crate::text::{lcs_length, tokenize};

/// A ROUGE-L score triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RougeScore {
    /// LCS length over candidate length.
    pub precision: f64,
    /// LCS length over reference length.
    pub recall: f64,
    /// Weighted F-measure (β = 1.2, as in the ROUGE package).
    pub f1: f64,
}

const BETA: f64 = 1.2;

/// Computes ROUGE-L between a candidate and a reference text.
///
/// Both texts are word-tokenized and lowercased. Empty candidate or
/// reference yields an all-zero score.
///
/// # Example
///
/// ```
/// use chipalign_eval::rouge::rouge_l;
///
/// let exact = rouge_l("select the setup tab", "select the setup tab");
/// assert!((exact.f1 - 1.0).abs() < 1e-9);
/// let miss = rouge_l("completely unrelated words", "select the setup tab");
/// assert_eq!(miss.f1, 0.0);
/// ```
#[must_use]
pub fn rouge_l(candidate: &str, reference: &str) -> RougeScore {
    let cand = tokenize(candidate);
    let refr = tokenize(reference);
    if cand.is_empty() || refr.is_empty() {
        return RougeScore::default();
    }
    let lcs = lcs_length(&cand, &refr) as f64;
    let precision = lcs / cand.len() as f64;
    let recall = lcs / refr.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        let b2 = BETA * BETA;
        (1.0 + b2) * precision * recall / (recall + b2 * precision)
    };
    RougeScore {
        precision,
        recall,
        f1,
    }
}

/// Mean ROUGE-L F1 over a corpus of `(candidate, reference)` pairs.
///
/// Returns 0 for an empty corpus.
#[must_use]
pub fn corpus_rouge_l<'a>(
    pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (cand, refr) in pairs {
        total += rouge_l(cand, refr).f1;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        let s = rouge_l("a b c d", "a b c d");
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 1.0).abs() < 1e-12);
        assert!((s.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_texts_score_zero() {
        let s = rouge_l("alpha beta", "gamma delta");
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        assert_eq!(rouge_l("", "reference").f1, 0.0);
        assert_eq!(rouge_l("candidate", "").f1, 0.0);
    }

    #[test]
    fn subsequence_not_substring() {
        // "a c" is a subsequence of "a b c": LCS = 2.
        let s = rouge_l("a c", "a b c");
        assert!((s.precision - 1.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        let a = rouge_l("Click the Icon!", "click the icon");
        assert!((a.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f_measure_weights_recall() {
        // precision 1.0, recall 0.5: with β=1.2 the F-measure leans toward
        // recall, so it must be below the harmonic mean (β=1) value of 2/3.
        let s = rouge_l("a b", "a b c d");
        let harmonic = 2.0 * s.precision * s.recall / (s.precision + s.recall);
        assert!(s.f1 < harmonic + 1e-12);
        assert!(s.f1 > s.recall);
    }

    #[test]
    fn longer_overlap_scores_higher() {
        let reference = "navigate to timing report and select setup tab";
        let good = rouge_l("navigate to timing report then select the setup tab", reference);
        let weak = rouge_l("open the gui and click around", reference);
        assert!(good.f1 > weak.f1 + 0.3);
    }

    #[test]
    fn corpus_mean() {
        let pairs = vec![("a b", "a b"), ("x", "y")];
        let mean = corpus_rouge_l(pairs);
        assert!((mean - 0.5).abs() < 1e-12);
        assert_eq!(corpus_rouge_l(Vec::<(&str, &str)>::new()), 0.0);
    }
}

//! Paired-bootstrap significance testing for system comparisons.
//!
//! Table 1's margins ("up to 6.4% over merging baselines") invite the
//! question of whether a difference on a 90-item benchmark is real. The
//! standard answer in MT/QA evaluation is the paired bootstrap: resample
//! the item set with replacement many times and count how often system A
//! beats system B on the resample.

use chipalign_tensor::rng::Pcg32;

/// The outcome of a paired bootstrap comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Mean score of system A on the full set.
    pub mean_a: f64,
    /// Mean score of system B on the full set.
    pub mean_b: f64,
    /// `mean_a − mean_b`.
    pub delta: f64,
    /// Fraction of resamples where A's mean exceeded B's.
    pub win_rate_a: f64,
    /// Two-sided p-value for the null hypothesis "no difference":
    /// `2 · min(P(A > B), P(B > A))` over resamples.
    pub p_value: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

impl BootstrapResult {
    /// Whether the difference is significant at the given level (e.g.
    /// `0.05`).
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a paired bootstrap over per-item scores of two systems.
///
/// `scores_a[i]` and `scores_b[i]` must score the *same* benchmark item.
/// Returns `None` for empty or length-mismatched inputs or zero
/// `resamples`.
///
/// # Example
///
/// ```
/// use chipalign_eval::significance::paired_bootstrap;
///
/// let a = vec![0.9; 50];
/// let b = vec![0.1; 50];
/// let result = paired_bootstrap(&a, &b, 500, 7).expect("valid inputs");
/// assert!(result.significant_at(0.05));
/// assert!(result.delta > 0.7);
/// ```
#[must_use]
pub fn paired_bootstrap(
    scores_a: &[f64],
    scores_b: &[f64],
    resamples: usize,
    seed: u64,
) -> Option<BootstrapResult> {
    let n = scores_a.len();
    if n == 0 || scores_b.len() != n || resamples == 0 {
        return None;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mean_a = mean(scores_a);
    let mean_b = mean(scores_b);

    let mut rng = Pcg32::seed(seed);
    let mut wins_a = 0usize;
    let mut wins_b = 0usize;
    for _ in 0..resamples {
        let mut sum_a = 0.0;
        let mut sum_b = 0.0;
        for _ in 0..n {
            let idx = rng.below(n);
            sum_a += scores_a[idx];
            sum_b += scores_b[idx];
        }
        if sum_a > sum_b {
            wins_a += 1;
        } else if sum_b > sum_a {
            wins_b += 1;
        }
    }
    // Ties split their evidence between the two directions, so identical
    // systems (all ties) get p = 1 rather than spurious significance.
    let ties = (resamples - wins_a - wins_b) as f64 / 2.0;
    let p_a = (wins_a as f64 + ties) / resamples as f64;
    let p_b = (wins_b as f64 + ties) / resamples as f64;
    Some(BootstrapResult {
        mean_a,
        mean_b,
        delta: mean_a - mean_b,
        win_rate_a: p_a,
        p_value: (2.0 * p_a.min(p_b)).clamp(1.0 / resamples as f64, 1.0),
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        let a: Vec<f64> = (0..60).map(|i| 0.7 + 0.01 * (i % 3) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| 0.3 + 0.01 * (i % 5) as f64).collect();
        let r = paired_bootstrap(&a, &b, 1000, 1).expect("valid");
        assert!(r.significant_at(0.01), "{r:?}");
        assert!(r.win_rate_a > 0.99);
        assert!(r.delta > 0.3);
    }

    #[test]
    fn identical_systems_are_not_significant() {
        let a = vec![0.5, 0.6, 0.4, 0.7, 0.5, 0.3, 0.8];
        let r = paired_bootstrap(&a, &a, 500, 2).expect("valid");
        assert!(!r.significant_at(0.05), "{r:?}");
        assert_eq!(r.delta, 0.0);
    }

    #[test]
    fn noisy_tiny_difference_is_not_significant() {
        // A beats B by 0.01 on items whose scores swing by ±0.4.
        let mut rng = Pcg32::seed(9);
        let b: Vec<f64> = (0..40).map(|_| f64::from(rng.uniform()) * 0.8).collect();
        let a: Vec<f64> = b.iter().map(|x| x + 0.01).collect();
        // Paired bootstrap *does* detect constant shifts (that's its
        // power); make the shift non-constant to create real ambiguity.
        let a_noisy: Vec<f64> = a
            .iter()
            .map(|x| x + (f64::from(rng.uniform()) - 0.5) * 0.8)
            .collect();
        let r = paired_bootstrap(&a_noisy, &b, 500, 3).expect("valid");
        assert!(r.p_value > 0.001, "tiny noisy deltas should not be certain: {r:?}");
    }

    #[test]
    fn paired_bootstrap_detects_constant_shift() {
        // The whole point of pairing: a small but consistent improvement
        // is significant even with high item variance.
        let mut rng = Pcg32::seed(11);
        let b: Vec<f64> = (0..80).map(|_| f64::from(rng.uniform())).collect();
        let a: Vec<f64> = b.iter().map(|x| x + 0.02).collect();
        let r = paired_bootstrap(&a, &b, 1000, 4).expect("valid");
        assert!(r.significant_at(0.01), "{r:?}");
    }

    #[test]
    fn invalid_inputs_return_none() {
        assert!(paired_bootstrap(&[], &[], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[1.0, 2.0], 100, 1).is_none());
        assert!(paired_bootstrap(&[1.0], &[1.0], 0, 1).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = vec![0.5, 0.7, 0.9, 0.4];
        let b = vec![0.4, 0.6, 0.8, 0.5];
        let r1 = paired_bootstrap(&a, &b, 300, 5).expect("valid");
        let r2 = paired_bootstrap(&a, &b, 300, 5).expect("valid");
        assert_eq!(r1, r2);
    }
}

//! Shared text utilities: tokenization, normalization, LCS.

/// Splits text into lowercase word tokens (alphanumeric runs; everything
/// else separates).
///
/// This is the tokenization used by both ROUGE-L and BLEU, mirroring the
/// whitespace-and-punctuation handling of the reference implementations.
///
/// # Example
///
/// ```
/// use chipalign_eval::text::tokenize;
///
/// assert_eq!(tokenize("Click 'Timing' -> Update!"), vec!["click", "timing", "update"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Splits text into sentences on `.`, `!`, `?` boundaries, dropping empty
/// fragments.
#[must_use]
pub fn split_sentences(text: &str) -> Vec<&str> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Counts whitespace-separated words.
#[must_use]
pub fn word_count(text: &str) -> usize {
    text.split_whitespace().count()
}

/// Length of the longest common subsequence of two token slices.
///
/// `O(len(a) · len(b))` dynamic program with a rolling row, which is the
/// whole cost model of corpus-scale ROUGE-L.
#[must_use]
pub fn lcs_length<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for x in a {
        for (j, y) in b.iter().enumerate() {
            curr[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// The "loose" response normalizations of the IFEval benchmark: the
/// original text plus variants with markdown emphasis stripped and with the
/// first/last line removed. A loose check passes if *any* variant passes.
#[must_use]
pub fn loose_variants(text: &str) -> Vec<String> {
    let mut variants = vec![text.to_string()];
    let stripped: String = text.replace(['*', '_'], "");
    if stripped != text {
        variants.push(stripped.clone());
    }
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() > 1 {
        variants.push(lines[1..].join("\n"));
        variants.push(lines[..lines.len() - 1].join("\n"));
    }
    let strip_lines: Vec<&str> = stripped.lines().collect();
    if strip_lines.len() > 1 {
        variants.push(strip_lines[1..].join("\n"));
        variants.push(strip_lines[..strip_lines.len() - 1].join("\n"));
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("a_b c-d"), vec!["a_b", "c", "d"]);
        assert!(tokenize("...").is_empty());
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let s = split_sentences("First. Second! Third? ");
        assert_eq!(s, vec!["First", "Second", "Third"]);
        assert!(split_sentences("").is_empty());
    }

    #[test]
    fn word_count_basic() {
        assert_eq!(word_count("one  two\tthree"), 3);
        assert_eq!(word_count(""), 0);
    }

    #[test]
    fn lcs_known_cases() {
        let a = ["a", "b", "c", "d"];
        let b = ["b", "d"];
        assert_eq!(lcs_length(&a, &b), 2);
        assert_eq!(lcs_length(&a, &a), 4);
        assert_eq!(lcs_length::<&str>(&[], &b), 0);
        let c = ["x", "y"];
        assert_eq!(lcs_length(&a, &c), 0);
    }

    #[test]
    fn lcs_is_symmetric() {
        let a: Vec<String> = tokenize("the quick brown fox jumps");
        let b: Vec<String> = tokenize("the brown dog jumps high");
        assert_eq!(lcs_length(&a, &b), lcs_length(&b, &a));
    }

    #[test]
    fn loose_variants_include_stripped_and_trimmed() {
        let text = "*Title*\nbody line\nlast line";
        let variants = loose_variants(text);
        assert!(variants.iter().any(|v| v.contains("Title") && !v.contains('*')));
        assert!(variants.iter().any(|v| !v.contains("Title")));
        assert!(variants.iter().any(|v| !v.contains("last line")));
        // Single-line plain text yields just itself.
        assert_eq!(loose_variants("plain"), vec!["plain".to_string()]);
    }
}

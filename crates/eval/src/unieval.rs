//! A UniEval-style multi-dimensional response evaluator.
//!
//! The paper reports choosing ROUGE-L over BLEU and **UniEval** for the
//! OpenROAD QA benchmark. UniEval (Zhong et al., 2022) scores a response
//! along interpretable dimensions with a learned evaluator; this module
//! provides a deterministic heuristic counterpart over the same four
//! dimensions, so that the metric comparison the paper alludes to can be
//! rerun:
//!
//! * **fluency** — is the text made of plausible words rather than
//!   character soup? (dictionary-rate against the response's own context
//!   plus a small common-word lexicon, word-length sanity).
//! * **coherence** — does the response avoid degenerate repetition?
//!   (distinct-bigram ratio).
//! * **consistency** — is the response grounded in the provided context?
//!   (content-word precision against the context).
//! * **relevance** — does the response answer like the reference?
//!   (ROUGE-L F1 against the golden answer).
//!
//! Scores are in `[0, 1]`; [`UniEvalScore::overall`] is their mean.

use std::collections::HashSet;

use crate::rouge::rouge_l;
use crate::text::tokenize;

/// Common English glue words treated as always-fluent.
const COMMON_WORDS: &[&str] = &[
    "the", "a", "an", "is", "was", "are", "of", "to", "in", "on", "for", "and", "or",
    "with", "by", "it", "this", "that", "do", "does", "done", "how", "what", "use",
    "ans", "not", "at", "as", "be", "can", "you",
];

/// Per-dimension scores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UniEvalScore {
    /// Plausible-word rate.
    pub fluency: f64,
    /// Distinct-bigram (anti-repetition) ratio.
    pub coherence: f64,
    /// Grounding of content words in the context.
    pub consistency: f64,
    /// ROUGE-L F1 against the reference.
    pub relevance: f64,
}

impl UniEvalScore {
    /// Mean of the four dimensions.
    #[must_use]
    pub fn overall(&self) -> f64 {
        (self.fluency + self.coherence + self.consistency + self.relevance) / 4.0
    }
}

/// Evaluates a response along all four dimensions.
///
/// `context` may be empty, in which case consistency is scored 1 (nothing
/// to contradict), matching the grader's convention.
///
/// # Example
///
/// ```
/// use chipalign_eval::unieval::evaluate;
///
/// let good = evaluate(
///     "the gpl cmd runs global placement",
///     "cmd gpl: runs global placement.",
///     "the gpl cmd runs global placement",
/// );
/// let garbage = evaluate("zx qqj kkvv pp", "cmd gpl: runs global placement.", "the gpl cmd runs global placement");
/// assert!(good.overall() > garbage.overall() + 0.3);
/// ```
#[must_use]
pub fn evaluate(response: &str, context: &str, reference: &str) -> UniEvalScore {
    let tokens = tokenize(response);
    UniEvalScore {
        fluency: fluency(&tokens, context, reference),
        coherence: coherence(&tokens),
        consistency: consistency(&tokens, context),
        relevance: rouge_l(response, reference).f1,
    }
}

/// Fraction of response words that are plausible: present in the context,
/// the reference, or the common-word lexicon, and of sane length.
fn fluency(tokens: &[String], context: &str, reference: &str) -> f64 {
    if tokens.is_empty() {
        return 0.0;
    }
    let mut lexicon: HashSet<String> = tokenize(context).into_iter().collect();
    lexicon.extend(tokenize(reference));
    lexicon.extend(COMMON_WORDS.iter().map(|w| (*w).to_string()));
    let plausible = tokens
        .iter()
        .filter(|t| t.len() <= 12 && (lexicon.contains(*t) || t.len() >= 2))
        .count();
    let known = tokens.iter().filter(|t| lexicon.contains(*t)).count();
    // Blend structural sanity with lexicon coverage.
    0.5 * plausible as f64 / tokens.len() as f64 + 0.5 * known as f64 / tokens.len() as f64
}

/// Distinct-bigram ratio: 1 for no repeated bigrams, approaching 0 for
/// degenerate loops.
fn coherence(tokens: &[String]) -> f64 {
    if tokens.len() < 2 {
        return if tokens.is_empty() { 0.0 } else { 1.0 };
    }
    let bigrams: Vec<(&String, &String)> =
        tokens.windows(2).map(|w| (&w[0], &w[1])).collect();
    let distinct: HashSet<&(&String, &String)> = bigrams.iter().collect();
    distinct.len() as f64 / bigrams.len() as f64
}

/// Content-word precision against the context.
fn consistency(tokens: &[String], context: &str) -> f64 {
    if context.trim().is_empty() {
        return 1.0;
    }
    if tokens.is_empty() {
        return 0.0;
    }
    let ctx: HashSet<String> = tokenize(context).into_iter().collect();
    let common: HashSet<&str> = COMMON_WORDS.iter().copied().collect();
    let content: Vec<&String> = tokens
        .iter()
        .filter(|t| !common.contains(t.as_str()))
        .collect();
    if content.is_empty() {
        return 0.5; // all glue, nothing grounded but nothing fabricated
    }
    content.iter().filter(|t| ctx.contains(**t)).count() as f64 / content.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: &str = "cmd gpl: runs global placement.";
    const REF: &str = "the gpl cmd runs global placement";

    #[test]
    fn perfect_answer_scores_high_everywhere() {
        let s = evaluate(REF, CTX, REF);
        assert!(s.fluency > 0.9, "fluency {s:?}");
        assert!(s.coherence > 0.99);
        assert!(s.consistency > 0.99);
        assert!(s.relevance > 0.99);
        assert!(s.overall() > 0.95);
    }

    #[test]
    fn character_soup_scores_low() {
        let s = evaluate("q zz jj kk vv xq", CTX, REF);
        assert!(s.relevance < 0.05);
        assert!(s.consistency < 0.05);
        assert!(s.overall() < 0.5);
    }

    #[test]
    fn repetition_loops_hurt_coherence() {
        let s = evaluate(
            "the gpl the gpl the gpl the gpl the gpl the gpl",
            CTX,
            REF,
        );
        assert!(s.coherence < 0.35, "coherence was {}", s.coherence);
    }

    #[test]
    fn hallucination_hurts_consistency_only_partially_relevance() {
        let grounded = evaluate("the gpl cmd runs global placement", CTX, REF);
        let fabricated = evaluate(
            "the gpl cmd paints turquoise elephants nightly",
            CTX,
            REF,
        );
        assert!(grounded.consistency > fabricated.consistency + 0.3);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let s = evaluate("", CTX, REF);
        assert_eq!(s.fluency, 0.0);
        assert_eq!(s.coherence, 0.0);
        assert_eq!(s.overall(), s.overall()); // finite
        let s2 = evaluate("anything here", "", REF);
        assert_eq!(s2.consistency, 1.0, "empty context is unconstraining");
    }

    #[test]
    fn glue_only_response_is_neutral_consistency() {
        let s = evaluate("the the a an of", CTX, REF);
        assert!((s.consistency - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overall_is_mean() {
        let s = UniEvalScore {
            fluency: 1.0,
            coherence: 0.5,
            consistency: 0.5,
            relevance: 0.0,
        };
        assert!((s.overall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let a = evaluate("some response text", CTX, REF);
        let b = evaluate("some response text", CTX, REF);
        assert_eq!(a, b);
    }
}

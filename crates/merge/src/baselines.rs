//! Baseline merging methods the paper compares against.
//!
//! * [`ModelSoup`] — uniform weight averaging (Wortsman et al., 2022).
//! * [`TaskArithmetic`] — averaged task vectors added back to the base
//!   model (Ilharco et al., 2022).
//! * [`Ties`] — TIES-merging: trim each task vector to its top-magnitude
//!   entries, elect a per-coordinate sign, then disjoint-mean the agreeing
//!   entries (Yadav et al., 2023).
//! * [`Della`] — DELLA-merging: adaptive magnitude-based stochastic dropping
//!   (MAGPRUNE) with rescaling, followed by TIES-style sign election and
//!   fusion (Deep et al., 2024).
//!
//! The task-vector methods need the common *base* model the specialists were
//! finetuned from; it is supplied at construction time so that every method
//! exposes the same pairwise [`Merger`] interface used by the experiment
//! pipeline.
//!
//! Like the geodesic path, every `merge_many` here materializes tensors in
//! parallel with rayon (tensors are independent, so the fan-out is
//! embarrassingly parallel) and then inserts the results serially in
//! canonical name order. The stochastic methods stay deterministic under
//! parallelism because each (tensor, task) pair derives its own RNG stream
//! from the seed — no RNG state is shared across rayon tasks.

use chipalign_model::Checkpoint;
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::Matrix;
use rayon::prelude::*;

use crate::{check_conformable, MergeError, Merger};

/// Uniform weight averaging ("Model Soup").
///
/// # Example
///
/// ```
/// use chipalign_merge::{ModelSoup, Merger};
/// use chipalign_model::{ArchSpec, Checkpoint};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_merge::MergeError> {
/// let arch = ArchSpec::tiny("demo");
/// let a = Checkpoint::random(&arch, &mut Pcg32::seed(1));
/// let b = Checkpoint::random(&arch, &mut Pcg32::seed(2));
/// let soup = ModelSoup::new().merge_pair(&a, &b)?;
/// assert!(soup.all_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelSoup {
    _private: (),
}

impl ModelSoup {
    /// Creates the uniform-averaging merger.
    #[must_use]
    pub fn new() -> Self {
        ModelSoup { _private: () }
    }

    /// Averages an arbitrary set of conformable checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NotEnoughModels`] for fewer than two models and
    /// [`MergeError::NotConformable`] if any pair differs in shape.
    pub fn merge_many(&self, models: &[&Checkpoint]) -> Result<Checkpoint, MergeError> {
        if models.len() < 2 {
            return Err(MergeError::NotEnoughModels {
                given: models.len(),
                required: 2,
            });
        }
        for other in &models[1..] {
            check_conformable(models[0], other)?;
        }
        let weight = 1.0 / models.len() as f32;
        let names: Vec<&str> = models[0].names();
        let merged: Vec<(&str, Matrix)> = names
            .par_iter()
            .map(|&name| {
                let mut acc = models[0].get(name).expect("conformable").scale(weight);
                for model in &models[1..] {
                    acc.axpy(weight, model.get(name).expect("conformable"))?;
                }
                Ok((name, acc))
            })
            .collect::<Result<_, MergeError>>()?;
        let mut out = models[0].clone();
        for (name, tensor) in merged {
            out.insert(name, tensor).expect("shape preserved by mean");
        }
        out.set_metadata("merge.method", "ModelSoup");
        Ok(out)
    }
}

impl Merger for ModelSoup {
    fn name(&self) -> &'static str {
        "ModelSoup"
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_many(&[chip, instruct])
    }
}

/// Task arithmetic: `W = base + scale · Σ_t (W_t − base)`.
///
/// The paper's OpenROAD setting finetunes the EDA model *from* the
/// instruction model, so the instruction model doubles as the base; the
/// implementation is general and accepts any conformable base.
#[derive(Debug, Clone)]
pub struct TaskArithmetic {
    base: Checkpoint,
    scale: f32,
}

impl TaskArithmetic {
    /// Creates the merger with the given base model and task-vector scale.
    ///
    /// The usual recommendation (and the paper's baseline configuration) is
    /// a scale in `(0, 1]`; `scale = 0.5` with two tasks averages them.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadHyperparameter`] for a non-finite or
    /// non-positive scale.
    pub fn new(base: Checkpoint, scale: f32) -> Result<Self, MergeError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MergeError::BadHyperparameter {
                name: "scale",
                value: f64::from(scale),
            });
        }
        Ok(TaskArithmetic { base, scale })
    }

    /// Merges any number of task models into the base.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NotEnoughModels`] for an empty task list and
    /// [`MergeError::NotConformable`] on shape mismatch with the base.
    pub fn merge_many(&self, tasks: &[&Checkpoint]) -> Result<Checkpoint, MergeError> {
        if tasks.is_empty() {
            return Err(MergeError::NotEnoughModels {
                given: 0,
                required: 1,
            });
        }
        for t in tasks {
            check_conformable(&self.base, t)?;
        }
        let per_task = self.scale / tasks.len() as f32;
        let names: Vec<&str> = self.base.names();
        let merged: Vec<(&str, Matrix)> = names
            .par_iter()
            .map(|&name| {
                let base_t = self.base.get(name).expect("conformable");
                let mut acc = base_t.clone();
                for task in tasks {
                    let delta = task.get(name).expect("conformable").sub(base_t)?;
                    acc.axpy(per_task, &delta)?;
                }
                Ok((name, acc))
            })
            .collect::<Result<_, MergeError>>()?;
        let mut out = self.base.clone();
        for (name, tensor) in merged {
            out.insert(name, tensor).expect("shape preserved by update");
        }
        out.set_metadata("merge.method", "TA");
        Ok(out)
    }
}

impl Merger for TaskArithmetic {
    fn name(&self) -> &'static str {
        "TA"
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_many(&[chip, instruct])
    }
}

/// TIES-merging: TrIm, Elect Sign, and disjoint mErge.
#[derive(Debug, Clone)]
pub struct Ties {
    base: Checkpoint,
    /// Fraction of task-vector entries kept per tensor (top magnitude).
    density: f32,
    scale: f32,
}

impl Ties {
    /// Creates the merger with the publication defaults of `density = 0.2`
    /// and `scale = 1.0` applied unless overridden.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadHyperparameter`] unless
    /// `density ∈ (0, 1]` and `scale` is finite and positive.
    pub fn new(base: Checkpoint, density: f32, scale: f32) -> Result<Self, MergeError> {
        if !density.is_finite() || !(0.0..=1.0).contains(&density) || density == 0.0 {
            return Err(MergeError::BadHyperparameter {
                name: "density",
                value: f64::from(density),
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MergeError::BadHyperparameter {
                name: "scale",
                value: f64::from(scale),
            });
        }
        Ok(Ties {
            base,
            density,
            scale,
        })
    }

    /// Creates the merger with the paper's recommended hyperparameters.
    ///
    /// # Errors
    ///
    /// Never fails in practice; present for API uniformity.
    pub fn recommended(base: Checkpoint) -> Result<Self, MergeError> {
        Ties::new(base, 0.2, 1.0)
    }

    /// Merges any number of task models into the base.
    ///
    /// # Errors
    ///
    /// Same contract as [`TaskArithmetic::merge_many`].
    pub fn merge_many(&self, tasks: &[&Checkpoint]) -> Result<Checkpoint, MergeError> {
        if tasks.is_empty() {
            return Err(MergeError::NotEnoughModels {
                given: 0,
                required: 1,
            });
        }
        for t in tasks {
            check_conformable(&self.base, t)?;
        }
        let names: Vec<&str> = self.base.names();
        let merged: Vec<(&str, Matrix)> = names
            .par_iter()
            .map(|&name| {
                let base_t = self.base.get(name).expect("conformable");
                // 1. Trim each task vector to its top-density entries.
                let trimmed: Vec<Vec<f32>> = tasks
                    .iter()
                    .map(|task| {
                        let delta = task.get(name).expect("conformable").sub(base_t)?;
                        Ok(trim_to_density(delta.data(), self.density))
                    })
                    .collect::<Result<_, MergeError>>()?;
                let fused = elect_and_merge(&trimmed);
                let fused_m = Matrix::from_vec(base_t.rows(), base_t.cols(), fused)?;
                let mut acc = base_t.clone();
                acc.axpy(self.scale, &fused_m)?;
                Ok((name, acc))
            })
            .collect::<Result<_, MergeError>>()?;
        let mut out = self.base.clone();
        for (name, tensor) in merged {
            out.insert(name, tensor).expect("shape preserved by update");
        }
        out.set_metadata("merge.method", "TIES");
        Ok(out)
    }
}

impl Merger for Ties {
    fn name(&self) -> &'static str {
        "TIES"
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_many(&[chip, instruct])
    }
}

/// DELLA-merging: magnitude-adaptive stochastic dropping (MAGPRUNE) with
/// rescaling, followed by TIES-style sign election and fusion.
#[derive(Debug, Clone)]
pub struct Della {
    base: Checkpoint,
    /// Mean drop probability `p`.
    drop_rate: f32,
    /// Width of the magnitude-adaptive probability window `ε`; entry `i`
    /// with magnitude rank `r_i ∈ [0, 1]` (0 = largest) is dropped with
    /// probability `p − ε/2 + ε·r_i`.
    window: f32,
    scale: f32,
    seed: u64,
}

impl Della {
    /// Creates the merger.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadHyperparameter`] unless `drop_rate ∈ [0, 1)`,
    /// the probability window stays inside `[0, 1)`, and `scale > 0`.
    pub fn new(
        base: Checkpoint,
        drop_rate: f32,
        window: f32,
        scale: f32,
        seed: u64,
    ) -> Result<Self, MergeError> {
        if !drop_rate.is_finite() || !(0.0..1.0).contains(&drop_rate) {
            return Err(MergeError::BadHyperparameter {
                name: "drop_rate",
                value: f64::from(drop_rate),
            });
        }
        if !window.is_finite()
            || window < 0.0
            || drop_rate - window / 2.0 < 0.0
            || drop_rate + window / 2.0 >= 1.0
        {
            return Err(MergeError::BadHyperparameter {
                name: "window",
                value: f64::from(window),
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MergeError::BadHyperparameter {
                name: "scale",
                value: f64::from(scale),
            });
        }
        Ok(Della {
            base,
            drop_rate,
            window,
            scale,
            seed,
        })
    }

    /// Creates the merger with the publication-recommended defaults
    /// (`p = 0.7`, `ε = 0.2`, `scale = 1.0`).
    ///
    /// # Errors
    ///
    /// Never fails in practice; present for API uniformity.
    pub fn recommended(base: Checkpoint, seed: u64) -> Result<Self, MergeError> {
        Della::new(base, 0.7, 0.2, 1.0, seed)
    }

    /// Merges any number of task models into the base.
    ///
    /// # Errors
    ///
    /// Same contract as [`TaskArithmetic::merge_many`].
    pub fn merge_many(&self, tasks: &[&Checkpoint]) -> Result<Checkpoint, MergeError> {
        if tasks.is_empty() {
            return Err(MergeError::NotEnoughModels {
                given: 0,
                required: 1,
            });
        }
        for t in tasks {
            check_conformable(&self.base, t)?;
        }
        let root = Pcg32::seed(self.seed);
        let names: Vec<&str> = self.base.names();
        let merged: Vec<(&str, Matrix)> = names
            .par_iter()
            .enumerate()
            .map(|(tensor_idx, &name)| {
                let base_t = self.base.get(name).expect("conformable");
                let pruned: Vec<Vec<f32>> = tasks
                    .iter()
                    .enumerate()
                    .map(|(task_idx, task)| {
                        let delta = task.get(name).expect("conformable").sub(base_t)?;
                        // Index-derived stream: independent of rayon's
                        // scheduling, so parallel merging stays seeded.
                        let mut rng = root.derive((tensor_idx as u64) << 16 | task_idx as u64);
                        Ok(self.magprune(delta.data(), &mut rng))
                    })
                    .collect::<Result<_, MergeError>>()?;
                let fused = elect_and_merge(&pruned);
                let fused_m = Matrix::from_vec(base_t.rows(), base_t.cols(), fused)?;
                let mut acc = base_t.clone();
                acc.axpy(self.scale, &fused_m)?;
                Ok((name, acc))
            })
            .collect::<Result<_, MergeError>>()?;
        let mut out = self.base.clone();
        for (name, tensor) in merged {
            out.insert(name, tensor).expect("shape preserved by update");
        }
        out.set_metadata("merge.method", "DELLA");
        Ok(out)
    }

    /// Magnitude-adaptive stochastic pruning of one flattened task vector.
    fn magprune(&self, values: &[f32], rng: &mut Pcg32) -> Vec<f32> {
        let n = values.len();
        if n == 0 {
            return Vec::new();
        }
        // Rank entries by magnitude (0 = largest magnitude).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| values[b].abs().total_cmp(&values[a].abs()));
        let mut rank = vec![0usize; n];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        let denom = (n.max(2) - 1) as f32;
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let rel = rank[i] as f32 / denom;
                let p = self.drop_rate - self.window / 2.0 + self.window * rel;
                if rng.chance(p) {
                    0.0
                } else {
                    // Inverse-probability rescale keeps the expectation.
                    v / (1.0 - p)
                }
            })
            .collect()
    }
}

impl Merger for Della {
    fn name(&self) -> &'static str {
        "DELLA"
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_many(&[chip, instruct])
    }
}

/// DARE ("Drop And REscale", Yu et al., 2024 — the paper's reference on
/// absorbing abilities from homologous models): uniformly drop a fraction
/// `p` of each task vector's entries, rescale the survivors by
/// `1 / (1 − p)`, then add the averaged sparse task vectors back to the
/// base. Unlike [`Della`], the drop probability is magnitude-agnostic and
/// there is no sign election.
#[derive(Debug, Clone)]
pub struct Dare {
    base: Checkpoint,
    drop_rate: f32,
    scale: f32,
    seed: u64,
}

impl Dare {
    /// Creates the merger.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadHyperparameter`] unless `drop_rate ∈ [0, 1)`
    /// and `scale > 0`.
    pub fn new(
        base: Checkpoint,
        drop_rate: f32,
        scale: f32,
        seed: u64,
    ) -> Result<Self, MergeError> {
        if !drop_rate.is_finite() || !(0.0..1.0).contains(&drop_rate) {
            return Err(MergeError::BadHyperparameter {
                name: "drop_rate",
                value: f64::from(drop_rate),
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MergeError::BadHyperparameter {
                name: "scale",
                value: f64::from(scale),
            });
        }
        Ok(Dare {
            base,
            drop_rate,
            scale,
            seed,
        })
    }

    /// Creates the merger with the publication default of `p = 0.9`.
    ///
    /// # Errors
    ///
    /// Never fails in practice; present for API uniformity.
    pub fn recommended(base: Checkpoint, seed: u64) -> Result<Self, MergeError> {
        Dare::new(base, 0.9, 1.0, seed)
    }

    /// Merges any number of task models into the base.
    ///
    /// # Errors
    ///
    /// Same contract as [`TaskArithmetic::merge_many`].
    pub fn merge_many(&self, tasks: &[&Checkpoint]) -> Result<Checkpoint, MergeError> {
        if tasks.is_empty() {
            return Err(MergeError::NotEnoughModels {
                given: 0,
                required: 1,
            });
        }
        for t in tasks {
            check_conformable(&self.base, t)?;
        }
        let root = Pcg32::seed(self.seed);
        let keep_scale = 1.0 / (1.0 - self.drop_rate);
        let per_task = self.scale / tasks.len() as f32;
        let names: Vec<&str> = self.base.names();
        let merged: Vec<(&str, Matrix)> = names
            .par_iter()
            .enumerate()
            .map(|(tensor_idx, &name)| {
                let base_t = self.base.get(name).expect("conformable");
                let mut acc = base_t.clone();
                for (task_idx, task) in tasks.iter().enumerate() {
                    let delta = task.get(name).expect("conformable").sub(base_t)?;
                    // Index-derived stream keeps the drops seeded under
                    // parallel materialization.
                    let mut rng = root.derive((tensor_idx as u64) << 20 | task_idx as u64);
                    let (rows, cols) = delta.shape();
                    let mut data = delta.into_vec();
                    for v in &mut data {
                        if rng.chance(self.drop_rate) {
                            *v = 0.0;
                        } else {
                            *v *= keep_scale;
                        }
                    }
                    let dropped = Matrix::from_vec(rows, cols, data)?;
                    acc.axpy(per_task, &dropped)?;
                }
                Ok((name, acc))
            })
            .collect::<Result<_, MergeError>>()?;
        let mut out = self.base.clone();
        for (name, tensor) in merged {
            out.insert(name, tensor).expect("shape preserved by update");
        }
        out.set_metadata("merge.method", "DARE");
        Ok(out)
    }
}

impl Merger for Dare {
    fn name(&self) -> &'static str {
        "DARE"
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_many(&[chip, instruct])
    }
}

/// Zeroes all but the top-`density` fraction of entries by magnitude.
fn trim_to_density(values: &[f32], density: f32) -> Vec<f32> {
    let n = values.len();
    let keep = ((n as f32 * density).ceil() as usize).clamp(usize::from(n > 0), n);
    if keep == n {
        return values.to_vec();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[b].abs().total_cmp(&values[a].abs()));
    let mut out = vec![0.0f32; n];
    for &i in &order[..keep] {
        out[i] = values[i];
    }
    out
}

/// TIES sign election and disjoint mean across task vectors.
///
/// For each coordinate, the elected sign is the sign of the summed values;
/// the merged value is the mean of the entries that agree with the elected
/// sign (zero entries never vote).
fn elect_and_merge(tasks: &[Vec<f32>]) -> Vec<f32> {
    let n = tasks.first().map_or(0, Vec::len);
    let mut out = vec![0.0f32; n];
    for j in 0..n {
        let total: f32 = tasks.iter().map(|t| t[j]).sum();
        if total == 0.0 {
            continue;
        }
        let sign = total.signum();
        let mut sum = 0.0f32;
        let mut count = 0usize;
        for t in tasks {
            let v = t[j];
            if v != 0.0 && v.signum() == sign {
                sum += v;
                count += 1;
            }
        }
        if count > 0 {
            out[j] = sum / count as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;

    fn trio() -> (Checkpoint, Checkpoint, Checkpoint) {
        let arch = ArchSpec::tiny("base");
        let base = Checkpoint::random(&arch, &mut Pcg32::seed(100));
        let chip = Checkpoint::random(&arch, &mut Pcg32::seed(200));
        let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(300));
        (base, chip, instruct)
    }

    #[test]
    fn soup_is_elementwise_mean() {
        let (_, a, b) = trio();
        let soup = ModelSoup::new().merge_pair(&a, &b).expect("ok");
        let expected = a.map_tensors(|name, t| {
            t.lerp(b.get(name).expect("conformable"), 0.5).expect("ok")
        });
        assert!(soup.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn soup_of_three_models() {
        let (c, a, b) = trio();
        let soup = ModelSoup::new().merge_many(&[&a, &b, &c]).expect("ok");
        let first = soup.get("lm_head.weight").expect("present");
        let manual = a
            .get("lm_head.weight")
            .expect("present")
            .add(b.get("lm_head.weight").expect("present"))
            .expect("ok")
            .add(c.get("lm_head.weight").expect("present"))
            .expect("ok")
            .scale(1.0 / 3.0);
        assert!(first.approx_eq(&manual, 1e-5));
    }

    #[test]
    fn soup_requires_two_models() {
        let (_, a, _) = trio();
        assert!(matches!(
            ModelSoup::new().merge_many(&[&a]),
            Err(MergeError::NotEnoughModels { .. })
        ));
    }

    #[test]
    fn ta_with_identical_base_returns_tasks_average() {
        let (base, chip, _) = trio();
        // Single task, scale 1: base + (chip - base) = chip.
        let ta = TaskArithmetic::new(base.clone(), 1.0).expect("ok");
        let merged = ta.merge_many(&[&chip]).expect("ok");
        assert!(merged.approx_eq(&chip, 1e-5));
    }

    #[test]
    fn ta_pair_averages_task_vectors() {
        let (base, chip, instruct) = trio();
        let ta = TaskArithmetic::new(base.clone(), 1.0).expect("ok");
        let merged = ta.merge_pair(&chip, &instruct).expect("ok");
        // base + 0.5*((chip-base)+(instruct-base)) == soup of chip/instruct.
        let soup = ModelSoup::new().merge_pair(&chip, &instruct).expect("ok");
        assert!(merged.approx_eq(&soup, 1e-4));
    }

    #[test]
    fn ta_rejects_bad_scale() {
        let (base, _, _) = trio();
        assert!(TaskArithmetic::new(base.clone(), 0.0).is_err());
        assert!(TaskArithmetic::new(base, f32::NAN).is_err());
    }

    #[test]
    fn trim_keeps_top_fraction() {
        let values = vec![0.1, -5.0, 0.2, 3.0, -0.05];
        let trimmed = trim_to_density(&values, 0.4);
        assert_eq!(trimmed, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn trim_density_one_is_identity() {
        let values = vec![1.0, -2.0, 0.5];
        assert_eq!(trim_to_density(&values, 1.0), values);
    }

    #[test]
    fn trim_keeps_at_least_one() {
        let values = vec![1.0, 2.0];
        let trimmed = trim_to_density(&values, 0.01);
        assert_eq!(trimmed.iter().filter(|v| **v != 0.0).count(), 1);
    }

    #[test]
    fn elect_and_merge_resolves_conflicts() {
        // Coordinate 0: agreement (both positive) -> mean.
        // Coordinate 1: conflict, sum negative -> only the -3 survives.
        // Coordinate 2: exact cancellation -> zero.
        let tasks = vec![vec![2.0, 1.0, 1.0], vec![4.0, -3.0, -1.0]];
        let merged = elect_and_merge(&tasks);
        assert_eq!(merged, vec![3.0, -3.0, 0.0]);
    }

    #[test]
    fn ties_endpoints_sane() {
        let (base, chip, instruct) = trio();
        let ties = Ties::recommended(base.clone()).expect("ok");
        let merged = ties.merge_pair(&chip, &instruct).expect("ok");
        assert!(merged.all_finite());
        // TIES at density 1 with one task and no conflicts returns the task.
        let full = Ties::new(base.clone(), 1.0, 1.0).expect("ok");
        let merged_one = full.merge_many(&[&chip]).expect("ok");
        assert!(merged_one.approx_eq(&chip, 1e-5));
    }

    #[test]
    fn ties_sparsification_moves_less_than_ta() {
        let (base, chip, instruct) = trio();
        let ties = Ties::new(base.clone(), 0.2, 1.0).expect("ok");
        let ta = TaskArithmetic::new(base.clone(), 1.0).expect("ok");
        let m_ties = ties.merge_pair(&chip, &instruct).expect("ok");
        let m_ta = ta.merge_pair(&chip, &instruct).expect("ok");
        // Distance moved from base: the trimmed update must be no bigger.
        let dist = |m: &Checkpoint| -> f64 {
            m.iter()
                .map(|(n, t)| {
                    let d = t.sub(base.get(n).expect("conformable")).expect("ok");
                    f64::from(d.frobenius_norm()).powi(2)
                })
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&m_ties) <= dist(&m_ta) * 1.5);
    }

    #[test]
    fn ties_rejects_bad_density() {
        let (base, _, _) = trio();
        assert!(Ties::new(base.clone(), 0.0, 1.0).is_err());
        assert!(Ties::new(base.clone(), 1.5, 1.0).is_err());
        assert!(Ties::new(base, 0.5, -1.0).is_err());
    }

    #[test]
    fn della_is_deterministic_per_seed() {
        let (base, chip, instruct) = trio();
        let d1 = Della::recommended(base.clone(), 42).expect("ok");
        let d2 = Della::recommended(base.clone(), 42).expect("ok");
        let m1 = d1.merge_pair(&chip, &instruct).expect("ok");
        let m2 = d2.merge_pair(&chip, &instruct).expect("ok");
        assert!(m1.approx_eq(&m2, 0.0));
        let d3 = Della::recommended(base, 43).expect("ok");
        let m3 = d3.merge_pair(&chip, &instruct).expect("ok");
        assert!(!m1.approx_eq(&m3, 1e-6), "different seed, different drops");
    }

    #[test]
    fn della_zero_drop_equals_ties_density_one() {
        let (base, chip, instruct) = trio();
        let della = Della::new(base.clone(), 0.0, 0.0, 1.0, 7).expect("ok");
        let ties = Ties::new(base, 1.0, 1.0).expect("ok");
        let md = della.merge_pair(&chip, &instruct).expect("ok");
        let mt = ties.merge_pair(&chip, &instruct).expect("ok");
        assert!(md.approx_eq(&mt, 1e-5));
    }

    #[test]
    fn della_rejects_bad_probabilities() {
        let (base, _, _) = trio();
        assert!(Della::new(base.clone(), 1.0, 0.0, 1.0, 1).is_err());
        assert!(Della::new(base.clone(), 0.1, 0.5, 1.0, 1).is_err(), "window escapes [0,1)");
        assert!(Della::new(base, 0.5, 0.2, 0.0, 1).is_err());
    }

    #[test]
    fn magprune_preserves_expectation_and_drop_rate() {
        let (base, _, _) = trio();
        let della = Della::new(base, 0.5, 0.2, 1.0, 11).expect("ok");
        let values: Vec<f32> = (1..=64).map(|i| (i as f32 - 32.5) / 10.0).collect();
        let trials = 400;
        let mut sums = vec![0.0f64; values.len()];
        let mut zeros = 0usize;
        for t in 0..trials {
            let mut rng = Pcg32::seed(1000 + t);
            let pruned = della.magprune(&values, &mut rng);
            zeros += pruned.iter().filter(|v| **v == 0.0).count();
            for (s, v) in sums.iter_mut().zip(&pruned) {
                *s += f64::from(*v);
            }
        }
        // Inverse-probability rescaling keeps each entry unbiased.
        for (i, s) in sums.iter().enumerate() {
            let mean = s / trials as f64;
            let expected = f64::from(values[i]);
            assert!(
                (mean - expected).abs() < 0.15 * expected.abs().max(0.5),
                "entry {i}: mean {mean} vs expected {expected}"
            );
        }
        // Average drop fraction matches the configured rate.
        let frac = zeros as f64 / (trials as usize * values.len()) as f64;
        assert!((frac - 0.5).abs() < 0.05, "drop fraction was {frac}");
    }

    #[test]
    fn dare_zero_drop_equals_task_arithmetic() {
        let (base, chip, instruct) = trio();
        let dare = Dare::new(base.clone(), 0.0, 1.0, 3).expect("ok");
        let ta = TaskArithmetic::new(base, 1.0).expect("ok");
        let md = dare.merge_pair(&chip, &instruct).expect("ok");
        let mt = ta.merge_pair(&chip, &instruct).expect("ok");
        assert!(md.approx_eq(&mt, 1e-5));
    }

    #[test]
    fn dare_is_deterministic_and_unbiased() {
        let (base, chip, instruct) = trio();
        let d1 = Dare::recommended(base.clone(), 9).expect("ok");
        let m1 = d1.merge_pair(&chip, &instruct).expect("ok");
        let m2 = d1.merge_pair(&chip, &instruct).expect("ok");
        assert!(m1.approx_eq(&m2, 0.0));
        assert!(m1.all_finite());
        // Averaged over many seeds, DARE's update approaches TA's (the
        // rescale keeps expectations).
        let ta = TaskArithmetic::new(base.clone(), 1.0).expect("ok");
        let target = ta.merge_pair(&chip, &instruct).expect("ok");
        let mut acc = base.map_tensors(|_, t| t.scale(0.0));
        let trials = 60;
        for seed in 0..trials {
            let d = Dare::new(base.clone(), 0.5, 1.0, seed).expect("ok");
            let m = d.merge_pair(&chip, &instruct).expect("ok");
            for (name, t) in m.iter() {
                acc.get_mut(name)
                    .expect("conformable")
                    .axpy(1.0 / trials as f32, t)
                    .expect("ok");
            }
        }
        // Compare distances from base rather than raw weights.
        let dist = |m: &Checkpoint| -> f64 {
            m.iter()
                .map(|(n, t)| {
                    let d = t.sub(base.get(n).expect("ok")).expect("ok");
                    f64::from(d.frobenius_norm()).powi(2)
                })
                .sum::<f64>()
                .sqrt()
        };
        let gap = (dist(&acc) - dist(&target)).abs() / dist(&target);
        assert!(gap < 0.1, "mean DARE update strayed {gap:.3} from TA");
    }

    #[test]
    fn dare_rejects_bad_hyperparameters() {
        let (base, _, _) = trio();
        assert!(Dare::new(base.clone(), 1.0, 1.0, 1).is_err());
        assert!(Dare::new(base.clone(), -0.1, 1.0, 1).is_err());
        assert!(Dare::new(base, 0.5, 0.0, 1).is_err());
    }

    #[test]
    fn baseline_names_match_paper_tables() {
        let (base, _, _) = trio();
        assert_eq!(ModelSoup::new().name(), "ModelSoup");
        assert_eq!(
            TaskArithmetic::new(base.clone(), 1.0).expect("ok").name(),
            "TA"
        );
        assert_eq!(Ties::recommended(base.clone()).expect("ok").name(), "TIES");
        assert_eq!(Della::recommended(base, 1).expect("ok").name(), "DELLA");
    }

    #[test]
    fn nonconformable_rejected_by_all() {
        let (base, chip, _) = trio();
        let mut small_arch = ArchSpec::tiny("small");
        small_arch.n_layers = 1;
        let other = Checkpoint::zeros(&small_arch);
        assert!(ModelSoup::new().merge_pair(&chip, &other).is_err());
        assert!(TaskArithmetic::new(base.clone(), 1.0)
            .expect("ok")
            .merge_pair(&chip, &other)
            .is_err());
        assert!(Ties::recommended(base.clone())
            .expect("ok")
            .merge_pair(&chip, &other)
            .is_err());
        assert!(Della::recommended(base, 1)
            .expect("ok")
            .merge_pair(&chip, &other)
            .is_err());
    }
}

use std::error::Error;
use std::fmt;

use chipalign_model::ModelError;
use chipalign_tensor::TensorError;

/// Errors produced by model merging.
#[derive(Debug)]
#[non_exhaustive]
pub enum MergeError {
    /// The input checkpoints are not conformable (different parameter sets
    /// or shapes).
    NotConformable {
        /// First difference found.
        reason: String,
    },
    /// An interpolation coefficient was outside `[0, 1]` or not finite.
    BadLambda {
        /// The offending value.
        lambda: f32,
    },
    /// A method hyperparameter was invalid (e.g. TIES density outside
    /// `(0, 1]`).
    BadHyperparameter {
        /// Which hyperparameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A merger that operates on a set of models was given too few.
    NotEnoughModels {
        /// Number of models provided.
        given: usize,
        /// Minimum required.
        required: usize,
    },
    /// An underlying checkpoint operation failed.
    Model(ModelError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NotConformable { reason } => {
                write!(f, "input models are not conformable: {reason}")
            }
            MergeError::BadLambda { lambda } => {
                write!(f, "interpolation coefficient {lambda} is outside [0, 1]")
            }
            MergeError::BadHyperparameter { name, value } => {
                write!(f, "invalid merge hyperparameter {name} = {value}")
            }
            MergeError::NotEnoughModels { given, required } => {
                write!(f, "merge requires at least {required} models, got {given}")
            }
            MergeError::Model(e) => write!(f, "model error during merge: {e}"),
            MergeError::Tensor(e) => write!(f, "tensor error during merge: {e}"),
        }
    }
}

impl Error for MergeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MergeError::Model(e) => Some(e),
            MergeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for MergeError {
    fn from(e: ModelError) -> Self {
        MergeError::Model(e)
    }
}

impl From<TensorError> for MergeError {
    fn from(e: TensorError) -> Self {
        MergeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MergeError::BadLambda { lambda: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(MergeError::NotConformable {
            reason: "x".into()
        }
        .to_string()
        .contains("not conformable"));
        assert!(MergeError::NotEnoughModels {
            given: 1,
            required: 2
        }
        .to_string()
        .contains("at least 2"));
        assert!(MergeError::BadHyperparameter {
            name: "density",
            value: 0.0
        }
        .to_string()
        .contains("density"));
    }

    #[test]
    fn conversions_preserve_source() {
        let err: MergeError = TensorError::Empty { op: "x" }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MergeError>();
    }
}

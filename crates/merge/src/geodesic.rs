//! The ChipAlign merge: geodesic interpolation on the weight manifold.

use chipalign_model::Checkpoint;
use chipalign_tensor::Matrix;
use rayon::prelude::*;

use crate::report::{MergeReport, TensorGeometry};
use crate::{check_conformable, MergeError, Merger};

/// At what granularity the geodesic angle Θ is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// One angle per weight matrix — the paper's formulation (each layer
    /// weight is its own point on its own unit n-sphere).
    #[default]
    PerTensor,
    /// A single angle for the whole flattened model. Exposed for the
    /// ablation called out in `DESIGN.md` §5.3.
    Global,
}

/// How the magnitude of the merged weight is restored after interpolating
/// on the unit sphere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormRestore {
    /// `Norm_chip^λ · Norm_instruct^(1−λ)` — the paper's weighted geometric
    /// mean.
    #[default]
    Geometric,
    /// `λ·Norm_chip + (1−λ)·Norm_instruct` — arithmetic-mean ablation.
    Arithmetic,
    /// Leave the unit-sphere weight as-is (no restoration). Ablation only;
    /// collapses every weight to unit Frobenius norm.
    None,
}

/// The ChipAlign merging method (Algorithm of §III-B).
///
/// For each weight pair `(W_chip, W_instruct)`:
///
/// 1. **Project**: `W̄ = W / ||W||_F` puts both weights on the unit
///    n-sphere.
/// 2. **Interpolate**: with `Θ = arccos⟨W̄_chip, W̄_instruct⟩`,
///    `W̄_merge = sin(λΘ)/sin(Θ)·W̄_chip + sin((1−λ)Θ)/sin(Θ)·W̄_instruct`.
/// 3. **Restore**: `W_merge = Norm_chip^λ · Norm_instruct^(1−λ) · W̄_merge`.
///
/// `λ = 1` returns the chip model exactly and `λ = 0` the instruction
/// model; the paper recommends `λ = 0.6`.
///
/// When `Θ` is numerically tiny (nearly parallel weights — common for norm
/// gains) the `sin` ratios degenerate, so the implementation falls back to
/// linear interpolation on the sphere, which is the analytic limit of the
/// SLERP formula as `Θ → 0`. The same fallback guards the antipodal case
/// `Θ → π`, where the geodesic is not unique.
///
/// # Example
///
/// ```
/// use chipalign_merge::{GeodesicMerge, Merger};
/// use chipalign_model::{ArchSpec, Checkpoint};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_merge::MergeError> {
/// let arch = ArchSpec::tiny("demo");
/// let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
/// let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
/// // λ = 1 must reproduce the chip model bit-for-bit up to f32 rounding.
/// let back = GeodesicMerge::new(1.0)?.merge_pair(&chip, &instruct)?;
/// assert!(back.approx_eq(&chip, 1e-5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeodesicMerge {
    lambda: f32,
    granularity: Granularity,
    norm_restore: NormRestore,
    /// Whether to project onto the unit sphere before interpolating. `false`
    /// gives the "raw SLERP" ablation (mergekit-style: SLERP coefficients
    /// applied to the unnormalised weights, no norm restoration).
    project: bool,
    small_angle_eps: f64,
}

impl GeodesicMerge {
    /// Creates the paper's merger with interpolation point `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadLambda`] unless `lambda ∈ [0, 1]` and is
    /// finite.
    pub fn new(lambda: f32) -> Result<Self, MergeError> {
        if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
            return Err(MergeError::BadLambda { lambda });
        }
        Ok(GeodesicMerge {
            lambda,
            granularity: Granularity::PerTensor,
            norm_restore: NormRestore::Geometric,
            project: true,
            // acos is ill-conditioned near cos = ±1: f32 inputs give ~1e-7
            // cosine error, i.e. ~5e-4 angle noise. Below this threshold the
            // SLERP coefficients and the LERP limit agree to ~1e-6, so the
            // fallback is exact for all practical purposes.
            small_angle_eps: 3e-3,
        })
    }

    /// The paper's recommended configuration (`λ = 0.6`).
    #[must_use]
    pub fn recommended() -> Self {
        GeodesicMerge::new(0.6).expect("0.6 is a valid lambda")
    }

    /// Raw-SLERP ablation: no unit-sphere projection and no norm
    /// restoration, as in generic SLERP merging tools.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::BadLambda`] unless `lambda ∈ [0, 1]`.
    pub fn raw_slerp(lambda: f32) -> Result<Self, MergeError> {
        let mut m = GeodesicMerge::new(lambda)?;
        m.project = false;
        m.norm_restore = NormRestore::None;
        Ok(m)
    }

    /// Sets the angle granularity (per-tensor vs whole-model).
    #[must_use]
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the norm-restoration scheme.
    #[must_use]
    pub fn with_norm_restore(mut self, norm_restore: NormRestore) -> Self {
        self.norm_restore = norm_restore;
        self
    }

    /// The interpolation coefficient λ.
    #[must_use]
    pub fn lambda(&self) -> f32 {
        self.lambda
    }

    /// Merges and also returns the per-tensor geometry report.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NotConformable`] if the checkpoints differ in
    /// parameter names or shapes.
    pub fn merge_with_report(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<(Checkpoint, MergeReport), MergeError> {
        check_conformable(chip, instruct)?;
        let names: Vec<String> = chip.names().iter().map(|s| s.to_string()).collect();

        // For global granularity, precompute the whole-model angle once.
        let global_angle = match self.granularity {
            Granularity::PerTensor => None,
            Granularity::Global => Some(self.global_geometry(chip, instruct)),
        };

        let results: Vec<(String, Matrix, TensorGeometry)> = names
            .par_iter()
            .map(|name| {
                let wc = chip.get(name).expect("conformable");
                let wi = instruct.get(name).expect("conformable");
                let (merged, geom) = self.merge_tensor(name, wc, wi, global_angle);
                (name.clone(), merged, geom)
            })
            .collect();

        let mut merged_ckpt = chip.clone();
        let mut geoms = Vec::with_capacity(results.len());
        for (name, tensor, geom) in results {
            merged_ckpt
                .insert(&name, tensor)
                .expect("shape preserved by interpolation");
            geoms.push(geom);
        }
        merged_ckpt.set_metadata("merge.method", self.name());
        merged_ckpt.set_metadata("merge.lambda", &format!("{}", self.lambda));
        let report = MergeReport {
            lambda: self.lambda,
            method: self.name(),
            tensors: geoms,
        };
        Ok((merged_ckpt, report))
    }

    /// Whole-model cosine/angle: all tensors flattened into one vector.
    fn global_geometry(&self, chip: &Checkpoint, instruct: &Checkpoint) -> f64 {
        let mut dot = 0.0f64;
        let mut nc2 = 0.0f64;
        let mut ni2 = 0.0f64;
        for (name, wc) in chip.iter() {
            let wi = instruct.get(name).expect("conformable");
            dot += wc.frobenius_dot(wi).expect("same shape");
            let c = f64::from(wc.frobenius_norm());
            let i = f64::from(wi.frobenius_norm());
            nc2 += c * c;
            ni2 += i * i;
        }
        let denom = nc2.sqrt() * ni2.sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (dot / denom).clamp(-1.0, 1.0).acos()
        }
    }

    /// Merges one tensor pair and records its geometry.
    fn merge_tensor(
        &self,
        name: &str,
        wc: &Matrix,
        wi: &Matrix,
        global_angle: Option<f64>,
    ) -> (Matrix, TensorGeometry) {
        let lambda = f64::from(self.lambda);
        let norm_c = wc.frobenius_norm();
        let norm_i = wi.frobenius_norm();

        // Degenerate magnitudes: a zero-norm weight has no sphere projection.
        // Fall back to plain linear interpolation of the raw weights.
        if self.project && (norm_c == 0.0 || norm_i == 0.0) {
            let merged = wi.lerp(wc, self.lambda).expect("conformable");
            let geom = TensorGeometry {
                name: name.to_string(),
                cosine: 0.0,
                theta: 0.0,
                norm_chip: norm_c,
                norm_instruct: norm_i,
                norm_merged: merged.frobenius_norm(),
                lerp_fallback: true,
            };
            return (merged, geom);
        }

        let (bar_c, bar_i): (Matrix, Matrix) = if self.project {
            (wc.scale(1.0 / norm_c), wi.scale(1.0 / norm_i))
        } else {
            (wc.clone(), wi.clone())
        };

        let cosine = {
            let dot = bar_c.frobenius_dot(&bar_i).expect("same shape");
            let denom = f64::from(bar_c.frobenius_norm()) * f64::from(bar_i.frobenius_norm());
            if denom == 0.0 {
                1.0
            } else {
                (dot / denom).clamp(-1.0, 1.0)
            }
        };
        let theta = global_angle.unwrap_or_else(|| cosine.acos());

        // Lemma III.2 coefficients, with the analytic Θ→0 / Θ→π limits.
        let near_degenerate =
            theta < self.small_angle_eps || theta > std::f64::consts::PI - self.small_angle_eps;
        let (coef_chip, coef_instruct, fallback) = if near_degenerate {
            (lambda, 1.0 - lambda, true)
        } else {
            let sin_theta = theta.sin();
            (
                (lambda * theta).sin() / sin_theta,
                ((1.0 - lambda) * theta).sin() / sin_theta,
                false,
            )
        };

        let mut merged = bar_c.scale(coef_chip as f32);
        merged
            .axpy(coef_instruct as f32, &bar_i)
            .expect("conformable");

        if self.project {
            let restore = match self.norm_restore {
                NormRestore::Geometric => {
                    f64::from(norm_c).powf(lambda) * f64::from(norm_i).powf(1.0 - lambda)
                }
                NormRestore::Arithmetic => {
                    lambda * f64::from(norm_c) + (1.0 - lambda) * f64::from(norm_i)
                }
                NormRestore::None => 1.0,
            };
            merged.scale_inplace(restore as f32);
        }

        let geom = TensorGeometry {
            name: name.to_string(),
            cosine,
            theta,
            norm_chip: norm_c,
            norm_instruct: norm_i,
            norm_merged: merged.frobenius_norm(),
            lerp_fallback: fallback,
        };
        (merged, geom)
    }
}

impl Merger for GeodesicMerge {
    fn name(&self) -> &'static str {
        if self.project {
            "ChipAlign"
        } else {
            "RawSLERP"
        }
    }

    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError> {
        self.merge_with_report(chip, instruct).map(|(ckpt, _)| ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn pair() -> (Checkpoint, Checkpoint) {
        let arch = ArchSpec::tiny("geo");
        (
            Checkpoint::random(&arch, &mut Pcg32::seed(10)),
            Checkpoint::random(&arch, &mut Pcg32::seed(20)),
        )
    }

    #[test]
    fn lambda_validation() {
        assert!(GeodesicMerge::new(-0.1).is_err());
        assert!(GeodesicMerge::new(1.1).is_err());
        assert!(GeodesicMerge::new(f32::NAN).is_err());
        assert!(GeodesicMerge::new(0.0).is_ok());
        assert!(GeodesicMerge::new(1.0).is_ok());
    }

    #[test]
    fn endpoints_reproduce_inputs() {
        let (chip, instruct) = pair();
        let at_one = GeodesicMerge::new(1.0)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("conformable");
        assert!(at_one.approx_eq(&chip, 1e-5));
        let at_zero = GeodesicMerge::new(0.0)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("conformable");
        assert!(at_zero.approx_eq(&instruct, 1e-5));
    }

    #[test]
    fn merging_model_with_itself_is_identity() {
        let (chip, _) = pair();
        let merged = GeodesicMerge::recommended()
            .merge_pair(&chip, &chip)
            .expect("conformable");
        assert!(merged.approx_eq(&chip, 1e-5));
    }

    #[test]
    fn merged_norm_is_geometric_mean_per_tensor() {
        let (chip, instruct) = pair();
        let lambda = 0.6f64;
        let (_, report) = GeodesicMerge::new(0.6)
            .expect("valid")
            .merge_with_report(&chip, &instruct)
            .expect("conformable");
        for t in &report.tensors {
            let expected =
                f64::from(t.norm_chip).powf(lambda) * f64::from(t.norm_instruct).powf(1.0 - lambda);
            assert!(
                (f64::from(t.norm_merged) - expected).abs() < 1e-3 * expected.max(1e-6),
                "norm restoration failed for {}: {} vs {}",
                t.name,
                t.norm_merged,
                expected
            );
        }
    }

    #[test]
    fn report_geometry_is_consistent() {
        let (chip, instruct) = pair();
        let (_, report) = GeodesicMerge::recommended()
            .merge_with_report(&chip, &instruct)
            .expect("conformable");
        assert_eq!(report.tensors.len(), chip.param_count());
        for t in &report.tensors {
            assert!((t.cosine.acos() - t.theta).abs() < 1e-9 || t.lerp_fallback);
            assert!((0.0..=std::f64::consts::PI).contains(&t.theta));
        }
        // Unit norm gains are identical in both random inits -> fallback.
        assert!(report.fallback_count() >= 5, "norm gains should fall back");
    }

    #[test]
    fn parallel_weights_use_lerp_fallback() {
        let arch = ArchSpec::tiny("geo");
        let chip = Checkpoint::random(&arch, &mut Pcg32::seed(30));
        // Scaling a model leaves every direction identical: Θ = 0 everywhere.
        let instruct = chip.map_tensors(|_, t| t.scale(2.0));
        let (merged, report) = GeodesicMerge::new(0.5)
            .expect("valid")
            .merge_with_report(&chip, &instruct)
            .expect("conformable");
        assert_eq!(report.fallback_count(), report.tensors.len());
        // Norm restoration: geometric mean of n and 2n is sqrt(2)·n.
        for t in &report.tensors {
            if t.norm_chip > 0.0 {
                let expected = f64::from(t.norm_chip) * 2f64.powf(0.5);
                assert!((f64::from(t.norm_merged) - expected).abs() < 1e-3 * expected);
            }
        }
        assert!(merged.all_finite());
    }

    #[test]
    fn antipodal_weights_do_not_explode() {
        let arch = ArchSpec::tiny("geo");
        let chip = Checkpoint::random(&arch, &mut Pcg32::seed(31));
        let instruct = chip.map_tensors(|_, t| t.scale(-1.0));
        let merged = GeodesicMerge::new(0.5)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("conformable");
        assert!(merged.all_finite(), "antipodal case must stay finite");
    }

    #[test]
    fn zero_norm_weight_falls_back_to_lerp() {
        let arch = ArchSpec::tiny("geo");
        let chip = Checkpoint::zeros(&arch);
        let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(32));
        let merged = GeodesicMerge::new(0.5)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("conformable");
        assert!(merged.all_finite());
        // lerp(instruct, chip=0, 0.5) = 0.5 * instruct.
        let expected = instruct.map_tensors(|_, t| t.scale(0.5));
        assert!(merged.approx_eq(&expected, 1e-5));
    }

    #[test]
    fn rejects_nonconformable_inputs() {
        let chip = Checkpoint::zeros(&ArchSpec::tiny("a"));
        let mut bigger = ArchSpec::tiny("b");
        bigger.n_layers = 1;
        let instruct = Checkpoint::zeros(&bigger);
        let err = GeodesicMerge::recommended().merge_pair(&chip, &instruct);
        assert!(matches!(err, Err(MergeError::NotConformable { .. })));
    }

    #[test]
    fn global_granularity_still_hits_endpoints() {
        let (chip, instruct) = pair();
        let merged = GeodesicMerge::new(1.0)
            .expect("valid")
            .with_granularity(Granularity::Global)
            .merge_pair(&chip, &instruct)
            .expect("conformable");
        assert!(merged.approx_eq(&chip, 1e-4));
    }

    #[test]
    fn arithmetic_restore_uses_mean_norm() {
        let (chip, instruct) = pair();
        let (_, report) = GeodesicMerge::new(0.5)
            .expect("valid")
            .with_norm_restore(NormRestore::Arithmetic)
            .merge_with_report(&chip, &instruct)
            .expect("conformable");
        for t in &report.tensors {
            if t.lerp_fallback {
                continue;
            }
            let expected = 0.5 * (f64::from(t.norm_chip) + f64::from(t.norm_instruct));
            assert!((f64::from(t.norm_merged) - expected).abs() < 1e-3 * expected);
        }
    }

    #[test]
    fn raw_slerp_differs_from_chipalign() {
        let (chip, instruct) = pair();
        let geo = GeodesicMerge::new(0.6)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("ok");
        let raw = GeodesicMerge::raw_slerp(0.6)
            .expect("valid")
            .merge_pair(&chip, &instruct)
            .expect("ok");
        assert!(!geo.approx_eq(&raw, 1e-4), "ablation must be distinguishable");
    }

    #[test]
    fn metadata_records_method_and_lambda() {
        let (chip, instruct) = pair();
        let merged = GeodesicMerge::recommended()
            .merge_pair(&chip, &instruct)
            .expect("ok");
        assert_eq!(
            merged.metadata().get("merge.method").map(String::as_str),
            Some("ChipAlign")
        );
        assert_eq!(
            merged.metadata().get("merge.lambda").map(String::as_str),
            Some("0.6")
        );
    }

    #[test]
    fn merge_is_deterministic() {
        let (chip, instruct) = pair();
        let m1 = GeodesicMerge::recommended()
            .merge_pair(&chip, &instruct)
            .expect("ok");
        let m2 = GeodesicMerge::recommended()
            .merge_pair(&chip, &instruct)
            .expect("ok");
        assert!(m1.approx_eq(&m2, 0.0));
    }
}

//! Model merging — the primary contribution of the ChipAlign paper.
//!
//! ChipAlign fuses a chip-domain LLM with an instruction-aligned LLM
//! *without any training*, by treating each weight matrix as a point on a
//! Riemannian manifold and interpolating along the geodesic between the two
//! models:
//!
//! 1. Project both weight matrices onto the unit n-sphere by dividing by
//!    their Frobenius norms.
//! 2. Spherically interpolate (SLERP, Lemma III.2 of the paper) along the
//!    arc connecting the projections:
//!    `W̄ = sin(λΘ)/sin(Θ) · W̄_chip + sin((1−λ)Θ)/sin(Θ) · W̄_instruct`.
//! 3. Restore magnitude with the geometric mean of the input norms:
//!    `W = Norm_chip^λ · Norm_instruct^(1−λ) · W̄`.
//!
//! This crate implements that method ([`GeodesicMerge`]) together with every
//! baseline the paper compares against — [`ModelSoup`], [`TaskArithmetic`],
//! [`Ties`], and [`Della`] — plus [`Dare`] (the paper's reference on
//! absorbing abilities from homologous models), behind a common [`Merger`]
//! trait, plus λ-sweep
//! utilities ([`sweep`]) and per-tensor geometry reports ([`MergeReport`]).
//!
//! All mergers run in `O(n)` time and space in the total parameter count
//! `n`, parallelised over tensors with rayon, matching the paper's
//! complexity analysis (§III-C).
//!
//! # Example
//!
//! ```
//! use chipalign_merge::{GeodesicMerge, Merger};
//! use chipalign_model::{ArchSpec, Checkpoint};
//! use chipalign_tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), chipalign_merge::MergeError> {
//! let arch = ArchSpec::tiny("demo");
//! let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
//! let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
//!
//! let merger = GeodesicMerge::new(0.6)?; // the paper's recommended λ
//! let merged = merger.merge_pair(&chip, &instruct)?;
//! assert!(merged.all_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod error;
mod geodesic;
mod report;
pub mod sweep;

pub use baselines::{Dare, Della, ModelSoup, TaskArithmetic, Ties};
pub use error::MergeError;
pub use geodesic::{GeodesicMerge, Granularity, NormRestore};
pub use report::{MergeReport, TensorGeometry};

use chipalign_model::Checkpoint;

/// A training-free model merging method.
///
/// All of the paper's methods (ChipAlign and the four baselines) implement
/// this trait, which is how the experiment pipeline swaps methods per table
/// row. The convention follows the paper: the first argument is the
/// domain-adapted ("chip") model, the second the instruction-aligned model.
pub trait Merger {
    /// Short method name as it appears in the paper's tables
    /// (e.g. `"ChipAlign"`, `"TIES"`).
    fn name(&self) -> &'static str;

    /// Merges a chip model with an instruction model.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NotConformable`] if the two checkpoints do not
    /// expose identical parameter names and shapes, or a method-specific
    /// error (e.g. a baseline missing its required base model).
    fn merge_pair(
        &self,
        chip: &Checkpoint,
        instruct: &Checkpoint,
    ) -> Result<Checkpoint, MergeError>;
}

/// Verifies the conformability precondition shared by all mergers.
pub(crate) fn check_conformable(
    a: &Checkpoint,
    b: &Checkpoint,
) -> Result<(), MergeError> {
    match a.conformability_error(b) {
        None => Ok(()),
        Some(reason) => Err(MergeError::NotConformable { reason }),
    }
}

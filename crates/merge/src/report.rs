//! Per-tensor geometry reports produced during a geodesic merge.

use std::fmt;

/// The geometry of one weight pair as seen by the geodesic merge.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorGeometry {
    /// Canonical parameter name.
    pub name: String,
    /// Cosine between the unit-sphere projections of the two weights.
    pub cosine: f64,
    /// Geodesic angle Θ in radians (`arccos` of [`TensorGeometry::cosine`]).
    pub theta: f64,
    /// Frobenius norm of the chip-model weight.
    pub norm_chip: f32,
    /// Frobenius norm of the instruction-model weight.
    pub norm_instruct: f32,
    /// Frobenius norm of the merged weight after magnitude restoration.
    pub norm_merged: f32,
    /// Whether the small-angle LERP fallback was taken for this tensor.
    pub lerp_fallback: bool,
}

/// A full merge report: one [`TensorGeometry`] per parameter, plus the
/// merge configuration that produced it.
///
/// Reports answer the diagnostic questions the paper's geometric argument
/// raises: how far apart are the two models on the sphere, which layers
/// diverge most, and whether the norm restoration stayed between the input
/// norms.
///
/// # Example
///
/// ```
/// use chipalign_merge::GeodesicMerge;
/// use chipalign_model::{ArchSpec, Checkpoint};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_merge::MergeError> {
/// let arch = ArchSpec::tiny("demo");
/// let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
/// let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
/// let (_merged, report) = GeodesicMerge::new(0.6)?.merge_with_report(&chip, &instruct)?;
/// assert_eq!(report.tensors.len(), arch.param_count());
/// assert!(report.mean_angle() >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// The λ used for the merge.
    pub lambda: f32,
    /// Method name (always `"ChipAlign"` for geodesic merges).
    pub method: &'static str,
    /// Per-tensor geometry in canonical parameter order.
    pub tensors: Vec<TensorGeometry>,
}

impl MergeReport {
    /// Mean geodesic angle across all tensors, in radians (0 for an empty
    /// report).
    #[must_use]
    pub fn mean_angle(&self) -> f64 {
        if self.tensors.is_empty() {
            return 0.0;
        }
        self.tensors.iter().map(|t| t.theta).sum::<f64>() / self.tensors.len() as f64
    }

    /// The tensor with the largest geodesic angle, if any.
    #[must_use]
    pub fn max_angle(&self) -> Option<&TensorGeometry> {
        self.tensors
            .iter()
            .max_by(|a, b| a.theta.total_cmp(&b.theta))
    }

    /// Number of tensors that took the small-angle LERP fallback.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        self.tensors.iter().filter(|t| t.lerp_fallback).count()
    }
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} merge (lambda={:.2}): {} tensors, mean angle {:.4} rad, {} lerp fallbacks",
            self.method,
            self.lambda,
            self.tensors.len(),
            self.mean_angle(),
            self.fallback_count()
        )?;
        for t in &self.tensors {
            writeln!(
                f,
                "  {:<50} theta={:.4} |chip|={:.4} |instruct|={:.4} |merged|={:.4}{}",
                t.name,
                t.theta,
                t.norm_chip,
                t.norm_instruct,
                t.norm_merged,
                if t.lerp_fallback { "  [lerp]" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(name: &str, theta: f64, fallback: bool) -> TensorGeometry {
        TensorGeometry {
            name: name.into(),
            cosine: theta.cos(),
            theta,
            norm_chip: 1.0,
            norm_instruct: 1.0,
            norm_merged: 1.0,
            lerp_fallback: fallback,
        }
    }

    #[test]
    fn mean_and_max_angle() {
        let report = MergeReport {
            lambda: 0.6,
            method: "ChipAlign",
            tensors: vec![geom("a", 0.2, false), geom("b", 0.6, false)],
        };
        assert!((report.mean_angle() - 0.4).abs() < 1e-12);
        assert_eq!(report.max_angle().map(|t| t.name.as_str()), Some("b"));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = MergeReport {
            lambda: 0.5,
            method: "ChipAlign",
            tensors: vec![],
        };
        assert_eq!(report.mean_angle(), 0.0);
        assert!(report.max_angle().is_none());
        assert_eq!(report.fallback_count(), 0);
    }

    #[test]
    fn fallback_counted_and_displayed() {
        let report = MergeReport {
            lambda: 0.6,
            method: "ChipAlign",
            tensors: vec![geom("a", 0.0, true), geom("b", 0.3, false)],
        };
        assert_eq!(report.fallback_count(), 1);
        let text = report.to_string();
        assert!(text.contains("[lerp]"));
        assert!(text.contains("1 lerp fallbacks"));
    }
}

//! λ-sweep utilities for the paper's sensitivity analysis (Figure 8).
//!
//! The sweep produces the continuum of models Lemma III.2 describes: for a
//! grid of interpolation points `λ ∈ [0, 1]`, one merged checkpoint per
//! point, with `λ = 0` equal to the instruction model and `λ = 1` equal to
//! the chip model.

use chipalign_model::Checkpoint;

use crate::{GeodesicMerge, MergeError, Merger};

/// A single point of a λ sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The interpolation coefficient.
    pub lambda: f32,
    /// The merged model at this coefficient.
    pub model: Checkpoint,
}

/// Returns an evenly spaced λ grid with `steps` points covering `[0, 1]`
/// inclusive.
///
/// # Panics
///
/// Panics if `steps < 2` (a sweep needs both endpoints).
#[must_use]
pub fn lambda_grid(steps: usize) -> Vec<f32> {
    assert!(steps >= 2, "a lambda sweep needs at least both endpoints");
    (0..steps)
        .map(|i| i as f32 / (steps - 1) as f32)
        .collect()
}

/// Merges `chip` and `instruct` at every λ in `lambdas`.
///
/// # Errors
///
/// Returns the first merge failure (non-conformable inputs or an invalid λ
/// in the grid).
pub fn lambda_sweep(
    chip: &Checkpoint,
    instruct: &Checkpoint,
    lambdas: &[f32],
) -> Result<Vec<SweepPoint>, MergeError> {
    lambdas
        .iter()
        .map(|&lambda| {
            let model = GeodesicMerge::new(lambda)?.merge_pair(chip, instruct)?;
            Ok(SweepPoint { lambda, model })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    #[test]
    fn grid_covers_unit_interval() {
        let grid = lambda_grid(11);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0], 0.0);
        assert_eq!(grid[10], 1.0);
        assert!((grid[5] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least both endpoints")]
    fn grid_rejects_single_point() {
        let _ = lambda_grid(1);
    }

    #[test]
    fn sweep_endpoints_are_the_inputs() {
        let arch = ArchSpec::tiny("sweep");
        let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
        let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
        let points = lambda_sweep(&chip, &instruct, &lambda_grid(3)).expect("ok");
        assert!(points[0].model.approx_eq(&instruct, 1e-5), "λ=0 is instruct");
        assert!(points[2].model.approx_eq(&chip, 1e-5), "λ=1 is chip");
        assert!(!points[1].model.approx_eq(&chip, 1e-5));
    }

    #[test]
    fn sweep_norms_vary_monotonically_for_scaled_models() {
        // chip = 2 * instruct: along the sweep the restored norm is
        // |instruct| * 2^λ, which is strictly increasing in λ.
        let arch = ArchSpec::tiny("sweep");
        let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(3));
        let chip = instruct.map_tensors(|_, t| t.scale(2.0));
        let points = lambda_sweep(&chip, &instruct, &lambda_grid(5)).expect("ok");
        let norms: Vec<f64> = points.iter().map(|p| p.model.global_norm()).collect();
        for w in norms.windows(2) {
            assert!(w[1] > w[0], "norms must increase along the sweep: {norms:?}");
        }
    }

    #[test]
    fn sweep_propagates_bad_lambda() {
        let arch = ArchSpec::tiny("sweep");
        let chip = Checkpoint::zeros(&arch);
        let err = lambda_sweep(&chip, &chip, &[0.5, 2.0]);
        assert!(matches!(err, Err(MergeError::BadLambda { .. })));
    }
}

//! Property-based tests for the merging methods.
//!
//! The key invariants: geodesic endpoints reproduce the inputs for every λ
//! grid, the merged norm follows the weighted geometric mean, the SLERP →
//! LERP transition at the small-angle threshold is continuous, and every
//! method is deterministic and finite on arbitrary random inputs.

use chipalign_merge::{Della, GeodesicMerge, Merger, ModelSoup, TaskArithmetic, Ties};
use chipalign_model::{ArchSpec, Checkpoint};
use chipalign_tensor::rng::Pcg32;
use proptest::prelude::*;

fn models(seed: u64) -> (Checkpoint, Checkpoint, Checkpoint) {
    let arch = ArchSpec::tiny("prop");
    let base = Checkpoint::random(&arch, &mut Pcg32::seed(seed));
    let chip = Checkpoint::random(&arch, &mut Pcg32::seed(seed.wrapping_add(1)));
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(seed.wrapping_add(2)));
    (base, chip, instruct)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn geodesic_always_finite_and_valid(seed in 0u64..500, lambda in 0.0f32..=1.0) {
        let (_, chip, instruct) = models(seed);
        let merged = GeodesicMerge::new(lambda).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        prop_assert!(merged.all_finite());
        prop_assert!(merged.validate().is_ok());
    }

    #[test]
    fn geodesic_norm_is_between_input_norms(seed in 0u64..500, lambda in 0.0f32..=1.0) {
        let (_, chip, instruct) = models(seed);
        let (_, report) = GeodesicMerge::new(lambda).unwrap()
            .merge_with_report(&chip, &instruct).unwrap();
        for t in &report.tensors {
            let lo = t.norm_chip.min(t.norm_instruct) * 0.999;
            let hi = t.norm_chip.max(t.norm_instruct) * 1.001;
            prop_assert!(
                (lo..=hi).contains(&t.norm_merged),
                "{}: merged norm {} outside [{lo}, {hi}]", t.name, t.norm_merged
            );
        }
    }

    #[test]
    fn geodesic_is_symmetric_under_swap(seed in 0u64..500, lambda in 0.0f32..=1.0) {
        // merge(chip, instruct; λ) == merge(instruct, chip; 1-λ)
        let (_, chip, instruct) = models(seed);
        let fwd = GeodesicMerge::new(lambda).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        let rev = GeodesicMerge::new(1.0 - lambda).unwrap()
            .merge_pair(&instruct, &chip).unwrap();
        prop_assert!(fwd.approx_eq(&rev, 1e-4));
    }

    #[test]
    fn geodesic_continuous_in_lambda(seed in 0u64..500, lambda in 0.01f32..0.99) {
        // Small λ perturbations must produce small weight perturbations.
        let (_, chip, instruct) = models(seed);
        let a = GeodesicMerge::new(lambda).unwrap().merge_pair(&chip, &instruct).unwrap();
        let b = GeodesicMerge::new(lambda + 0.005).unwrap().merge_pair(&chip, &instruct).unwrap();
        let mut max_delta = 0.0f32;
        for (name, ta) in a.iter() {
            let tb = b.get(name).unwrap();
            let d = ta.sub(tb).unwrap().max_abs();
            max_delta = max_delta.max(d);
        }
        prop_assert!(max_delta < 0.05, "jump of {max_delta} for dλ = 0.005");
    }

    #[test]
    fn soup_commutes(seed in 0u64..500) {
        let (_, chip, instruct) = models(seed);
        let ab = ModelSoup::new().merge_pair(&chip, &instruct).unwrap();
        let ba = ModelSoup::new().merge_pair(&instruct, &chip).unwrap();
        prop_assert!(ab.approx_eq(&ba, 1e-6));
    }

    #[test]
    fn ta_is_linear_in_scale(seed in 0u64..500, scale in 0.1f32..1.0) {
        let (base, chip, instruct) = models(seed);
        let m1 = TaskArithmetic::new(base.clone(), scale).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        let m2 = TaskArithmetic::new(base.clone(), scale * 2.0).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        // (m2 - base) must be exactly twice (m1 - base).
        for (name, t1) in m1.iter() {
            let d1 = t1.sub(base.get(name).unwrap()).unwrap();
            let d2 = m2.get(name).unwrap().sub(base.get(name).unwrap()).unwrap();
            prop_assert!(d2.approx_eq(&d1.scale(2.0), 1e-4));
        }
    }

    #[test]
    fn ties_output_finite_and_valid(seed in 0u64..500, density in 0.05f32..1.0) {
        let (base, chip, instruct) = models(seed);
        let merged = Ties::new(base, density, 1.0).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        prop_assert!(merged.all_finite());
        prop_assert!(merged.validate().is_ok());
    }

    #[test]
    fn della_output_finite_and_valid(seed in 0u64..500, drop in 0.1f32..0.8) {
        let (base, chip, instruct) = models(seed);
        let merged = Della::new(base, drop, 0.1, 1.0, seed).unwrap()
            .merge_pair(&chip, &instruct).unwrap();
        prop_assert!(merged.all_finite());
        prop_assert!(merged.validate().is_ok());
    }

    #[test]
    fn every_method_is_deterministic(seed in 0u64..200) {
        let (base, chip, instruct) = models(seed);
        let methods: Vec<Box<dyn Merger>> = vec![
            Box::new(GeodesicMerge::recommended()),
            Box::new(ModelSoup::new()),
            Box::new(TaskArithmetic::new(base.clone(), 1.0).unwrap()),
            Box::new(Ties::recommended(base.clone()).unwrap()),
            Box::new(Della::recommended(base, seed).unwrap()),
        ];
        for m in &methods {
            let a = m.merge_pair(&chip, &instruct).unwrap();
            let b = m.merge_pair(&chip, &instruct).unwrap();
            prop_assert!(a.approx_eq(&b, 0.0), "{} is not deterministic", m.name());
        }
    }
}

//! Architecture specification for LLaMA-style decoder-only transformers.
//!
//! The spec is the single source of truth for which parameters a model has
//! and what shape each one takes. Both the training substrate
//! (`chipalign-nn`) and the merging engine (`chipalign-merge`) derive their
//! parameter enumeration from here, which is what makes "the input models
//! share the same architecture" a checkable precondition rather than an
//! assumption.

use std::fmt;

/// The role a named parameter plays inside the transformer.
///
/// Merge policies can treat kinds differently (e.g. excluding norm gains
/// from sparsification), so the kind is recoverable from every parameter
/// name via [`ArchSpec::kind_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParamKind {
    /// Token embedding table (`vocab × d_model`).
    Embedding,
    /// Attention query projection.
    AttnQ,
    /// Attention key projection.
    AttnK,
    /// Attention value projection.
    AttnV,
    /// Attention output projection.
    AttnO,
    /// SwiGLU gate projection.
    MlpGate,
    /// SwiGLU up projection.
    MlpUp,
    /// SwiGLU down projection.
    MlpDown,
    /// RMSNorm gain preceding attention.
    InputNorm,
    /// RMSNorm gain preceding the MLP.
    PostAttnNorm,
    /// Final RMSNorm gain before the LM head.
    FinalNorm,
    /// LM head (`vocab × d_model`).
    LmHead,
}

impl ParamKind {
    /// Whether this parameter is a 1-D RMSNorm gain (stored as `1 × d_model`).
    #[must_use]
    pub fn is_norm(self) -> bool {
        matches!(
            self,
            ParamKind::InputNorm | ParamKind::PostAttnNorm | ParamKind::FinalNorm
        )
    }
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamKind::Embedding => "embedding",
            ParamKind::AttnQ => "attn_q",
            ParamKind::AttnK => "attn_k",
            ParamKind::AttnV => "attn_v",
            ParamKind::AttnO => "attn_o",
            ParamKind::MlpGate => "mlp_gate",
            ParamKind::MlpUp => "mlp_up",
            ParamKind::MlpDown => "mlp_down",
            ParamKind::InputNorm => "input_norm",
            ParamKind::PostAttnNorm => "post_attn_norm",
            ParamKind::FinalNorm => "final_norm",
            ParamKind::LmHead => "lm_head",
        };
        f.write_str(s)
    }
}

/// A LLaMA-style decoder-only transformer architecture.
///
/// Parameter naming follows the HuggingFace LLaMA convention
/// (`model.embed_tokens.weight`, `model.layers.N.self_attn.q_proj.weight`,
/// ...), so real checkpoints map onto this spec one-to-one.
///
/// # Example
///
/// ```
/// use chipalign_model::ArchSpec;
///
/// let arch = ArchSpec::tiny("demo");
/// let names = arch.param_names();
/// assert!(names.contains(&"model.embed_tokens.weight".to_string()));
/// assert_eq!(names.len(), arch.param_count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    /// Human-readable backbone name (e.g. `"llama-tiny"`).
    pub name: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Model (residual stream) width.
    pub d_model: usize,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Number of attention heads; must divide `d_model`.
    pub n_heads: usize,
    /// Hidden width of the SwiGLU feed-forward block.
    pub d_ff: usize,
    /// Maximum sequence length supported by the rotary cache.
    pub max_seq_len: usize,
}

impl ArchSpec {
    /// A minimal architecture used throughout unit tests and doc examples.
    #[must_use]
    pub fn tiny(name: &str) -> Self {
        ArchSpec {
            name: name.to_string(),
            vocab_size: 64,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_seq_len: 32,
        }
    }

    /// Per-head dimension (`d_model / n_heads`).
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` is zero or does not divide `d_model`; such a spec
    /// is invalid and rejected by [`ArchSpec::check`].
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert!(
            self.n_heads > 0 && self.d_model % self.n_heads == 0,
            "invalid architecture: d_model={} n_heads={}",
            self.d_model,
            self.n_heads
        );
        self.d_model / self.n_heads
    }

    /// Validates the internal consistency of the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (zero
    /// dimensions, head mismatch, or even head dimension required by RoPE).
    pub fn check(&self) -> Result<(), String> {
        if self.vocab_size == 0
            || self.d_model == 0
            || self.n_layers == 0
            || self.n_heads == 0
            || self.d_ff == 0
            || self.max_seq_len == 0
        {
            return Err(format!("architecture `{}` has a zero dimension", self.name));
        }
        if self.d_model % self.n_heads != 0 {
            return Err(format!(
                "d_model {} is not divisible by n_heads {}",
                self.d_model, self.n_heads
            ));
        }
        if (self.d_model / self.n_heads) % 2 != 0 {
            return Err(format!(
                "head_dim {} must be even for rotary embeddings",
                self.d_model / self.n_heads
            ));
        }
        Ok(())
    }

    /// All parameter names in canonical (deterministic) order.
    #[must_use]
    pub fn param_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.param_count());
        names.push("model.embed_tokens.weight".to_string());
        for l in 0..self.n_layers {
            names.push(format!("model.layers.{l}.input_layernorm.weight"));
            names.push(format!("model.layers.{l}.self_attn.q_proj.weight"));
            names.push(format!("model.layers.{l}.self_attn.k_proj.weight"));
            names.push(format!("model.layers.{l}.self_attn.v_proj.weight"));
            names.push(format!("model.layers.{l}.self_attn.o_proj.weight"));
            names.push(format!("model.layers.{l}.post_attention_layernorm.weight"));
            names.push(format!("model.layers.{l}.mlp.gate_proj.weight"));
            names.push(format!("model.layers.{l}.mlp.up_proj.weight"));
            names.push(format!("model.layers.{l}.mlp.down_proj.weight"));
        }
        names.push("model.norm.weight".to_string());
        names.push("lm_head.weight".to_string());
        names
    }

    /// Number of named parameters (not scalar count; see
    /// [`ArchSpec::scalar_count`]).
    #[must_use]
    pub fn param_count(&self) -> usize {
        3 + 9 * self.n_layers
    }

    /// Total number of scalar weights in the architecture.
    #[must_use]
    pub fn scalar_count(&self) -> usize {
        self.param_names()
            .iter()
            .map(|n| {
                let (r, c) = self.shape_of(n).expect("own names are valid");
                r * c
            })
            .sum()
    }

    /// The `(rows, cols)` shape required for a named parameter, or `None` if
    /// the name does not belong to this architecture.
    ///
    /// Linear projections are stored as `out_features × in_features`
    /// (matching PyTorch's `nn.Linear.weight`), and 1-D norm gains as
    /// `1 × d_model`.
    #[must_use]
    pub fn shape_of(&self, name: &str) -> Option<(usize, usize)> {
        let kind = self.kind_of(name)?;
        Some(match kind {
            ParamKind::Embedding | ParamKind::LmHead => (self.vocab_size, self.d_model),
            ParamKind::AttnQ | ParamKind::AttnK | ParamKind::AttnV | ParamKind::AttnO => {
                (self.d_model, self.d_model)
            }
            ParamKind::MlpGate | ParamKind::MlpUp => (self.d_ff, self.d_model),
            ParamKind::MlpDown => (self.d_model, self.d_ff),
            ParamKind::InputNorm | ParamKind::PostAttnNorm | ParamKind::FinalNorm => {
                (1, self.d_model)
            }
        })
    }

    /// Classifies a parameter name, or returns `None` if the name is not
    /// part of this architecture (wrong pattern or layer index too large).
    #[must_use]
    pub fn kind_of(&self, name: &str) -> Option<ParamKind> {
        match name {
            "model.embed_tokens.weight" => return Some(ParamKind::Embedding),
            "model.norm.weight" => return Some(ParamKind::FinalNorm),
            "lm_head.weight" => return Some(ParamKind::LmHead),
            _ => {}
        }
        let rest = name.strip_prefix("model.layers.")?;
        let dot = rest.find('.')?;
        let layer: usize = rest[..dot].parse().ok()?;
        if layer >= self.n_layers {
            return None;
        }
        match &rest[dot + 1..] {
            "input_layernorm.weight" => Some(ParamKind::InputNorm),
            "self_attn.q_proj.weight" => Some(ParamKind::AttnQ),
            "self_attn.k_proj.weight" => Some(ParamKind::AttnK),
            "self_attn.v_proj.weight" => Some(ParamKind::AttnV),
            "self_attn.o_proj.weight" => Some(ParamKind::AttnO),
            "post_attention_layernorm.weight" => Some(ParamKind::PostAttnNorm),
            "mlp.gate_proj.weight" => Some(ParamKind::MlpGate),
            "mlp.up_proj.weight" => Some(ParamKind::MlpUp),
            "mlp.down_proj.weight" => Some(ParamKind::MlpDown),
            _ => None,
        }
    }

    /// Extracts the layer index from a per-layer parameter name, or `None`
    /// for global parameters.
    #[must_use]
    pub fn layer_of(&self, name: &str) -> Option<usize> {
        let rest = name.strip_prefix("model.layers.")?;
        let dot = rest.find('.')?;
        rest[..dot].parse().ok().filter(|&l| l < self.n_layers)
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (vocab={}, d_model={}, layers={}, heads={}, d_ff={}, ctx={})",
            self.name,
            self.vocab_size,
            self.d_model,
            self.n_layers,
            self.n_heads,
            self.d_ff,
            self.max_seq_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_spec_is_valid() {
        let arch = ArchSpec::tiny("t");
        arch.check().expect("tiny spec must be self-consistent");
        assert_eq!(arch.head_dim(), 8);
    }

    #[test]
    fn param_names_count_matches() {
        let arch = ArchSpec::tiny("t");
        assert_eq!(arch.param_names().len(), arch.param_count());
        assert_eq!(arch.param_count(), 3 + 9 * 2);
    }

    #[test]
    fn every_name_has_shape_and_kind() {
        let arch = ArchSpec::tiny("t");
        for name in arch.param_names() {
            assert!(arch.kind_of(&name).is_some(), "kind missing for {name}");
            assert!(arch.shape_of(&name).is_some(), "shape missing for {name}");
        }
    }

    #[test]
    fn shapes_follow_convention() {
        let arch = ArchSpec::tiny("t");
        assert_eq!(arch.shape_of("model.embed_tokens.weight"), Some((64, 16)));
        assert_eq!(
            arch.shape_of("model.layers.0.mlp.gate_proj.weight"),
            Some((32, 16))
        );
        assert_eq!(
            arch.shape_of("model.layers.1.mlp.down_proj.weight"),
            Some((16, 32))
        );
        assert_eq!(arch.shape_of("model.norm.weight"), Some((1, 16)));
    }

    #[test]
    fn unknown_names_rejected() {
        let arch = ArchSpec::tiny("t");
        assert_eq!(arch.kind_of("model.layers.2.self_attn.q_proj.weight"), None);
        assert_eq!(arch.kind_of("model.layers.x.self_attn.q_proj.weight"), None);
        assert_eq!(arch.kind_of("garbage"), None);
        assert_eq!(arch.shape_of("garbage"), None);
    }

    #[test]
    fn layer_extraction() {
        let arch = ArchSpec::tiny("t");
        assert_eq!(arch.layer_of("model.layers.1.mlp.up_proj.weight"), Some(1));
        assert_eq!(arch.layer_of("model.norm.weight"), None);
        assert_eq!(arch.layer_of("model.layers.9.mlp.up_proj.weight"), None);
    }

    #[test]
    fn check_rejects_bad_specs() {
        let mut arch = ArchSpec::tiny("t");
        arch.n_heads = 3;
        assert!(arch.check().is_err(), "non-dividing heads must fail");
        let mut arch2 = ArchSpec::tiny("t");
        arch2.d_model = 0;
        assert!(arch2.check().is_err(), "zero dims must fail");
        let mut arch3 = ArchSpec::tiny("t");
        arch3.d_model = 6;
        arch3.n_heads = 2; // head_dim 3 is odd -> RoPE impossible
        assert!(arch3.check().is_err());
    }

    #[test]
    fn scalar_count_adds_up() {
        let arch = ArchSpec::tiny("t");
        // embed + lm_head: 2 * 64*16; per layer: 4 attn (16*16) + gate/up
        // (32*16 each) + down (16*32) + 2 norms (16); final norm 16.
        let per_layer = 4 * 16 * 16 + 3 * 32 * 16 + 2 * 16;
        assert_eq!(arch.scalar_count(), 2 * 64 * 16 + 2 * per_layer + 16);
    }

    #[test]
    fn norm_kinds_flagged() {
        assert!(ParamKind::InputNorm.is_norm());
        assert!(ParamKind::FinalNorm.is_norm());
        assert!(!ParamKind::AttnQ.is_norm());
    }

    #[test]
    fn display_mentions_dims() {
        let s = ArchSpec::tiny("demo").to_string();
        assert!(s.contains("demo") && s.contains("d_model=16"));
    }
}

//! The named-tensor checkpoint type.

use std::collections::BTreeMap;

use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::{stats::WeightSummary, Matrix};

use crate::{ArchSpec, ModelError, ParamKind};

/// A complete set of model weights, keyed by canonical parameter name.
///
/// Checkpoints are the unit of work for model merging: the paper's merging
/// function `f` maps `(W_chip^(l), W_instruct^(l))` pairs — drawn from two
/// conformable checkpoints — to the merged layer weights.
///
/// Tensors are stored in a `BTreeMap` so iteration order (and therefore
/// every merge, serialization, and report) is deterministic.
///
/// # Example
///
/// ```
/// use chipalign_model::{ArchSpec, Checkpoint};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_model::ModelError> {
/// let arch = ArchSpec::tiny("demo");
/// let a = Checkpoint::random(&arch, &mut Pcg32::seed(1));
/// let b = Checkpoint::random(&arch, &mut Pcg32::seed(2));
/// assert!(a.conformable_with(&b));
/// assert_eq!(a.scalar_count(), arch.scalar_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    arch: ArchSpec,
    tensors: BTreeMap<String, Matrix>,
    metadata: BTreeMap<String, String>,
}

impl Checkpoint {
    /// Creates an all-zero checkpoint for an architecture.
    #[must_use]
    pub fn zeros(arch: &ArchSpec) -> Self {
        let tensors = arch
            .param_names()
            .into_iter()
            .map(|name| {
                let (r, c) = arch.shape_of(&name).expect("own names are valid");
                (name, Matrix::zeros(r, c))
            })
            .collect();
        Checkpoint {
            arch: arch.clone(),
            tensors,
            metadata: BTreeMap::new(),
        }
    }

    /// Creates a randomly initialised checkpoint: Xavier-uniform projections,
    /// small-normal embeddings, unit norm gains — the standard init for the
    /// transformer substrate.
    #[must_use]
    pub fn random(arch: &ArchSpec, rng: &mut Pcg32) -> Self {
        let tensors = arch
            .param_names()
            .into_iter()
            .map(|name| {
                let (r, c) = arch.shape_of(&name).expect("own names are valid");
                let kind = arch.kind_of(&name).expect("own names are valid");
                let m = match kind {
                    ParamKind::Embedding | ParamKind::LmHead => Matrix::randn(r, c, 0.02, rng),
                    k if k.is_norm() => Matrix::ones(r, c),
                    _ => Matrix::xavier(r, c, rng),
                };
                (name, m)
            })
            .collect();
        Checkpoint {
            arch: arch.clone(),
            tensors,
            metadata: BTreeMap::new(),
        }
    }

    /// Assembles a checkpoint from raw parts.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure (missing/unexpected parameter or
    /// shape violation) if the tensors do not instantiate `arch` exactly.
    pub fn from_parts(
        arch: ArchSpec,
        tensors: BTreeMap<String, Matrix>,
        metadata: BTreeMap<String, String>,
    ) -> Result<Self, ModelError> {
        let ckpt = Checkpoint {
            arch,
            tensors,
            metadata,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// The architecture this checkpoint instantiates.
    #[must_use]
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Free-form metadata (provenance, training recipe, merge settings).
    #[must_use]
    pub fn metadata(&self) -> &BTreeMap<String, String> {
        &self.metadata
    }

    /// Inserts or replaces a metadata entry.
    pub fn set_metadata(&mut self, key: &str, value: &str) {
        self.metadata.insert(key.to_string(), value.to_string());
    }

    /// Looks up a tensor by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.tensors.get(name)
    }

    /// Mutable access to a tensor by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Matrix> {
        self.tensors.get_mut(name)
    }

    /// Replaces a tensor, enforcing the architecture's shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnexpectedParam`] for a name outside the
    /// architecture, or [`ModelError::ShapeViolation`] for a wrong shape.
    pub fn insert(&mut self, name: &str, tensor: Matrix) -> Result<(), ModelError> {
        let expected = self
            .arch
            .shape_of(name)
            .ok_or_else(|| ModelError::UnexpectedParam { name: name.into() })?;
        if tensor.shape() != expected {
            return Err(ModelError::ShapeViolation {
                name: name.into(),
                expected,
                found: tensor.shape(),
            });
        }
        self.tensors.insert(name.to_string(), tensor);
        Ok(())
    }

    /// Iterates over `(name, tensor)` pairs in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.tensors.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Parameter names in canonical order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.tensors.keys().map(String::as_str).collect()
    }

    /// Number of named parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.tensors.len()
    }

    /// Total number of scalar weights.
    #[must_use]
    pub fn scalar_count(&self) -> usize {
        self.tensors.values().map(Matrix::len).sum()
    }

    /// Verifies that this checkpoint instantiates its architecture exactly:
    /// every declared parameter present with the declared shape, and nothing
    /// extra.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ModelError> {
        for name in self.arch.param_names() {
            let expected = self.arch.shape_of(&name).expect("own names are valid");
            match self.tensors.get(&name) {
                None => return Err(ModelError::MissingParam { name }),
                Some(t) if t.shape() != expected => {
                    return Err(ModelError::ShapeViolation {
                        name,
                        expected,
                        found: t.shape(),
                    })
                }
                Some(_) => {}
            }
        }
        if self.tensors.len() != self.arch.param_count() {
            let extra = self
                .tensors
                .keys()
                .find(|k| self.arch.kind_of(k).is_none())
                .cloned()
                .unwrap_or_default();
            return Err(ModelError::UnexpectedParam { name: extra });
        }
        Ok(())
    }

    /// Whether two checkpoints can be merged: identical parameter names with
    /// identical shapes (the paper's conformability assumption). Metadata
    /// and architecture *names* may differ.
    #[must_use]
    pub fn conformable_with(&self, other: &Checkpoint) -> bool {
        self.conformability_error(other).is_none()
    }

    /// Explains why two checkpoints are not conformable, or `None` if they
    /// are.
    #[must_use]
    pub fn conformability_error(&self, other: &Checkpoint) -> Option<String> {
        if self.tensors.len() != other.tensors.len() {
            return Some(format!(
                "parameter count differs: {} vs {}",
                self.tensors.len(),
                other.tensors.len()
            ));
        }
        for ((na, ta), (nb, tb)) in self.tensors.iter().zip(other.tensors.iter()) {
            if na != nb {
                return Some(format!("parameter name mismatch: `{na}` vs `{nb}`"));
            }
            if ta.shape() != tb.shape() {
                return Some(format!(
                    "shape mismatch for `{na}`: {:?} vs {:?}",
                    ta.shape(),
                    tb.shape()
                ));
            }
        }
        None
    }

    /// Applies `f` to every tensor, producing a new checkpoint with the same
    /// architecture and metadata.
    #[must_use]
    pub fn map_tensors(&self, mut f: impl FnMut(&str, &Matrix) -> Matrix) -> Self {
        Checkpoint {
            arch: self.arch.clone(),
            tensors: self
                .tensors
                .iter()
                .map(|(n, t)| (n.clone(), f(n, t)))
                .collect(),
            metadata: self.metadata.clone(),
        }
    }

    /// Per-parameter numeric summaries, in canonical order.
    #[must_use]
    pub fn summaries(&self) -> Vec<(String, WeightSummary)> {
        self.tensors
            .iter()
            .map(|(n, t)| (n.clone(), WeightSummary::of(t)))
            .collect()
    }

    /// Whole-model Frobenius norm (flattening all parameters into one
    /// vector).
    #[must_use]
    pub fn global_norm(&self) -> f64 {
        self.tensors
            .values()
            .map(|t| {
                let n = f64::from(t.frobenius_norm());
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// `true` if every element of every tensor is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.tensors.values().all(Matrix::all_finite)
    }

    /// Name of the first tensor (in canonical order) containing a NaN or
    /// infinite value, or `None` when the checkpoint is entirely finite.
    #[must_use]
    pub fn first_non_finite(&self) -> Option<&str> {
        self.tensors
            .iter()
            .find(|(_, t)| !t.all_finite())
            .map(|(n, _)| n.as_str())
    }

    /// `true` if the two checkpoints agree elementwise within `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Checkpoint, tol: f32) -> bool {
        self.conformable_with(other)
            && self
                .tensors
                .values()
                .zip(other.tensors.values())
                .all(|(a, b)| a.approx_eq(b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchSpec {
        ArchSpec::tiny("test")
    }

    #[test]
    fn zeros_and_random_validate() {
        let a = arch();
        Checkpoint::zeros(&a).validate().expect("zeros valid");
        Checkpoint::random(&a, &mut Pcg32::seed(3))
            .validate()
            .expect("random valid");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = arch();
        let c1 = Checkpoint::random(&a, &mut Pcg32::seed(9));
        let c2 = Checkpoint::random(&a, &mut Pcg32::seed(9));
        assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    fn norm_gains_initialise_to_one() {
        let a = arch();
        let c = Checkpoint::random(&a, &mut Pcg32::seed(1));
        let norm = c.get("model.norm.weight").expect("present");
        assert!(norm.data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn insert_enforces_shape() {
        let a = arch();
        let mut c = Checkpoint::zeros(&a);
        let err = c.insert("model.norm.weight", Matrix::zeros(2, 16));
        assert!(matches!(err, Err(ModelError::ShapeViolation { .. })));
        let err = c.insert("nonsense", Matrix::zeros(1, 1));
        assert!(matches!(err, Err(ModelError::UnexpectedParam { .. })));
        c.insert("model.norm.weight", Matrix::ones(1, 16))
            .expect("correct shape accepted");
    }

    #[test]
    fn validate_catches_missing_param() {
        let a = arch();
        let mut tensors: BTreeMap<String, Matrix> = Checkpoint::zeros(&a)
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();
        tensors.remove("lm_head.weight");
        let err = Checkpoint::from_parts(a, tensors, BTreeMap::new());
        assert!(matches!(err, Err(ModelError::MissingParam { .. })));
    }

    #[test]
    fn validate_catches_extra_param() {
        let a = arch();
        let mut tensors: BTreeMap<String, Matrix> = Checkpoint::zeros(&a)
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect();
        tensors.insert("bogus.weight".into(), Matrix::zeros(1, 1));
        let err = Checkpoint::from_parts(a, tensors, BTreeMap::new());
        assert!(matches!(err, Err(ModelError::UnexpectedParam { .. })));
    }

    #[test]
    fn conformable_across_same_shape_archs() {
        let mut a1 = arch();
        a1.name = "alpha".into();
        let mut a2 = arch();
        a2.name = "beta".into();
        let c1 = Checkpoint::zeros(&a1);
        let c2 = Checkpoint::zeros(&a2);
        assert!(c1.conformable_with(&c2), "names may differ, shapes decide");
    }

    #[test]
    fn not_conformable_when_layers_differ() {
        let a1 = arch();
        let mut a2 = arch();
        a2.n_layers = 1;
        let c1 = Checkpoint::zeros(&a1);
        let c2 = Checkpoint::zeros(&a2);
        assert!(!c1.conformable_with(&c2));
        assert!(c1
            .conformability_error(&c2)
            .expect("must explain")
            .contains("parameter count"));
    }

    #[test]
    fn map_tensors_preserves_structure() {
        let a = arch();
        let c = Checkpoint::random(&a, &mut Pcg32::seed(4));
        let doubled = c.map_tensors(|_, t| t.scale(2.0));
        doubled.validate().expect("still valid");
        assert!((doubled.global_norm() - 2.0 * c.global_norm()).abs() < 1e-3 * c.global_norm());
    }

    #[test]
    fn global_norm_of_zeros_is_zero() {
        assert_eq!(Checkpoint::zeros(&arch()).global_norm(), 0.0);
    }

    #[test]
    fn scalar_count_matches_arch() {
        let a = arch();
        assert_eq!(Checkpoint::zeros(&a).scalar_count(), a.scalar_count());
    }

    #[test]
    fn metadata_round_trip() {
        let mut c = Checkpoint::zeros(&arch());
        c.set_metadata("recipe", "daft-lora-r8");
        assert_eq!(
            c.metadata().get("recipe").map(String::as_str),
            Some("daft-lora-r8")
        );
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut c = Checkpoint::zeros(&arch());
        assert!(c.all_finite());
        assert_eq!(c.first_non_finite(), None);
        let t = c.get_mut("model.norm.weight").expect("present");
        t.data_mut()[0] = f32::NAN;
        assert!(!c.all_finite());
        assert_eq!(c.first_non_finite(), Some("model.norm.weight"));
    }
}

//! Checkpoint diffing: quantify how far two conformable checkpoints are
//! apart, per tensor and globally.
//!
//! Merging work constantly asks "how much did this finetune move, and
//! where?" — the answer decides whether interpolation can work at all
//! (see DESIGN.md §6.3). [`CheckpointDiff`] reports, per parameter, the
//! relative weight delta and direction change, plus global summaries and
//! the most-moved tensors.

use chipalign_tensor::stats;

use crate::{Checkpoint, ModelError};

/// The difference between one pair of tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDiff {
    /// Parameter name.
    pub name: String,
    /// Frobenius norm of `b − a`.
    pub delta_norm: f32,
    /// `‖b − a‖ / ‖a‖` (0 when `a` is zero).
    pub relative_delta: f32,
    /// Cosine similarity between the two tensors.
    pub cosine: f64,
}

/// A full checkpoint comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDiff {
    /// Per-tensor differences in canonical parameter order.
    pub tensors: Vec<TensorDiff>,
    /// Global `‖b − a‖` over all parameters.
    pub global_delta: f64,
    /// Global relative delta `‖b − a‖ / ‖a‖`.
    pub global_relative: f64,
}

impl CheckpointDiff {
    /// Compares two conformable checkpoints (`a` is the reference).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotConformable`] if the checkpoints differ in
    /// structure.
    ///
    /// # Example
    ///
    /// ```
    /// use chipalign_model::{diff::CheckpointDiff, ArchSpec, Checkpoint};
    /// use chipalign_tensor::rng::Pcg32;
    ///
    /// # fn main() -> Result<(), chipalign_model::ModelError> {
    /// let arch = ArchSpec::tiny("demo");
    /// let a = Checkpoint::random(&arch, &mut Pcg32::seed(1));
    /// let d = CheckpointDiff::between(&a, &a)?;
    /// assert_eq!(d.global_delta, 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn between(a: &Checkpoint, b: &Checkpoint) -> Result<Self, ModelError> {
        if let Some(reason) = a.conformability_error(b) {
            return Err(ModelError::NotConformable { reason });
        }
        let mut tensors = Vec::with_capacity(a.param_count());
        let mut delta_sq = 0.0f64;
        let mut ref_sq = 0.0f64;
        for (name, ta) in a.iter() {
            let tb = b.get(name).expect("conformable");
            let delta = tb.sub(ta)?;
            let delta_norm = delta.frobenius_norm();
            let ref_norm = ta.frobenius_norm();
            delta_sq += f64::from(delta_norm) * f64::from(delta_norm);
            ref_sq += f64::from(ref_norm) * f64::from(ref_norm);
            tensors.push(TensorDiff {
                name: name.to_string(),
                delta_norm,
                relative_delta: if ref_norm > 0.0 {
                    delta_norm / ref_norm
                } else {
                    0.0
                },
                cosine: stats::cosine_similarity(ta, tb)?,
            });
        }
        let global_delta = delta_sq.sqrt();
        Ok(CheckpointDiff {
            tensors,
            global_delta,
            global_relative: if ref_sq > 0.0 {
                global_delta / ref_sq.sqrt()
            } else {
                0.0
            },
        })
    }

    /// The `k` tensors with the largest relative deltas, descending.
    #[must_use]
    pub fn most_changed(&self, k: usize) -> Vec<&TensorDiff> {
        let mut sorted: Vec<&TensorDiff> = self.tensors.iter().collect();
        sorted.sort_by(|a, b| b.relative_delta.total_cmp(&a.relative_delta));
        sorted.truncate(k);
        sorted
    }

    /// Mean cosine similarity across tensors (1 when identical).
    #[must_use]
    pub fn mean_cosine(&self) -> f64 {
        if self.tensors.is_empty() {
            return 1.0;
        }
        self.tensors.iter().map(|t| t.cosine).sum::<f64>() / self.tensors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn ckpt(seed: u64) -> Checkpoint {
        Checkpoint::random(&ArchSpec::tiny("diff"), &mut Pcg32::seed(seed))
    }

    #[test]
    fn identical_checkpoints_have_zero_diff() {
        let a = ckpt(1);
        let d = CheckpointDiff::between(&a, &a).expect("conformable");
        assert_eq!(d.global_delta, 0.0);
        assert_eq!(d.global_relative, 0.0);
        assert!((d.mean_cosine() - 1.0).abs() < 1e-6);
        assert!(d.tensors.iter().all(|t| t.delta_norm == 0.0));
    }

    #[test]
    fn independent_checkpoints_diverge() {
        let d = CheckpointDiff::between(&ckpt(1), &ckpt(2)).expect("conformable");
        assert!(d.global_relative > 0.5, "independent inits are far apart");
        // Norm gains are identical (all ones), so some cosines are exactly 1.
        assert!(d.tensors.iter().any(|t| (t.cosine - 1.0).abs() < 1e-9));
    }

    #[test]
    fn scaled_checkpoint_has_unit_cosine() {
        let a = ckpt(3);
        let b = a.map_tensors(|_, t| t.scale(1.5));
        let d = CheckpointDiff::between(&a, &b).expect("conformable");
        for t in &d.tensors {
            if t.delta_norm > 0.0 {
                assert!((t.cosine - 1.0).abs() < 1e-5, "{t:?}");
                assert!((t.relative_delta - 0.5).abs() < 1e-4, "{t:?}");
            }
        }
        assert!((d.global_relative - 0.5).abs() < 1e-3);
    }

    #[test]
    fn most_changed_orders_by_relative_delta() {
        let a = ckpt(4);
        let mut b = a.clone();
        // Perturb one tensor strongly.
        let t = b.get_mut("lm_head.weight").expect("present");
        t.scale_inplace(3.0);
        let d = CheckpointDiff::between(&a, &b).expect("conformable");
        let top = d.most_changed(1);
        assert_eq!(top[0].name, "lm_head.weight");
        assert_eq!(d.most_changed(1000).len(), a.param_count());
    }

    #[test]
    fn nonconformable_is_an_error() {
        let mut small = ArchSpec::tiny("diff");
        small.n_layers = 1;
        let err = CheckpointDiff::between(&ckpt(1), &Checkpoint::zeros(&small));
        assert!(matches!(err, Err(ModelError::NotConformable { .. })));
    }
}

use std::error::Error;
use std::fmt;

use chipalign_tensor::TensorError;

/// Errors produced by checkpoint construction, validation, and (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The checkpoint is missing a parameter that its architecture requires.
    MissingParam {
        /// Name of the missing parameter.
        name: String,
    },
    /// The checkpoint contains a parameter its architecture does not declare.
    UnexpectedParam {
        /// Name of the unexpected parameter.
        name: String,
    },
    /// A parameter exists but has the wrong shape for its architecture.
    ShapeViolation {
        /// Parameter name.
        name: String,
        /// Shape required by the architecture.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
    /// Two checkpoints are not conformable for merging.
    NotConformable {
        /// Human-readable reason (first difference found).
        reason: String,
    },
    /// A serialized checkpoint could not be decoded.
    Corrupt {
        /// What went wrong during decoding.
        detail: String,
    },
    /// A tensor's stored checksum does not match its payload bytes.
    ChecksumMismatch {
        /// Name of the tensor whose checksum failed.
        tensor: String,
    },
    /// A tensor contains NaN or infinite values.
    NonFinite {
        /// Name of the first offending tensor.
        tensor: String,
    },
    /// An I/O error occurred while reading or writing a checkpoint file.
    Io(std::io::Error),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::MissingParam { name } => {
                write!(f, "checkpoint is missing required parameter `{name}`")
            }
            ModelError::UnexpectedParam { name } => {
                write!(f, "checkpoint contains undeclared parameter `{name}`")
            }
            ModelError::ShapeViolation {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter `{name}` has shape {}x{} but the architecture requires {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            ModelError::NotConformable { reason } => {
                write!(f, "checkpoints are not conformable for merging: {reason}")
            }
            ModelError::Corrupt { detail } => {
                write!(f, "corrupt checkpoint data: {detail}")
            }
            ModelError::ChecksumMismatch { tensor } => {
                write!(f, "checksum mismatch for tensor `{tensor}`")
            }
            ModelError::NonFinite { tensor } => {
                write!(f, "tensor `{tensor}` contains non-finite values")
            }
            ModelError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_missing_param() {
        let err = ModelError::MissingParam {
            name: "lm_head.weight".into(),
        };
        assert!(err.to_string().contains("lm_head.weight"));
    }

    #[test]
    fn display_shape_violation() {
        let err = ModelError::ShapeViolation {
            name: "w".into(),
            expected: (2, 3),
            found: (3, 2),
        };
        let s = err.to_string();
        assert!(s.contains("3x2") && s.contains("2x3"));
    }

    #[test]
    fn tensor_error_converts_and_sources() {
        let err: ModelError = TensorError::Empty { op: "mean" }.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("tensor error"));
    }

    #[test]
    fn display_checksum_and_non_finite() {
        let err = ModelError::ChecksumMismatch {
            tensor: "lm_head.weight".into(),
        };
        assert!(err.to_string().contains("checksum"));
        assert!(err.to_string().contains("lm_head.weight"));
        let err = ModelError::NonFinite {
            tensor: "model.norm.weight".into(),
        };
        assert!(err.to_string().contains("non-finite"));
        assert!(err.to_string().contains("model.norm.weight"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}

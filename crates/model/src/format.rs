//! "Safetensors-lite": a compact binary checkpoint format.
//!
//! Real LLM checkpoints ship as safetensors files; this module provides the
//! workspace's equivalent so that trained specialists and merged models can
//! be cached on disk and exchanged between pipeline stages.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"CALT"
//! version u32 (currently 2; version-1 files remain readable)
//! arch    name:str vocab:u64 d_model:u64 n_layers:u64 n_heads:u64 d_ff:u64 max_seq:u64
//! meta    count:u32 { key:str value:str }*
//! tensors count:u32 { name:str rows:u64 cols:u64 data:[f32]* tcrc:u64 }*
//! crc     u64  FNV-1a over everything before it
//! str     len:u32 utf8-bytes
//! ```
//!
//! Version 2 embeds a per-tensor FNV-1a checksum (`tcrc`) over each tensor's
//! payload bytes, so a load failure names the damaged tensor instead of just
//! "file corrupt"; version-1 files (no `tcrc`) still decode. Loads also
//! reject non-finite weights — a checkpoint with NaN/Inf can only produce
//! garbage generations, so it is refused up front with
//! [`ModelError::NonFinite`].
//!
//! [`save`] is crash-safe: bytes are written to a temporary sibling file,
//! fsynced, and renamed into place, so a crash or torn write mid-save can
//! never leave a half-written checkpoint at the destination path.
//!
//! # Example
//!
//! ```
//! use chipalign_model::{ArchSpec, Checkpoint, format};
//! use chipalign_tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), chipalign_model::ModelError> {
//! let ckpt = Checkpoint::random(&ArchSpec::tiny("demo"), &mut Pcg32::seed(1));
//! let bytes = format::encode(&ckpt);
//! let back = format::decode(&bytes)?;
//! assert!(ckpt.approx_eq(&back, 0.0));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use chipalign_tensor::Matrix;

use crate::{ArchSpec, Checkpoint, ModelError};

const MAGIC: &[u8; 4] = b"CALT";
/// Current on-disk version. Version 1 (no per-tensor checksums) is still
/// accepted by [`decode`].
const VERSION: u32 = 2;
/// Oldest version [`decode`] accepts.
const MIN_VERSION: u32 = 1;

/// Serializes a checkpoint to its binary representation (version 2).
#[must_use]
pub fn encode(ckpt: &Checkpoint) -> Bytes {
    encode_with_version(ckpt, VERSION)
}

fn encode_with_version(ckpt: &Checkpoint, version: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + ckpt.scalar_count() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(version);
    let arch = ckpt.arch();
    put_str(&mut buf, &arch.name);
    for dim in [
        arch.vocab_size,
        arch.d_model,
        arch.n_layers,
        arch.n_heads,
        arch.d_ff,
        arch.max_seq_len,
    ] {
        buf.put_u64_le(dim as u64);
    }
    buf.put_u32_le(ckpt.metadata().len() as u32);
    for (k, v) in ckpt.metadata() {
        put_str(&mut buf, k);
        put_str(&mut buf, v);
    }
    buf.put_u32_le(ckpt.param_count() as u32);
    for (name, tensor) in ckpt.iter() {
        put_str(&mut buf, name);
        buf.put_u64_le(tensor.rows() as u64);
        buf.put_u64_le(tensor.cols() as u64);
        let data_start = buf.len();
        for &x in tensor.data() {
            buf.put_f32_le(x);
        }
        if version >= 2 {
            let tcrc = fnv1a(&buf[data_start..]);
            buf.put_u64_le(tcrc);
        }
    }
    let crc = fnv1a(&buf);
    buf.put_u64_le(crc);
    buf.freeze()
}

/// Deserializes a checkpoint from bytes produced by [`encode`] (either
/// format version).
///
/// # Errors
///
/// Returns [`ModelError::Corrupt`] for truncated data, a bad magic/version,
/// a whole-file checksum mismatch, or invalid UTF-8;
/// [`ModelError::ChecksumMismatch`] when a version-2 tensor fails its
/// embedded checksum; [`ModelError::NonFinite`] when a tensor holds NaN or
/// infinite weights; and the usual validation errors if the decoded tensors
/// do not instantiate the decoded architecture.
pub fn decode(data: &[u8]) -> Result<Checkpoint, ModelError> {
    if data.len() < MAGIC.len() + 4 + 8 {
        return Err(corrupt("shorter than minimum header"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 8);
    let stored_crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }

    let mut buf = body;
    let mut magic = [0u8; 4];
    take(&mut buf, 4)?.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = take(&mut buf, 4)?.get_u32_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(corrupt(&format!("unsupported version {version}")));
    }

    let name = get_str(&mut buf)?;
    let mut dims = [0usize; 6];
    for d in &mut dims {
        *d = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("dimension overflows usize"))?;
    }
    let arch = ArchSpec {
        name,
        vocab_size: dims[0],
        d_model: dims[1],
        n_layers: dims[2],
        n_heads: dims[3],
        d_ff: dims[4],
        max_seq_len: dims[5],
    };

    let meta_count = take(&mut buf, 4)?.get_u32_le();
    let mut metadata = BTreeMap::new();
    for _ in 0..meta_count {
        let k = get_str(&mut buf)?;
        let v = get_str(&mut buf)?;
        metadata.insert(k, v);
    }

    let tensor_count = take(&mut buf, 4)?.get_u32_le();
    let mut tensors = BTreeMap::new();
    for _ in 0..tensor_count {
        let tname = get_str(&mut buf)?;
        let rows = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("rows overflow"))?;
        let cols = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("cols overflow"))?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("tensor size overflow"))?;
        let byte_len = n
            .checked_mul(4)
            .ok_or_else(|| corrupt("tensor byte size overflow"))?;
        let payload_bytes = take(&mut buf, byte_len)?;
        if version >= 2 {
            let stored_tcrc = take(&mut buf, 8)?.get_u64_le();
            if fnv1a(payload_bytes) != stored_tcrc {
                return Err(ModelError::ChecksumMismatch { tensor: tname });
            }
        }
        let mut payload = payload_bytes;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(payload.get_f32_le());
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite { tensor: tname });
        }
        let m = Matrix::from_vec(rows, cols, values)?;
        tensors.insert(tname, m);
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after last tensor"));
    }
    Checkpoint::from_parts(arch, tensors, metadata)
}

/// Writes a checkpoint to a file, crash-safely: the bytes land in a
/// temporary sibling (`<name>.<pid>.tmp`), are fsynced, and are renamed
/// into place, so a crash mid-save never leaves a torn file at `path`.
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failures; the temporary file is
/// removed on any failure.
pub fn save(ckpt: &Checkpoint, path: impl AsRef<Path>) -> Result<(), ModelError> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let result = (|| -> Result<(), ModelError> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&encode(ckpt))?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint from a file written by [`save`].
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failures and the [`decode`]
/// errors on malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, ModelError> {
    let data = fs::read(path)?;
    decode(&data)
}

/// The temporary sibling a [`save`] to `path` stages its bytes in. The pid
/// suffix keeps concurrent saves from different processes from clobbering
/// each other's staging file.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("ckpt"), |n| n.to_os_string());
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut &[u8]) -> Result<String, ModelError> {
    let len = take(buf, 4)?.get_u32_le() as usize;
    let mut bytes = vec![0u8; len];
    take(buf, len)?.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| corrupt("invalid utf-8 in string"))
}

/// Splits `n` bytes off the front of `buf`, failing on underrun.
pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelError> {
    if buf.len() < n {
        return Err(corrupt("unexpected end of data"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

pub(crate) fn corrupt(detail: &str) -> ModelError {
    ModelError::Corrupt {
        detail: detail.to_string(),
    }
}

/// FNV-1a 64-bit hash.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_tensor::rng::Pcg32;

    fn sample() -> Checkpoint {
        let mut ckpt = Checkpoint::random(&ArchSpec::tiny("fmt"), &mut Pcg32::seed(7));
        ckpt.set_metadata("origin", "unit-test");
        ckpt
    }

    /// Refits the trailing whole-file CRC so targeted per-tensor damage is
    /// not masked by the outer checksum.
    fn refit_file_crc(data: &mut [u8]) {
        let body_len = data.len() - 8;
        let crc = fnv1a(&data[..body_len]);
        data[body_len..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn round_trip_exact() {
        let ckpt = sample();
        let back = decode(&encode(&ckpt)).expect("round trip");
        assert!(ckpt.approx_eq(&back, 0.0));
        assert_eq!(
            back.metadata().get("origin").map(String::as_str),
            Some("unit-test")
        );
        assert_eq!(back.arch(), ckpt.arch());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("chipalign-fmt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.calt");
        let ckpt = sample();
        save(&ckpt, &path).expect("save");
        let back = load(&path).expect("load");
        assert!(ckpt.approx_eq(&back, 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temporary_behind() {
        let dir = std::env::temp_dir().join("chipalign-fmt-atomic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("atomic.calt");
        save(&sample(), &path).expect("save");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging file must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_into_missing_directory_is_a_clean_io_error() {
        let path = std::env::temp_dir()
            .join("chipalign-no-such-dir")
            .join("x.calt");
        assert!(matches!(save(&sample(), &path), Err(ModelError::Io(_))));
    }

    #[test]
    fn detects_bit_flip() {
        let mut data = encode(&sample()).to_vec();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        assert!(matches!(decode(&data), Err(ModelError::Corrupt { .. })));
    }

    #[test]
    fn detects_truncation() {
        let data = encode(&sample());
        for cut in [0, 3, 10, data.len() - 1] {
            assert!(
                matches!(decode(&data[..cut]), Err(ModelError::Corrupt { .. })),
                "cut at {cut} must be detected"
            );
        }
    }

    #[test]
    fn per_tensor_checksum_names_the_damaged_tensor() {
        // Flip a byte in the last tensor's payload and refit the outer CRC,
        // so only the embedded per-tensor checksum can catch it. Layout
        // tail: ... data | tcrc(8) | file-crc(8).
        let mut data = encode(&sample()).to_vec();
        let idx = data.len() - 17; // last payload byte of the last tensor
        data[idx] ^= 0xFF;
        refit_file_crc(&mut data);
        match decode(&data) {
            Err(ModelError::ChecksumMismatch { tensor }) => {
                assert!(!tensor.is_empty(), "mismatch must name a tensor");
            }
            other => panic!("expected per-tensor checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn old_version_1_files_still_load() {
        let ckpt = sample();
        let v1 = encode_with_version(&ckpt, 1);
        assert_ne!(v1.len(), encode(&ckpt).len(), "v1 carries no tensor crcs");
        let back = decode(&v1).expect("v1 decode");
        assert!(ckpt.approx_eq(&back, 0.0));
    }

    #[test]
    fn non_finite_weights_are_rejected_at_load() {
        let mut ckpt = sample();
        ckpt.get_mut("model.norm.weight")
            .expect("present")
            .data_mut()[0] = f32::NAN;
        let data = encode(&ckpt);
        match decode(&data) {
            Err(ModelError::NonFinite { tensor }) => {
                assert_eq!(tensor, "model.norm.weight");
            }
            other => panic!("expected non-finite rejection, got {other:?}"),
        }
    }

    #[test]
    fn detects_bad_magic() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        // Fix up the checksum so only the magic is wrong.
        refit_file_crc(&mut data);
        let err = decode(&data);
        assert!(matches!(err, Err(ModelError::Corrupt { .. })));
    }

    #[test]
    fn detects_bad_version() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        refit_file_crc(&mut data);
        match decode(&data) {
            Err(ModelError::Corrupt { detail }) => assert!(detail.contains("version")),
            other => panic!("expected corrupt-version, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(decode(&[]), Err(ModelError::Corrupt { .. })));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn encoding_is_deterministic() {
        let ckpt = sample();
        assert_eq!(encode(&ckpt), encode(&ckpt));
    }
}

//! Checkpoint representation for the ChipAlign reproduction.
//!
//! The ChipAlign merge (and every baseline merger) operates on *checkpoints*:
//! ordered maps from parameter names to weight matrices, tagged with the
//! architecture they instantiate. This crate provides:
//!
//! * [`ArchSpec`] — a LLaMA-style decoder-only transformer architecture
//!   description that enumerates every parameter name and its shape
//!   (embedding, per-layer attention/MLP projections, RMSNorm gains, LM
//!   head). The paper's "conformable for merging" precondition is checked
//!   against this spec.
//! * [`Checkpoint`] — the named-tensor map itself, with validation,
//!   conformability checks, and whole-model statistics.
//! * [`format`](mod@format) — a compact binary serialization ("safetensors-lite": magic,
//!   versioned header, name/shape directory, little-endian `f32` payload,
//!   FNV-1a checksum) standing in for the safetensors files real LLM
//!   checkpoints ship as.
//! * [`qformat`](mod@qformat) — the int8 sibling format ("CALQ"):
//!   [`QuantCheckpoint`] stores projection weights as per-row-scaled int8
//!   (norms and the embedding stay f32), quartering decode weight traffic;
//!   the serving registry materializes one behind the `#int8` spec suffix.
//!
//! # Example
//!
//! ```
//! use chipalign_model::{ArchSpec, Checkpoint};
//! use chipalign_tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), chipalign_model::ModelError> {
//! let arch = ArchSpec::tiny("demo");
//! let mut rng = Pcg32::seed(1);
//! let ckpt = Checkpoint::random(&arch, &mut rng);
//! ckpt.validate()?;
//! assert!(ckpt.conformable_with(&ckpt));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod checkpoint;
pub mod diff;
mod error;
pub mod format;
pub mod qformat;

pub use arch::{ArchSpec, ParamKind};
pub use checkpoint::Checkpoint;
pub use error::ModelError;
pub use qformat::{QuantCheckpoint, QuantTensor};

//! Quantized checkpoints: per-row-scaled int8 weights with mixed-dtype
//! persistence.
//!
//! [`QuantCheckpoint`] is the int8 sibling of [`Checkpoint`]: the same
//! named-tensor map, but projection weights (attention, MLP, LM head) are
//! stored as [`QuantizedMatrix`] — `i8` codes plus one `f32` scale per row —
//! while RMSNorm gains and the token embedding stay `f32`. Norm gains are
//! tiny and numerically sensitive; the embedding is a per-token row lookup
//! that streams one row per token either way, so quantizing it saves no
//! decode bandwidth. The policy is a pure function of [`ParamKind`]
//! ([`should_quantize`]), so every layer of the stack — model, nn decode,
//! serve registry — agrees on which tensors are int8.
//!
//! On-disk layout mirrors the f32 format (`format`) with a new magic and a
//! per-tensor dtype tag (all integers little-endian):
//!
//! ```text
//! magic   b"CALQ"
//! version u32 (currently 1)
//! arch    name:str vocab:u64 d_model:u64 n_layers:u64 n_heads:u64 d_ff:u64 max_seq:u64
//! meta    count:u32 { key:str value:str }*
//! tensors count:u32 { name:str dtype:u8 rows:u64 cols:u64 payload tcrc:u64 }*
//!         dtype 0 payload: [f32]*                      (rows·cols values)
//!         dtype 1 payload: scales:[f32]* codes:[i8]*   (rows, then rows·cols)
//! crc     u64  FNV-1a over everything before it
//! ```
//!
//! Loads rebuild each int8 tensor from its stored codes and scales
//! ([`QuantizedMatrix::from_parts`]) — never by re-quantizing a dequantized
//! matrix — so a persisted artifact loads back bit-identical, byte-for-byte
//! re-encodable, and the greedy transcripts it produces are exactly those
//! of the in-memory quantized model that was saved.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use chipalign_tensor::{Matrix, QuantizedMatrix};

use crate::format::{corrupt, fnv1a, get_str, put_str, take, tmp_sibling};
use crate::{ArchSpec, Checkpoint, ModelError, ParamKind};

const MAGIC: &[u8; 4] = b"CALQ";
const VERSION: u32 = 1;

const DTYPE_F32: u8 = 0;
const DTYPE_INT8: u8 = 1;

/// Whether a parameter of this kind is stored as int8 in a quantized
/// checkpoint. Projections (attention, MLP, LM head) quantize; norm gains
/// and the embedding table stay f32.
#[must_use]
pub fn should_quantize(kind: ParamKind) -> bool {
    !(kind.is_norm() || kind == ParamKind::Embedding)
}

/// One tensor of a quantized checkpoint: either a dense `f32` matrix or a
/// per-row-scaled int8 matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantTensor {
    /// Kept at full precision (norm gains, embedding table).
    F32(Matrix),
    /// Per-row-scaled int8 (all projection weights).
    Int8(QuantizedMatrix),
}

impl QuantTensor {
    /// `(rows, cols)` of the logical matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        match self {
            QuantTensor::F32(m) => m.shape(),
            QuantTensor::Int8(q) => q.shape(),
        }
    }

    /// Bytes this tensor streams from memory per full pass.
    #[must_use]
    pub fn weights_bytes(&self) -> u64 {
        match self {
            QuantTensor::F32(m) => 4 * m.data().len() as u64,
            QuantTensor::Int8(q) => q.weights_bytes(),
        }
    }

    /// A dense `f32` view (dequantized for int8 tensors).
    #[must_use]
    pub fn to_f32(&self) -> Matrix {
        match self {
            QuantTensor::F32(m) => m.clone(),
            QuantTensor::Int8(q) => q.dequantize(),
        }
    }
}

/// A mixed-dtype checkpoint: the architecture and metadata of a
/// [`Checkpoint`], with projection weights quantized to per-row-scaled
/// int8.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantCheckpoint {
    arch: ArchSpec,
    tensors: BTreeMap<String, QuantTensor>,
    metadata: BTreeMap<String, String>,
}

impl QuantCheckpoint {
    /// Quantizes a validated f32 checkpoint under the [`should_quantize`]
    /// policy. Parameters whose kind the architecture cannot classify stay
    /// f32 (a validated checkpoint has none, but the conversion must not
    /// silently degrade an unknown tensor).
    #[must_use]
    pub fn quantize(ckpt: &Checkpoint) -> Self {
        let arch = ckpt.arch().clone();
        let tensors = ckpt
            .iter()
            .map(|(name, tensor)| {
                let int8 = arch.kind_of(name).is_some_and(should_quantize);
                let qt = if int8 {
                    QuantTensor::Int8(QuantizedMatrix::quantize(tensor))
                } else {
                    QuantTensor::F32(tensor.clone())
                };
                (name.clone(), qt)
            })
            .collect();
        QuantCheckpoint {
            arch,
            tensors,
            metadata: ckpt.metadata().clone(),
        }
    }

    /// The architecture this checkpoint instantiates.
    #[must_use]
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The metadata map.
    #[must_use]
    pub fn metadata(&self) -> &BTreeMap<String, String> {
        &self.metadata
    }

    /// Looks up a tensor by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&QuantTensor> {
        self.tensors.get(name)
    }

    /// Iterates over `(name, tensor)` pairs in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &QuantTensor)> {
        self.tensors.iter()
    }

    /// Number of named tensors.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.tensors.len()
    }

    /// Total weight bytes streamed per full pass over the model —
    /// the quantity the int8 format exists to shrink (f32 checkpoints
    /// stream `4 × scalar_count`).
    #[must_use]
    pub fn weights_bytes(&self) -> u64 {
        self.tensors.values().map(QuantTensor::weights_bytes).sum()
    }

    /// Expands back to a dense f32 [`Checkpoint`] (the differential-test
    /// oracle path; also how f32-only consumers can read a quantized
    /// artifact).
    ///
    /// # Errors
    ///
    /// Returns the usual validation errors if the tensors do not
    /// instantiate the architecture (impossible for a checkpoint built by
    /// [`QuantCheckpoint::quantize`]).
    pub fn dequantize(&self) -> Result<Checkpoint, ModelError> {
        let tensors = self
            .tensors
            .iter()
            .map(|(name, t)| (name.clone(), t.to_f32()))
            .collect();
        Checkpoint::from_parts(self.arch.clone(), tensors, self.metadata.clone())
    }
}

/// Serializes a quantized checkpoint to its binary representation.
#[must_use]
pub fn encode(ckpt: &QuantCheckpoint) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + ckpt.weights_bytes() as usize);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let arch = ckpt.arch();
    put_str(&mut buf, &arch.name);
    for dim in [
        arch.vocab_size,
        arch.d_model,
        arch.n_layers,
        arch.n_heads,
        arch.d_ff,
        arch.max_seq_len,
    ] {
        buf.put_u64_le(dim as u64);
    }
    buf.put_u32_le(ckpt.metadata().len() as u32);
    for (k, v) in ckpt.metadata() {
        put_str(&mut buf, k);
        put_str(&mut buf, v);
    }
    buf.put_u32_le(ckpt.param_count() as u32);
    for (name, tensor) in ckpt.iter() {
        put_str(&mut buf, name);
        let (rows, cols) = tensor.shape();
        let data_start;
        match tensor {
            QuantTensor::F32(m) => {
                buf.put_u8(DTYPE_F32);
                buf.put_u64_le(rows as u64);
                buf.put_u64_le(cols as u64);
                data_start = buf.len();
                for &x in m.data() {
                    buf.put_f32_le(x);
                }
            }
            QuantTensor::Int8(q) => {
                buf.put_u8(DTYPE_INT8);
                buf.put_u64_le(rows as u64);
                buf.put_u64_le(cols as u64);
                data_start = buf.len();
                for &s in q.scales() {
                    buf.put_f32_le(s);
                }
                for &c in q.data() {
                    buf.put_i8(c);
                }
            }
        }
        let tcrc = fnv1a(&buf[data_start..]);
        buf.put_u64_le(tcrc);
    }
    let crc = fnv1a(&buf);
    buf.put_u64_le(crc);
    buf.freeze()
}

/// Deserializes a quantized checkpoint from bytes produced by [`encode`].
///
/// Int8 tensors are rebuilt from their stored codes and scales, so decode ∘
/// encode is the identity (and re-encoding reproduces the input bytes).
///
/// # Errors
///
/// Returns [`ModelError::Corrupt`] for truncated data, a bad
/// magic/version/dtype, a whole-file checksum mismatch, or invalid UTF-8;
/// [`ModelError::ChecksumMismatch`] when a tensor fails its embedded
/// checksum; and [`ModelError::NonFinite`] when an f32 tensor or an int8
/// tensor's scales hold NaN or infinite values.
pub fn decode(data: &[u8]) -> Result<QuantCheckpoint, ModelError> {
    if data.len() < MAGIC.len() + 4 + 8 {
        return Err(corrupt("shorter than minimum header"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 8);
    let stored_crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }

    let mut buf = body;
    let mut magic = [0u8; 4];
    take(&mut buf, 4)?.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = take(&mut buf, 4)?.get_u32_le();
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }

    let name = get_str(&mut buf)?;
    let mut dims = [0usize; 6];
    for d in &mut dims {
        *d = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("dimension overflows usize"))?;
    }
    let arch = ArchSpec {
        name,
        vocab_size: dims[0],
        d_model: dims[1],
        n_layers: dims[2],
        n_heads: dims[3],
        d_ff: dims[4],
        max_seq_len: dims[5],
    };

    let meta_count = take(&mut buf, 4)?.get_u32_le();
    let mut metadata = BTreeMap::new();
    for _ in 0..meta_count {
        let k = get_str(&mut buf)?;
        let v = get_str(&mut buf)?;
        metadata.insert(k, v);
    }

    let tensor_count = take(&mut buf, 4)?.get_u32_le();
    let mut tensors = BTreeMap::new();
    for _ in 0..tensor_count {
        let tname = get_str(&mut buf)?;
        let dtype = take(&mut buf, 1)?.get_u8();
        let rows = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("rows overflow"))?;
        let cols = usize::try_from(take(&mut buf, 8)?.get_u64_le())
            .map_err(|_| corrupt("cols overflow"))?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("tensor size overflow"))?;
        let payload_len = match dtype {
            DTYPE_F32 => n.checked_mul(4),
            DTYPE_INT8 => rows.checked_mul(4).and_then(|s| s.checked_add(n)),
            _ => return Err(corrupt(&format!("unknown dtype {dtype}"))),
        }
        .ok_or_else(|| corrupt("tensor byte size overflow"))?;
        let payload_bytes = take(&mut buf, payload_len)?;
        let stored_tcrc = take(&mut buf, 8)?.get_u64_le();
        if fnv1a(payload_bytes) != stored_tcrc {
            return Err(ModelError::ChecksumMismatch { tensor: tname });
        }
        let mut payload = payload_bytes;
        let tensor = match dtype {
            DTYPE_F32 => {
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(payload.get_f32_le());
                }
                if values.iter().any(|v| !v.is_finite()) {
                    return Err(ModelError::NonFinite { tensor: tname });
                }
                QuantTensor::F32(Matrix::from_vec(rows, cols, values)?)
            }
            _ => {
                let mut scales = Vec::with_capacity(rows);
                for _ in 0..rows {
                    scales.push(payload.get_f32_le());
                }
                if scales.iter().any(|s| !s.is_finite()) {
                    return Err(ModelError::NonFinite { tensor: tname });
                }
                let mut codes = Vec::with_capacity(n);
                for _ in 0..n {
                    codes.push(payload.get_i8());
                }
                QuantTensor::Int8(QuantizedMatrix::from_parts(rows, cols, codes, scales)?)
            }
        };
        tensors.insert(tname, tensor);
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after last tensor"));
    }
    Ok(QuantCheckpoint {
        arch,
        tensors,
        metadata,
    })
}

/// Writes a quantized checkpoint to a file, crash-safely (same
/// staging-and-rename protocol as the f32 format).
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failures; the temporary file is
/// removed on any failure.
pub fn save(ckpt: &QuantCheckpoint, path: impl AsRef<Path>) -> Result<(), ModelError> {
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    let result = (|| -> Result<(), ModelError> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&encode(ckpt))?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a quantized checkpoint from a file written by [`save`].
///
/// # Errors
///
/// Returns [`ModelError::Io`] on filesystem failures and the [`decode`]
/// errors on malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<QuantCheckpoint, ModelError> {
    let data = fs::read(path)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_tensor::rng::Pcg32;

    fn sample() -> QuantCheckpoint {
        let mut ckpt = Checkpoint::random(&ArchSpec::tiny("qfmt"), &mut Pcg32::seed(11));
        ckpt.set_metadata("origin", "qformat-test");
        QuantCheckpoint::quantize(&ckpt)
    }

    fn refit_file_crc(data: &mut [u8]) {
        let body_len = data.len() - 8;
        let crc = fnv1a(&data[..body_len]);
        data[body_len..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn policy_quantizes_projections_only() {
        assert!(should_quantize(ParamKind::AttnQ));
        assert!(should_quantize(ParamKind::MlpDown));
        assert!(should_quantize(ParamKind::LmHead));
        assert!(!should_quantize(ParamKind::Embedding));
        assert!(!should_quantize(ParamKind::InputNorm));
        assert!(!should_quantize(ParamKind::FinalNorm));
    }

    #[test]
    fn quantize_applies_policy_per_tensor() {
        let q = sample();
        assert!(matches!(
            q.get("model.embed_tokens.weight"),
            Some(QuantTensor::F32(_))
        ));
        assert!(matches!(
            q.get("model.norm.weight"),
            Some(QuantTensor::F32(_))
        ));
        assert!(matches!(
            q.get("lm_head.weight"),
            Some(QuantTensor::Int8(_))
        ));
        assert!(matches!(
            q.get("model.layers.0.self_attn.q_proj.weight"),
            Some(QuantTensor::Int8(_))
        ));
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let q = sample();
        let bytes = encode(&q);
        let back = decode(&bytes).expect("round trip");
        assert_eq!(back, q);
        assert_eq!(encode(&back), bytes, "re-encode must reproduce the bytes");
    }

    #[test]
    fn weights_bytes_beat_f32() {
        let arch = ArchSpec::tiny("qfmt");
        let ckpt = Checkpoint::random(&arch, &mut Pcg32::seed(12));
        let q = QuantCheckpoint::quantize(&ckpt);
        let f32_bytes = 4 * arch.scalar_count() as u64;
        assert!(
            q.weights_bytes() < f32_bytes / 2,
            "int8 model must stream under half the f32 bytes: {} vs {}",
            q.weights_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn dequantize_tracks_source_within_half_step() {
        let ckpt = Checkpoint::random(&ArchSpec::tiny("qfmt"), &mut Pcg32::seed(13));
        let deq = QuantCheckpoint::quantize(&ckpt)
            .dequantize()
            .expect("valid");
        deq.validate().expect("dequantized checkpoint validates");
        // Norms and embedding are bit-exact; projections within half a step.
        assert_eq!(deq.get("model.norm.weight"), ckpt.get("model.norm.weight"));
        let name = "model.layers.1.mlp.up_proj.weight";
        let (orig, got) = (ckpt.get(name).unwrap(), deq.get(name).unwrap());
        for r in 0..orig.rows() {
            let max_abs = orig.row(r).iter().fold(0.0f32, |a, &x| a.max(x.abs()));
            let half_step = max_abs / 254.0 + 1e-12;
            for (a, b) in orig.row(r).iter().zip(got.row(r)) {
                assert!((a - b).abs() <= half_step);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("chipalign-qfmt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt.calq");
        let q = sample();
        save(&q, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, q);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_bit_flip_and_truncation() {
        let data = encode(&sample());
        let mut flipped = data.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(decode(&flipped), Err(ModelError::Corrupt { .. })));
        for cut in [0, 3, 10, data.len() - 1] {
            assert!(matches!(
                decode(&data[..cut]),
                Err(ModelError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn per_tensor_checksum_names_the_damaged_tensor() {
        // Tail layout: ... codes | tcrc(8) | file-crc(8) — flip the last
        // code byte of the last tensor and refit the outer CRC.
        let mut data = encode(&sample()).to_vec();
        let idx = data.len() - 17;
        data[idx] ^= 0xFF;
        refit_file_crc(&mut data);
        match decode(&data) {
            Err(ModelError::ChecksumMismatch { tensor }) => {
                assert!(!tensor.is_empty());
            }
            other => panic!("expected per-tensor checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_bad_magic_and_version() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        refit_file_crc(&mut data);
        assert!(matches!(decode(&data), Err(ModelError::Corrupt { .. })));
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        refit_file_crc(&mut data);
        match decode(&data) {
            Err(ModelError::Corrupt { detail }) => assert!(detail.contains("version")),
            other => panic!("expected corrupt-version, got {other:?}"),
        }
    }

    #[test]
    fn f32_format_rejects_quantized_bytes() {
        // A CALQ file must not half-parse as CALT (and vice versa).
        let data = encode(&sample());
        assert!(crate::format::decode(&data).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let q = sample();
        assert_eq!(encode(&q), encode(&q));
    }
}

//! Robustness tests for the checkpoint decoder: arbitrary corruption of a
//! valid encoding must produce a clean error, never a panic or a silently
//! wrong checkpoint.

use chipalign_model::{format, ArchSpec, Checkpoint};
use chipalign_tensor::rng::Pcg32;
use proptest::prelude::*;

fn encoded() -> Vec<u8> {
    let ckpt = Checkpoint::random(&ArchSpec::tiny("fuzz"), &mut Pcg32::seed(3));
    format::encode(&ckpt).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_flips_never_panic_and_never_pass(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut data = encoded();
        let pos = ((data.len() - 1) as f64 * pos_frac) as usize;
        data[pos] ^= 1 << bit;
        // Either detected as corrupt, or the flip hit a redundant byte and
        // the checksum catches it; a clean decode of *tampered* bytes is
        // only acceptable if the flip was a no-op (impossible for XOR).
        prop_assert!(format::decode(&data).is_err());
    }

    #[test]
    fn truncations_never_panic(cut_frac in 0.0f64..1.0) {
        let data = encoded();
        let cut = ((data.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(format::decode(&data[..cut]).is_err());
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(format::decode(&bytes).is_err());
    }

    #[test]
    fn appended_junk_is_detected(junk in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut data = encoded();
        data.extend(junk);
        prop_assert!(format::decode(&data).is_err());
    }
}

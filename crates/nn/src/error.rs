use std::error::Error;
use std::fmt;

use chipalign_model::ModelError;
use chipalign_tensor::TensorError;

/// Errors produced by the neural-network substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor operation failed (shape mismatch in a projection, etc.).
    Tensor(TensorError),
    /// A checkpoint conversion failed.
    Model(ModelError),
    /// The input token sequence is unusable (empty, or longer than the
    /// architecture's maximum sequence length).
    BadSequence {
        /// What was wrong with it.
        detail: String,
    },
    /// A token id is outside the vocabulary.
    BadToken {
        /// The offending id.
        id: u32,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A training or generation hyperparameter is invalid.
    BadConfig {
        /// Which parameter and why.
        detail: String,
    },
    /// The KV block pool is at capacity: the allocation that would have
    /// backed the next cached position cannot be granted. Transient — a
    /// retry after other sessions release blocks can succeed, which is why
    /// the serving layer maps this to its overload (back-off) error class.
    PoolExhausted {
        /// Blocks alive when the allocation was refused.
        in_use: usize,
        /// The pool's capacity in blocks.
        capacity: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Model(e) => write!(f, "model error: {e}"),
            NnError::BadSequence { detail } => write!(f, "bad input sequence: {detail}"),
            NnError::BadToken { id, vocab } => {
                write!(f, "token id {id} outside vocabulary of size {vocab}")
            }
            NnError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            NnError::PoolExhausted { in_use, capacity } => {
                write!(f, "kv pool exhausted: {in_use} of {capacity} blocks in use")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<ModelError> for NnError {
    fn from(e: ModelError) -> Self {
        NnError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NnError::BadToken { id: 200, vocab: 99 }
            .to_string()
            .contains("200"));
        assert!(NnError::BadSequence {
            detail: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(NnError::BadConfig {
            detail: "lr".into()
        }
        .to_string()
        .contains("lr"));
        let pool = NnError::PoolExhausted {
            in_use: 64,
            capacity: 64,
        }
        .to_string();
        assert!(pool.contains("64"));
        assert!(pool.contains("exhausted"));
    }

    #[test]
    fn sources_preserved() {
        let e: NnError = TensorError::Empty { op: "x" }.into();
        assert!(e.source().is_some());
    }
}

//! Decoding: greedy and temperature sampling with top-k truncation.
//!
//! The paper evaluates all models at temperature 0 for reproducibility; the
//! same convention applies here (`temperature = 0` selects exact greedy
//! argmax decoding). When the context fills up, the window slides left so
//! generation can continue past `max_seq_len`.

use std::sync::Arc;

use chipalign_tensor::ops;
use chipalign_tensor::rng::Pcg32;

use crate::kv::KvCache;
use crate::model::TinyLm;
use crate::tokenizer::{CharTokenizer, EOS};
use crate::NnError;

/// Decoding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateConfig {
    /// Maximum number of new tokens to produce.
    pub max_new_tokens: usize,
    /// Softmax temperature; `0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens before sampling
    /// (`0` disables truncation). Ignored when greedy.
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest probability mass `>= top_p`
    /// (`1.0` disables truncation). Applied after `top_k`; ignored when
    /// greedy.
    pub top_p: f32,
    /// Stop as soon as `<eos>` is produced.
    pub stop_at_eos: bool,
    /// Sampling seed (ignored when greedy).
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            max_new_tokens: 64,
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            stop_at_eos: true,
            seed: 0,
        }
    }
}

impl GenerateConfig {
    /// Checks every hyperparameter for values that would silently corrupt
    /// decoding (NaN temperatures propagate through softmax, `top_p <= 0`
    /// empties the nucleus, a zero token budget produces nothing).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `max_new_tokens == 0`, if
    /// `temperature` is NaN/infinite/negative, or if `top_p` lies outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.max_new_tokens == 0 {
            return Err(NnError::BadConfig {
                detail: "max_new_tokens must be at least 1".into(),
            });
        }
        if !self.temperature.is_finite() || self.temperature < 0.0 {
            return Err(NnError::BadConfig {
                detail: format!(
                    "temperature must be finite and non-negative, got {}",
                    self.temperature
                ),
            });
        }
        if !self.top_p.is_finite() || self.top_p <= 0.0 || self.top_p > 1.0 {
            return Err(NnError::BadConfig {
                detail: format!("top_p must lie in (0, 1], got {}", self.top_p),
            });
        }
        Ok(())
    }
}

/// An incremental decoding session: one new token per [`StepDecoder::step`].
///
/// This is the engine behind [`generate`] and the unit a serving scheduler
/// multiplexes: each session owns its [`crate::KvCache`], so many sessions
/// can be interleaved step-by-step (continuous batching) while producing
/// outputs byte-identical to a dedicated single-threaded `generate()` loop
/// — same sampling RNG stream, same context-window slide points.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
///
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::generate::{GenerateConfig, StepDecoder};
/// use chipalign_nn::TinyLm;
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("step");
/// arch.vocab_size = 99;
/// let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1))?);
/// let cfg = GenerateConfig { max_new_tokens: 4, ..GenerateConfig::default() };
/// let mut session = StepDecoder::new(&model, &[5, 6, 7], &cfg)?;
/// let mut out = Vec::new();
/// while let Some(tok) = session.step()? {
///     out.push(tok);
/// }
/// assert!(session.is_done());
/// assert!(out.len() <= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StepDecoder {
    cfg: GenerateConfig,
    rng: Pcg32,
    max_ctx: usize,
    context: Vec<u32>,
    cache: crate::kv::KvCache,
    last_logits: Vec<f32>,
    /// Next `context` index awaiting prefill. The session is mid-prefill
    /// (initial prompt or a deferred window-slide replay) while
    /// `prefill_next < prefill_end`; `step()` completes the remainder
    /// before choosing a token, and schedulers may drain it earlier in
    /// bounded chunks via [`StepDecoder::prefill_pending`].
    prefill_next: usize,
    /// One past the last `context` index scheduled for prefill.
    prefill_end: usize,
    emitted: usize,
    done: bool,
    saw_eos: bool,
}

impl StepDecoder {
    /// Prefills the prompt and readies the session for stepping.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an invalid configuration (see
    /// [`GenerateConfig::validate`]), [`NnError::BadSequence`] for an empty
    /// prompt, and forwards any forward-pass failure.
    pub fn new(model: &Arc<TinyLm>, prompt: &[u32], cfg: &GenerateConfig) -> Result<Self, NnError> {
        let mut session = Self::new_chunked(model, prompt, cfg)?;
        session.prefill_pending(usize::MAX)?;
        Ok(session)
    }

    /// Readies a session *without* prefilling: the prompt window is only
    /// scheduled, and the caller drains it through
    /// [`StepDecoder::prefill_pending`] (in chunks of its choosing) — or
    /// lets the first [`StepDecoder::step`] finish it. Transcripts are
    /// bit-identical to [`StepDecoder::new`] regardless of how the prefill
    /// is chunked; the serving scheduler relies on this to interleave
    /// long-prompt prefill with other sessions' decode slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an invalid configuration and
    /// [`NnError::BadSequence`] for an empty prompt.
    pub fn new_chunked(
        model: &Arc<TinyLm>,
        prompt: &[u32],
        cfg: &GenerateConfig,
    ) -> Result<Self, NnError> {
        cfg.validate()?;
        if prompt.is_empty() {
            return Err(NnError::BadSequence {
                detail: "generation requires a non-empty prompt".into(),
            });
        }
        let max_ctx = model.arch().max_seq_len;
        let context: Vec<u32> = prompt.to_vec();
        // Schedule the most recent window for prefill, leaving one slot
        // for the first generated token.
        let start = context.len().saturating_sub(max_ctx.saturating_sub(1));
        let end = context.len();
        Ok(StepDecoder {
            cfg: *cfg,
            rng: Pcg32::seed(cfg.seed),
            max_ctx,
            context,
            cache: KvCache::new(model),
            last_logits: Vec::new(),
            prefill_next: start,
            prefill_end: end,
            emitted: 0,
            done: false,
            saw_eos: false,
        })
    }

    /// Like [`StepDecoder::new_chunked`], but the session's KV rows live
    /// in blocks drawn from `pool` (see [`crate::kvpool::KvPool`]):
    /// allocation is incremental and bounded, and a prefix adopted via
    /// [`StepDecoder::adopt_prefix`] from a paged donor aliases blocks
    /// instead of copying rows. Transcripts are bit-identical to the
    /// contiguous constructors — storage layout never changes an output
    /// byte (pinned by equivalence tests).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an invalid configuration and
    /// [`NnError::BadSequence`] for an empty prompt. Pool exhaustion
    /// surfaces later, from the prefill/step that needs the unavailable
    /// block.
    pub fn new_chunked_pooled(
        model: &Arc<TinyLm>,
        prompt: &[u32],
        cfg: &GenerateConfig,
        pool: &Arc<crate::kvpool::KvPool>,
    ) -> Result<Self, NnError> {
        let mut session = Self::new_chunked(model, prompt, cfg)?;
        session.cache = KvCache::new_paged(model, pool);
        Ok(session)
    }

    /// Whether the session still has prompt (or slide-replay) tokens to
    /// prefill before it can choose its next token.
    #[must_use]
    pub fn is_prefilling(&self) -> bool {
        self.prefill_next < self.prefill_end
    }

    /// Number of tokens still awaiting prefill.
    #[must_use]
    pub fn prefill_remaining(&self) -> usize {
        self.prefill_end - self.prefill_next
    }

    /// The tokens still awaiting prefill (for a fresh session, the whole
    /// prompt window — what a prefix cache should be probed with).
    #[must_use]
    pub fn pending_prefill(&self) -> &[u32] {
        &self.context[self.prefill_next..self.prefill_end]
    }

    /// The session's KV cache (read-only; lets a serving layer snapshot a
    /// freshly prefilled prompt via [`KvCache::fork_from`]).
    #[must_use]
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Feeds up to `max_tokens` pending prefill tokens through the cache,
    /// returning how many were fed (0 when nothing is pending). Any
    /// chunking schedule yields logits bit-identical to a one-shot
    /// prefill, so callers may freely mix chunk sizes across calls.
    ///
    /// # Errors
    ///
    /// Forwards forward-pass failures; the cursor only advances past
    /// successfully processed tokens.
    pub fn prefill_pending(&mut self, max_tokens: usize) -> Result<usize, NnError> {
        let take = self.prefill_remaining().min(max_tokens);
        if take == 0 {
            return Ok(0);
        }
        let chunk_end = self.prefill_next + take;
        self.last_logits = self
            .cache
            .prefill_chunk(&self.context[self.prefill_next..chunk_end])?;
        self.prefill_next = chunk_end;
        Ok(take)
    }

    /// Seeds a fresh session with an already-prefilled prompt prefix
    /// (typically a [`KvCache::fork_from`] clone handed out by a prefix
    /// cache), skipping that many prefill tokens. Returns the number of
    /// positions adopted. Decoding continues bit-identically to a session
    /// that prefilled the prefix itself.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the session has already prefilled
    /// or emitted anything, or if the prefix is bound to a different model
    /// allocation; [`NnError::BadSequence`] if the prefix is empty, covers
    /// the whole pending window (at least one token must remain to produce
    /// the first logits), or its token history does not match the window.
    pub fn adopt_prefix(&mut self, prefix: KvCache) -> Result<usize, NnError> {
        if self.emitted != 0 || !self.cache.is_empty() {
            return Err(NnError::BadConfig {
                detail: "adopt_prefix requires a fresh, un-prefilled session".into(),
            });
        }
        if !Arc::ptr_eq(prefix.model(), self.cache.model()) {
            return Err(NnError::BadConfig {
                detail: "adopt_prefix: prefix is bound to a different model allocation".into(),
            });
        }
        let p = prefix.len();
        if p == 0 || p >= self.prefill_remaining() {
            return Err(NnError::BadSequence {
                detail: format!(
                    "adopt_prefix: prefix of {p} positions must cover [1, {}) of the window",
                    self.prefill_remaining()
                ),
            });
        }
        if prefix.tokens() != &self.context[self.prefill_next..self.prefill_next + p] {
            return Err(NnError::BadSequence {
                detail: "adopt_prefix: prefix token history does not match the prompt".into(),
            });
        }
        self.cache = prefix;
        self.prefill_next += p;
        Ok(p)
    }

    /// Produces the next token, or `None` once the session has finished
    /// (token budget exhausted, or `<eos>` with `stop_at_eos`).
    ///
    /// # Errors
    ///
    /// Forwards forward-pass failures from the underlying cache.
    pub fn step(&mut self) -> Result<Option<u32>, NnError> {
        if self.done {
            return Ok(None);
        }
        // Finish any pending prefill (initial prompt remainder or a
        // deferred window-slide replay) before choosing a token.
        self.prefill_pending(usize::MAX)?;
        let next = self.choose_next();
        self.commit(next);
        if self.done {
            return Ok(Some(next));
        }
        if self.cache.len() >= self.max_ctx {
            self.begin_slide();
        } else {
            self.last_logits = self.cache.decode_step(next)?;
        }
        Ok(Some(next))
    }

    /// Advances many sessions by one token each, returning each session's
    /// new token in submission order (`None` for sessions that were already
    /// done).
    ///
    /// This is `step()` run in lockstep: every live session first finishes
    /// any pending prefill (initial prompt remainder or a deferred
    /// window-slide replay), then chooses and commits its next token from
    /// its own logits and RNG stream; the sessions that need an ordinary
    /// decode are grouped by model allocation and advanced through
    /// [`KvCache::decode_batch`] — one `N × d` GEMM per projection instead
    /// of N matvecs. Sessions that hit a context-window boundary defer
    /// their slide: the cache resets and the window replay is scheduled as
    /// a pending chunked prefill, consumed at the next step. Token streams
    /// are **bit-identical** to stepping each session alone, pinned by
    /// tests.
    ///
    /// # Errors
    ///
    /// Forwards forward-pass failures. Like a failed `step()`, a failed
    /// batch leaves the affected sessions mid-token (chosen but not
    /// advanced); callers should treat them as poisoned and cancel.
    pub fn step_batch(sessions: &mut [&mut StepDecoder]) -> Result<Vec<Option<u32>>, NnError> {
        let mut out = vec![None; sessions.len()];
        // Phase 1: complete pending prefill, then choose and commit each
        // live session's next token — exactly the first half of `step()`,
        // so RNG streams and stop conditions stay in lockstep with
        // sequential stepping.
        let mut group_of: Vec<Option<usize>> = vec![None; sessions.len()];
        let mut group_keys: Vec<usize> = Vec::new();
        for (i, s) in sessions.iter_mut().enumerate() {
            if s.done {
                continue;
            }
            s.prefill_pending(usize::MAX)?;
            let next = s.choose_next();
            s.commit(next);
            out[i] = Some(next);
            if s.done {
                continue;
            }
            if s.cache.len() >= s.max_ctx {
                // Defer the slide replay; it runs as this session's
                // pending prefill at the start of the next step.
                s.begin_slide();
            } else {
                let key = Arc::as_ptr(s.cache.model()) as usize;
                let gid = group_keys
                    .iter()
                    .position(|&k| k == key)
                    .unwrap_or_else(|| {
                        group_keys.push(key);
                        group_keys.len() - 1
                    });
                group_of[i] = Some(gid);
            }
        }
        // Phase 2: one batched decode per model group.
        for gid in 0..group_keys.len() {
            let mut members: Vec<usize> = Vec::new();
            let mut tokens: Vec<u32> = Vec::new();
            let mut caches: Vec<&mut KvCache> = Vec::new();
            for (i, s) in sessions.iter_mut().enumerate() {
                if group_of[i] == Some(gid) {
                    members.push(i);
                    tokens.push(*s.context.last().expect("committed above"));
                    caches.push(&mut s.cache);
                }
            }
            let logits = KvCache::decode_batch(&mut caches, &tokens)?;
            drop(caches);
            for (&i, row) in members.iter().zip(logits) {
                sessions[i].last_logits = row;
            }
        }
        Ok(out)
    }

    /// Chooses the next token from the current logits (greedy argmax at
    /// temperature 0, otherwise the seeded sampling stream).
    fn choose_next(&mut self) -> u32 {
        if self.cfg.temperature <= 0.0 {
            ops::argmax(&self.last_logits).expect("vocab is non-empty") as u32
        } else {
            sample_from_logits(
                &self.last_logits,
                self.cfg.temperature,
                self.cfg.top_k,
                self.cfg.top_p,
                &mut self.rng,
            )
        }
    }

    /// Records a chosen token: context, budget, and stop-condition
    /// bookkeeping (everything `step()` does between choosing a token and
    /// advancing the cache).
    fn commit(&mut self, next: u32) {
        self.emitted += 1;
        self.context.push(next);
        if self.cfg.stop_at_eos && next == EOS {
            self.saw_eos = true;
            self.done = true;
        } else if self.emitted >= self.cfg.max_new_tokens {
            self.done = true;
        }
    }

    /// Context-window slide, deferred: resets the *existing* cache and
    /// schedules the most recent window as pending prefill, replayed (in
    /// whatever chunks the caller chooses) before the next token is
    /// chosen. `reset()` keeps the per-layer bucket allocations, the score
    /// scratch, and the shared model `Arc`, so a slide allocates no model
    /// state — it is pure bookkeeping; the window replay happens through
    /// [`StepDecoder::prefill_pending`] like any other prefill.
    fn begin_slide(&mut self) {
        let start = self.context.len() - (self.max_ctx - 1);
        self.cache.reset();
        self.prefill_next = start;
        self.prefill_end = self.context.len();
    }

    /// Whether the session has produced its final token.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the session ended by emitting `<eos>` (as opposed to
    /// exhausting its token budget).
    #[must_use]
    pub fn stopped_at_eos(&self) -> bool {
        self.saw_eos
    }

    /// Number of new tokens emitted so far.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The full context (prompt plus generated tokens).
    #[must_use]
    pub fn context(&self) -> &[u32] {
        &self.context
    }

    /// Whether this session decodes greedily (temperature 0). Speculative
    /// decoding only engages on greedy sessions — sampled sessions consume
    /// an RNG stream that a multi-token round cannot keep in lockstep.
    #[must_use]
    pub fn is_greedy(&self) -> bool {
        self.cfg.temperature <= 0.0
    }

    // --- speculative-decoding hooks (crate-private) -----------------------
    //
    // `crate::spec::SpecDecoder` drives a round as: choose + commit the
    // target's own next token, verify a drafted chunk against the cache,
    // commit the agreeing prefix, rewind, and restore `last_logits` from
    // the verified row. These accessors expose exactly the private state a
    // round needs while keeping the public `StepDecoder` surface unchanged.

    /// Chooses the next token from `last_logits` (see `choose_next`).
    pub(crate) fn spec_choose_next(&mut self) -> u32 {
        self.choose_next()
    }

    /// Commits a chosen token (context/budget/EOS bookkeeping only).
    pub(crate) fn spec_commit(&mut self, next: u32) {
        self.commit(next);
    }

    /// Mutable cache access for verify/rewind.
    pub(crate) fn spec_cache_mut(&mut self) -> &mut KvCache {
        &mut self.cache
    }

    /// Replaces the pending logits with a row from a verified chunk.
    pub(crate) fn spec_set_last_logits(&mut self, logits: Vec<f32>) {
        self.last_logits = logits;
    }

    /// Defers a context-window slide (see `begin_slide`).
    pub(crate) fn spec_begin_slide(&mut self) {
        self.begin_slide();
    }

    /// The context-window size this session slides at.
    pub(crate) fn spec_max_ctx(&self) -> usize {
        self.max_ctx
    }

    /// Tokens the budget still allows after those already emitted.
    pub(crate) fn spec_budget_left(&self) -> usize {
        self.cfg.max_new_tokens.saturating_sub(self.emitted)
    }
}

/// Generates new tokens after `prompt`, returning only the new tokens.
///
/// Implemented as a [`StepDecoder`] driven to completion, so batch-of-one
/// generation and scheduler-interleaved serving share one decoding path.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for an invalid configuration,
/// [`NnError::BadSequence`] for an empty prompt, and forwards any
/// forward-pass failure.
pub fn generate(model: &TinyLm, prompt: &[u32], cfg: &GenerateConfig) -> Result<Vec<u32>, NnError> {
    // One-shot sessions wrap the model in a fresh Arc; this clone is the
    // same cost the KvCache used to pay per session before weights were
    // shared.
    let model = Arc::new(model.clone());
    let mut session = StepDecoder::new(&model, prompt, cfg)?;
    let mut new_tokens = Vec::with_capacity(cfg.max_new_tokens);
    while let Some(next) = session.step()? {
        new_tokens.push(next);
    }
    Ok(new_tokens)
}

/// Convenience wrapper: encode a text prompt, generate, and decode.
///
/// # Errors
///
/// Same contract as [`generate`].
pub fn complete_text(
    model: &TinyLm,
    tokenizer: &CharTokenizer,
    prompt: &str,
    cfg: &GenerateConfig,
) -> Result<String, NnError> {
    let ids = tokenizer.encode(prompt);
    let new = generate(model, &ids, cfg)?;
    Ok(tokenizer.decode(&new))
}

/// Temperature + top-k + nucleus (top-p) sampling from one logit row.
///
/// Top-k keeps *exactly* `top_k` survivors even when logits tie at the k-th
/// threshold: strictly-greater entries always survive, and ties at the
/// threshold are kept in stable index order until the quota is filled.
/// (Earlier releases spared every tie, so tied-threshold rows sampled from
/// more than `top_k` tokens; sampled transcripts that hit such a tie can
/// differ from pre-fix output. Greedy decoding never calls this path, so
/// greedy transcripts are unaffected.)
fn sample_from_logits(
    logits: &[f32],
    temperature: f32,
    top_k: usize,
    top_p: f32,
    rng: &mut Pcg32,
) -> u32 {
    let mut scaled: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
    if top_k > 0 && top_k < scaled.len() {
        // Zero out everything below the k-th largest logit, and all but the
        // first `top_k - |strictly above|` entries tied with it.
        let mut sorted = scaled.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let threshold = sorted[top_k - 1];
        let above = scaled.iter().filter(|v| **v > threshold).count();
        let mut tie_budget = top_k - above;
        for v in &mut scaled {
            if *v > threshold {
                continue;
            }
            if *v == threshold && tie_budget > 0 {
                tie_budget -= 1;
                continue;
            }
            *v = f32::NEG_INFINITY;
        }
    }
    ops::softmax_inplace(&mut scaled);
    if top_p < 1.0 {
        // Nucleus: keep the smallest set of tokens whose mass reaches
        // top_p, then renormalise (choose_weighted renormalises for us).
        let mut order: Vec<usize> = (0..scaled.len()).collect();
        order.sort_by(|&a, &b| scaled[b].total_cmp(&scaled[a]));
        let mut mass = 0.0f32;
        let mut keep = scaled.len();
        for (rank, &idx) in order.iter().enumerate() {
            mass += scaled[idx];
            if mass >= top_p.max(0.0) {
                keep = rank + 1;
                break;
            }
        }
        for &idx in &order[keep..] {
            scaled[idx] = 0.0;
        }
    }
    rng.choose_weighted(&scaled) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, Example, TrainConfig};
    use crate::AdamConfig;
    use chipalign_model::ArchSpec;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("gen");
        a.vocab_size = 99;
        a
    }

    fn trained_on(seq: &[u32]) -> TinyLm {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(31)).expect("valid");
        let data = vec![Example::pretrain(seq.to_vec())];
        let cfg = TrainConfig {
            steps: 80,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 4,
        };
        train(&mut model, &data, &cfg).expect("ok");
        model
    }

    #[test]
    fn greedy_continues_memorized_sequence() {
        let seq: Vec<u32> = vec![10, 20, 30, 40, 50, 60];
        let model = trained_on(&seq);
        let cfg = GenerateConfig {
            max_new_tokens: 4,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &seq[..2], &cfg).expect("ok");
        assert_eq!(&out[..2], &seq[2..4], "greedy decode should continue");
    }

    #[test]
    fn greedy_is_deterministic() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 8,
            ..GenerateConfig::default()
        };
        let a = generate(&model, &[5, 6], &cfg).expect("ok");
        let b = generate(&model, &[5, 6], &cfg).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_respects_seed() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let mk = |seed| GenerateConfig {
            max_new_tokens: 16,
            temperature: 1.5,
            top_k: 0,
            top_p: 1.0,
            stop_at_eos: false,
            seed,
        };
        let a = generate(&model, &[5, 6], &mk(1)).expect("ok");
        let a2 = generate(&model, &[5, 6], &mk(1)).expect("ok");
        let b = generate(&model, &[5, 6], &mk(2)).expect("ok");
        assert_eq!(a, a2, "same seed must reproduce");
        assert_ne!(a, b, "hot sampling with different seeds should diverge");
    }

    #[test]
    fn generation_survives_context_overflow() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 64, // arch max_seq_len is 32
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &[5, 6], &cfg).expect("ok");
        assert_eq!(out.len(), 64, "sliding window must allow long outputs");
    }

    #[test]
    fn empty_prompt_rejected() {
        let model = trained_on(&[5, 6, 7]);
        assert!(generate(&model, &[], &GenerateConfig::default()).is_err());
    }

    #[test]
    fn top_k_limits_support() {
        // With top_k = 1, sampling must equal greedy regardless of
        // temperature.
        let model = trained_on(&[10, 20, 30, 40, 50, 60]);
        let greedy = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                ..GenerateConfig::default()
            },
        )
        .expect("ok");
        let topk1 = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                temperature: 2.0,
                top_k: 1,
                top_p: 1.0,
                stop_at_eos: true,
                seed: 9,
            },
        )
        .expect("ok");
        assert_eq!(greedy, topk1);
    }

    #[test]
    fn top_p_near_zero_equals_greedy() {
        // With a vanishing nucleus only the argmax token survives.
        let model = trained_on(&[10, 20, 30, 40, 50, 60]);
        let greedy = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                ..GenerateConfig::default()
            },
        )
        .expect("ok");
        let nucleus = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                temperature: 1.5,
                top_k: 0,
                top_p: 1e-6,
                stop_at_eos: true,
                seed: 4,
            },
        )
        .expect("ok");
        assert_eq!(greedy, nucleus);
    }

    #[test]
    fn config_validation_rejects_each_bad_field() {
        let ok = GenerateConfig::default();
        assert!(ok.validate().is_ok());

        let zero_budget = GenerateConfig {
            max_new_tokens: 0,
            ..ok
        };
        assert!(matches!(
            zero_budget.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let nan_temp = GenerateConfig {
            temperature: f32::NAN,
            ..ok
        };
        assert!(matches!(
            nan_temp.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let neg_temp = GenerateConfig {
            temperature: -0.5,
            ..ok
        };
        assert!(matches!(
            neg_temp.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let inf_temp = GenerateConfig {
            temperature: f32::INFINITY,
            ..ok
        };
        assert!(matches!(
            inf_temp.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let zero_top_p = GenerateConfig { top_p: 0.0, ..ok };
        assert!(matches!(
            zero_top_p.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let big_top_p = GenerateConfig { top_p: 1.5, ..ok };
        assert!(matches!(
            big_top_p.validate(),
            Err(NnError::BadConfig { .. })
        ));

        let nan_top_p = GenerateConfig {
            top_p: f32::NAN,
            ..ok
        };
        assert!(matches!(
            nan_top_p.validate(),
            Err(NnError::BadConfig { .. })
        ));
    }

    #[test]
    fn generate_refuses_invalid_config() {
        let model = trained_on(&[5, 6, 7]);
        let bad = GenerateConfig {
            max_new_tokens: 0,
            ..GenerateConfig::default()
        };
        assert!(matches!(
            generate(&model, &[5, 6], &bad),
            Err(NnError::BadConfig { .. })
        ));
    }

    #[test]
    fn step_decoder_matches_generate_greedy_with_window_slide() {
        // 64 new tokens on a 32-position context exercises the slide
        // re-prefill path in both drivers.
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 64,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let reference = generate(&model, &[5, 6], &cfg).expect("ok");
        let model = Arc::new(model);
        let mut session = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let mut stepped = Vec::new();
        while let Some(tok) = session.step().expect("ok") {
            stepped.push(tok);
        }
        assert_eq!(reference, stepped);
        assert_eq!(session.emitted(), 64);
        assert!(session.is_done());
        assert!(!session.stopped_at_eos());
        assert!(session.step().expect("ok").is_none(), "done stays done");
    }

    #[test]
    fn step_decoder_matches_generate_when_sampling() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 20,
            temperature: 1.2,
            top_k: 8,
            top_p: 0.9,
            stop_at_eos: false,
            seed: 13,
        };
        let reference = generate(&model, &[5, 6], &cfg).expect("ok");
        let model = Arc::new(model);
        let mut session = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let mut stepped = Vec::new();
        while let Some(tok) = session.step().expect("ok") {
            stepped.push(tok);
        }
        assert_eq!(reference, stepped, "RNG streams must stay in lockstep");
    }

    #[test]
    fn step_decoder_tracks_context_and_truncates_long_prompts() {
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        // Prompt longer than max_seq_len (32): prefill must keep only the
        // most recent window yet remember the full context.
        let prompt: Vec<u32> = (0..40).map(|i| 4 + (i % 90)).collect();
        let cfg = GenerateConfig {
            max_new_tokens: 2,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let mut session = StepDecoder::new(&model, &prompt, &cfg).expect("ok");
        session.step().expect("ok");
        assert_eq!(session.context().len(), prompt.len() + 1);
        assert_eq!(&session.context()[..prompt.len()], &prompt[..]);
    }

    #[test]
    fn chunked_prefill_transcripts_match_one_shot_across_chunk_sizes() {
        // 64 new tokens on a 32-position window also exercises deferred
        // slides, whose replay goes through the same pending-prefill path.
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let cfg = GenerateConfig {
            max_new_tokens: 64,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let prompt: Vec<u32> = (0..20).map(|i| 4 + (i * 3) % 90).collect();
        let mut reference = StepDecoder::new(&model, &prompt, &cfg).expect("ok");
        let mut expected = Vec::new();
        while let Some(tok) = reference.step().expect("ok") {
            expected.push(tok);
        }
        for chunk in [1usize, 3, 7] {
            let mut session = StepDecoder::new_chunked(&model, &prompt, &cfg).expect("ok");
            assert!(session.is_prefilling());
            assert_eq!(session.prefill_remaining(), prompt.len());
            assert_eq!(session.pending_prefill(), &prompt[..]);
            while session.is_prefilling() {
                let fed = session.prefill_pending(chunk).expect("ok");
                assert!(fed >= 1 && fed <= chunk);
            }
            assert_eq!(session.prefill_pending(chunk).expect("ok"), 0);
            let mut out = Vec::new();
            while let Some(tok) = session.step().expect("ok") {
                out.push(tok);
            }
            assert_eq!(out, expected, "chunk size {chunk} drifted");
        }
        // Not draining manually at all is also fine: step() finishes it.
        let mut lazy = StepDecoder::new_chunked(&model, &prompt, &cfg).expect("ok");
        let mut out = Vec::new();
        while let Some(tok) = lazy.step().expect("ok") {
            out.push(tok);
        }
        assert_eq!(out, expected);
    }

    #[test]
    fn adopted_prefix_transcript_matches_cold_prefill() {
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let cfg = GenerateConfig {
            max_new_tokens: 12,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let prompt: Vec<u32> = (0..10).map(|i| 4 + (i * 5) % 90).collect();
        let mut reference = StepDecoder::new(&model, &prompt, &cfg).expect("ok");
        let mut expected = Vec::new();
        while let Some(tok) = reference.step().expect("ok") {
            expected.push(tok);
        }
        // Donate a prefix prefilled by an unrelated session.
        let mut donor = KvCache::new(&model);
        donor.prefill(&prompt).expect("ok");
        for p in [1usize, 4, 9] {
            let mut session = StepDecoder::new_chunked(&model, &prompt, &cfg).expect("ok");
            let adopted = session
                .adopt_prefix(donor.fork_from(p).expect("ok"))
                .expect("ok");
            assert_eq!(adopted, p);
            assert_eq!(session.prefill_remaining(), prompt.len() - p);
            let mut out = Vec::new();
            while let Some(tok) = session.step().expect("ok") {
                out.push(tok);
            }
            assert_eq!(out, expected, "prefix of {p} positions drifted");
        }
    }

    #[test]
    fn adopt_prefix_rejects_mismatches() {
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let cfg = GenerateConfig {
            max_new_tokens: 4,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let prompt = [5u32, 6, 7, 8];
        let mut donor = KvCache::new(&model);
        donor.prefill(&prompt).expect("ok");

        // Prefix must leave at least one pending token.
        let mut fresh = StepDecoder::new_chunked(&model, &prompt, &cfg).expect("ok");
        assert!(matches!(
            fresh.adopt_prefix(donor.fork_from(4).expect("ok")),
            Err(NnError::BadSequence { .. })
        ));
        // Empty prefix is useless.
        assert!(matches!(
            fresh.adopt_prefix(donor.fork_from(0).expect("ok")),
            Err(NnError::BadSequence { .. })
        ));
        // Token mismatch: donor prefilled a different prompt.
        let mut other = KvCache::new(&model);
        other.prefill(&[9, 9]).expect("ok");
        assert!(matches!(
            fresh.adopt_prefix(other.fork_from(2).expect("ok")),
            Err(NnError::BadSequence { .. })
        ));
        // Different model allocation.
        let other_model = Arc::new(trained_on(&[10, 20, 30]));
        let mut foreign = KvCache::new(&other_model);
        foreign.prefill(&prompt[..2]).expect("ok");
        assert!(matches!(
            fresh.adopt_prefix(foreign.fork_from(2).expect("ok")),
            Err(NnError::BadConfig { .. })
        ));
        // A session that already prefilled (or emitted) refuses adoption.
        let mut started = StepDecoder::new(&model, &prompt, &cfg).expect("ok");
        assert!(matches!(
            started.adopt_prefix(donor.fork_from(2).expect("ok")),
            Err(NnError::BadConfig { .. })
        ));
        // All rejections left the fresh session intact: it still decodes
        // identically to a cold one.
        let mut out = Vec::new();
        while let Some(tok) = fresh.step().expect("ok") {
            out.push(tok);
        }
        let mut cold = StepDecoder::new(&model, &prompt, &cfg).expect("ok");
        let mut expected = Vec::new();
        while let Some(tok) = cold.step().expect("ok") {
            expected.push(tok);
        }
        assert_eq!(out, expected);
    }

    /// Drives `sessions` to completion with `step_batch`, collecting each
    /// session's token stream.
    fn drain_batched(mut sessions: Vec<StepDecoder>) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = vec![Vec::new(); sessions.len()];
        loop {
            let mut refs: Vec<&mut StepDecoder> = sessions.iter_mut().collect();
            let step = StepDecoder::step_batch(&mut refs).expect("ok");
            let mut any = false;
            for (out, tok) in outs.iter_mut().zip(step) {
                if let Some(tok) = tok {
                    out.push(tok);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        outs
    }

    fn drain_sequential(
        model: &Arc<TinyLm>,
        prompts: &[&[u32]],
        cfg: &GenerateConfig,
    ) -> Vec<Vec<u32>> {
        prompts
            .iter()
            .map(|p| {
                let mut s = StepDecoder::new(model, p, cfg).expect("ok");
                let mut out = Vec::new();
                while let Some(tok) = s.step().expect("ok") {
                    out.push(tok);
                }
                out
            })
            .collect()
    }

    #[test]
    fn step_batch_matches_sequential_greedy_with_window_slides() {
        // 64 new tokens on a 32-position context: every session slides
        // twice mid-batch, at different rounds (ragged prompt lengths).
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let cfg = GenerateConfig {
            max_new_tokens: 64,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let prompts: [&[u32]; 4] = [&[5, 6], &[5, 6, 7], &[9, 8, 7, 6], &[5]];
        let reference = drain_sequential(&model, &prompts, &cfg);
        let sessions: Vec<StepDecoder> = prompts
            .iter()
            .map(|p| StepDecoder::new(&model, p, &cfg).expect("ok"))
            .collect();
        let batched = drain_batched(sessions);
        assert_eq!(batched, reference, "batched greedy transcripts drifted");
    }

    #[test]
    fn step_batch_matches_sequential_when_sampling() {
        // Sampling is the sharpest bit-identity probe: any drift in the
        // logits flips `choose_weighted` and the transcripts diverge.
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let mk = |seed| GenerateConfig {
            max_new_tokens: 20,
            temperature: 1.2,
            top_k: 8,
            top_p: 0.9,
            stop_at_eos: false,
            seed,
        };
        let prompts: [&[u32]; 3] = [&[5, 6], &[6, 7, 8], &[9, 5]];
        let reference: Vec<Vec<u32>> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut s = StepDecoder::new(&model, p, &mk(i as u64)).expect("ok");
                let mut out = Vec::new();
                while let Some(tok) = s.step().expect("ok") {
                    out.push(tok);
                }
                out
            })
            .collect();
        let sessions: Vec<StepDecoder> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| StepDecoder::new(&model, p, &mk(i as u64)).expect("ok"))
            .collect();
        let batched = drain_batched(sessions);
        assert_eq!(batched, reference, "per-session RNG streams drifted");
    }

    #[test]
    fn step_batch_groups_sessions_by_model_allocation() {
        // Two distinct models interleaved in one batch: step_batch must
        // split them into per-model GEMM groups and still match the
        // dedicated per-session drivers.
        let m1 = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let m2 = Arc::new(trained_on(&[10, 20, 30, 40, 50, 60]));
        let cfg = GenerateConfig {
            max_new_tokens: 12,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let plan: [(&Arc<TinyLm>, &[u32]); 4] = [
            (&m1, &[5, 6]),
            (&m2, &[10, 20]),
            (&m1, &[6, 7]),
            (&m2, &[20, 30]),
        ];
        let reference: Vec<Vec<u32>> = plan
            .iter()
            .map(|(m, p)| {
                let mut s = StepDecoder::new(m, p, &cfg).expect("ok");
                let mut out = Vec::new();
                while let Some(tok) = s.step().expect("ok") {
                    out.push(tok);
                }
                out
            })
            .collect();
        let sessions: Vec<StepDecoder> = plan
            .iter()
            .map(|(m, p)| StepDecoder::new(m, p, &cfg).expect("ok"))
            .collect();
        let batched = drain_batched(sessions);
        assert_eq!(batched, reference, "mixed-model batch drifted");
    }

    #[test]
    fn step_batch_skips_finished_sessions() {
        let model = Arc::new(trained_on(&[5, 6, 7, 8, 9]));
        let short = GenerateConfig {
            max_new_tokens: 2,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let long = GenerateConfig {
            max_new_tokens: 6,
            ..short
        };
        let mut a = StepDecoder::new(&model, &[5, 6], &short).expect("ok");
        let mut b = StepDecoder::new(&model, &[6, 7], &long).expect("ok");
        for round in 0..6 {
            let mut refs = [&mut a, &mut b];
            let step = StepDecoder::step_batch(&mut refs).expect("ok");
            if round >= 2 {
                assert!(step[0].is_none(), "finished session must yield None");
            }
            if round < 6 {
                assert!(step[1].is_some());
            }
        }
        assert!(a.is_done() && b.is_done());
        assert_eq!(a.emitted(), 2);
        assert_eq!(b.emitted(), 6);
    }

    #[test]
    fn top_k_keeps_exactly_k_survivors_on_threshold_ties() {
        // Three logits tie at the k-th threshold; only the first tie (in
        // index order) may survive alongside the strictly-greater entry.
        let logits = [2.0f32, 1.0, 1.0, 1.0, 0.0];
        let mut rng = Pcg32::seed(42);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            let idx = sample_from_logits(&logits, 1.0, 2, 1.0, &mut rng) as usize;
            seen[idx] = true;
        }
        assert!(seen[0] && seen[1], "both survivors should be sampled");
        assert!(
            !seen[2] && !seen[3] && !seen[4],
            "ties beyond the top_k quota must be truncated, got {seen:?}"
        );

        // All-equal logits: survivors are the first top_k indices.
        let flat = [1.0f32; 4];
        let mut rng = Pcg32::seed(43);
        let mut seen = [false; 4];
        for _ in 0..2000 {
            seen[sample_from_logits(&flat, 1.0, 2, 1.0, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, false, false]);
    }

    #[test]
    fn complete_text_round_trip() {
        let tok = CharTokenizer::new();
        let model = trained_on(&tok.encode("abcabcabc"));
        let cfg = GenerateConfig {
            max_new_tokens: 3,
            ..GenerateConfig::default()
        };
        let out = complete_text(&model, &tok, "abcabc", &cfg).expect("ok");
        assert_eq!(out.len(), 3, "three new characters expected, got {out:?}");
    }
}

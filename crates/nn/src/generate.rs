//! Decoding: greedy and temperature sampling with top-k truncation.
//!
//! The paper evaluates all models at temperature 0 for reproducibility; the
//! same convention applies here (`temperature = 0` selects exact greedy
//! argmax decoding). When the context fills up, the window slides left so
//! generation can continue past `max_seq_len`.

use chipalign_tensor::ops;
use chipalign_tensor::rng::Pcg32;

use crate::model::TinyLm;
use crate::tokenizer::{CharTokenizer, EOS};
use crate::NnError;

/// Decoding configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerateConfig {
    /// Maximum number of new tokens to produce.
    pub max_new_tokens: usize,
    /// Softmax temperature; `0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens before sampling
    /// (`0` disables truncation). Ignored when greedy.
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest probability mass `>= top_p`
    /// (`1.0` disables truncation). Applied after `top_k`; ignored when
    /// greedy.
    pub top_p: f32,
    /// Stop as soon as `<eos>` is produced.
    pub stop_at_eos: bool,
    /// Sampling seed (ignored when greedy).
    pub seed: u64,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            max_new_tokens: 64,
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            stop_at_eos: true,
            seed: 0,
        }
    }
}

/// Generates new tokens after `prompt`, returning only the new tokens.
///
/// # Errors
///
/// Returns [`NnError::BadSequence`] for an empty prompt and forwards any
/// forward-pass failure.
pub fn generate(
    model: &TinyLm,
    prompt: &[u32],
    cfg: &GenerateConfig,
) -> Result<Vec<u32>, NnError> {
    if prompt.is_empty() {
        return Err(NnError::BadSequence {
            detail: "generation requires a non-empty prompt".into(),
        });
    }
    let max_ctx = model.arch().max_seq_len;
    let mut rng = Pcg32::seed(cfg.seed);
    let mut context: Vec<u32> = prompt.to_vec();
    let mut new_tokens = Vec::with_capacity(cfg.max_new_tokens);

    // Incremental decoding: prefill the window once, then one KV-cached
    // step per token. When the window fills, re-prefill on the slid
    // window (rare at benchmark prompt sizes).
    let start = context.len().saturating_sub(max_ctx.saturating_sub(1));
    let mut cache = crate::kv::KvCache::new(model);
    let mut last = cache.prefill(&context[start..])?;

    for _ in 0..cfg.max_new_tokens {
        let next = if cfg.temperature <= 0.0 {
            ops::argmax(&last).expect("vocab is non-empty") as u32
        } else {
            sample_from_logits(&last, cfg.temperature, cfg.top_k, cfg.top_p, &mut rng)
        };
        new_tokens.push(next);
        context.push(next);
        if cfg.stop_at_eos && next == EOS {
            break;
        }
        if cache.len() >= max_ctx {
            // Slide: rebuild the cache over the most recent window.
            let start = context.len() - (max_ctx - 1);
            cache = crate::kv::KvCache::new(model);
            last = cache.prefill(&context[start..])?;
        } else {
            last = cache.decode_step(next)?;
        }
    }
    Ok(new_tokens)
}

/// Convenience wrapper: encode a text prompt, generate, and decode.
///
/// # Errors
///
/// Same contract as [`generate`].
pub fn complete_text(
    model: &TinyLm,
    tokenizer: &CharTokenizer,
    prompt: &str,
    cfg: &GenerateConfig,
) -> Result<String, NnError> {
    let ids = tokenizer.encode(prompt);
    let new = generate(model, &ids, cfg)?;
    Ok(tokenizer.decode(&new))
}

/// Temperature + top-k + nucleus (top-p) sampling from one logit row.
fn sample_from_logits(
    logits: &[f32],
    temperature: f32,
    top_k: usize,
    top_p: f32,
    rng: &mut Pcg32,
) -> u32 {
    let mut scaled: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
    if top_k > 0 && top_k < scaled.len() {
        // Zero out everything below the k-th largest logit.
        let mut sorted = scaled.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let threshold = sorted[top_k - 1];
        for v in &mut scaled {
            if *v < threshold {
                *v = f32::NEG_INFINITY;
            }
        }
    }
    ops::softmax_inplace(&mut scaled);
    if top_p < 1.0 {
        // Nucleus: keep the smallest set of tokens whose mass reaches
        // top_p, then renormalise (choose_weighted renormalises for us).
        let mut order: Vec<usize> = (0..scaled.len()).collect();
        order.sort_by(|&a, &b| scaled[b].total_cmp(&scaled[a]));
        let mut mass = 0.0f32;
        let mut keep = scaled.len();
        for (rank, &idx) in order.iter().enumerate() {
            mass += scaled[idx];
            if mass >= top_p.max(0.0) {
                keep = rank + 1;
                break;
            }
        }
        for &idx in &order[keep..] {
            scaled[idx] = 0.0;
        }
    }
    rng.choose_weighted(&scaled) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use crate::train::{train, Example, TrainConfig};
    use crate::AdamConfig;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("gen");
        a.vocab_size = 99;
        a
    }

    fn trained_on(seq: &[u32]) -> TinyLm {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(31)).expect("valid");
        let data = vec![Example::pretrain(seq.to_vec())];
        let cfg = TrainConfig {
            steps: 80,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 4,
        };
        train(&mut model, &data, &cfg).expect("ok");
        model
    }

    #[test]
    fn greedy_continues_memorized_sequence() {
        let seq: Vec<u32> = vec![10, 20, 30, 40, 50, 60];
        let model = trained_on(&seq);
        let cfg = GenerateConfig {
            max_new_tokens: 4,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &seq[..2], &cfg).expect("ok");
        assert_eq!(&out[..2], &seq[2..4], "greedy decode should continue");
    }

    #[test]
    fn greedy_is_deterministic() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 8,
            ..GenerateConfig::default()
        };
        let a = generate(&model, &[5, 6], &cfg).expect("ok");
        let b = generate(&model, &[5, 6], &cfg).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_respects_seed() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let mk = |seed| GenerateConfig {
            max_new_tokens: 16,
            temperature: 1.5,
            top_k: 0,
            top_p: 1.0,
            stop_at_eos: false,
            seed,
        };
        let a = generate(&model, &[5, 6], &mk(1)).expect("ok");
        let a2 = generate(&model, &[5, 6], &mk(1)).expect("ok");
        let b = generate(&model, &[5, 6], &mk(2)).expect("ok");
        assert_eq!(a, a2, "same seed must reproduce");
        assert_ne!(a, b, "hot sampling with different seeds should diverge");
    }

    #[test]
    fn generation_survives_context_overflow() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 64, // arch max_seq_len is 32
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &[5, 6], &cfg).expect("ok");
        assert_eq!(out.len(), 64, "sliding window must allow long outputs");
    }

    #[test]
    fn empty_prompt_rejected() {
        let model = trained_on(&[5, 6, 7]);
        assert!(generate(&model, &[], &GenerateConfig::default()).is_err());
    }

    #[test]
    fn top_k_limits_support() {
        // With top_k = 1, sampling must equal greedy regardless of
        // temperature.
        let model = trained_on(&[10, 20, 30, 40, 50, 60]);
        let greedy = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                ..GenerateConfig::default()
            },
        )
        .expect("ok");
        let topk1 = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                temperature: 2.0,
                top_k: 1,
                top_p: 1.0,
                stop_at_eos: true,
                seed: 9,
            },
        )
        .expect("ok");
        assert_eq!(greedy, topk1);
    }

    #[test]
    fn top_p_near_zero_equals_greedy() {
        // With a vanishing nucleus only the argmax token survives.
        let model = trained_on(&[10, 20, 30, 40, 50, 60]);
        let greedy = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                ..GenerateConfig::default()
            },
        )
        .expect("ok");
        let nucleus = generate(
            &model,
            &[10, 20],
            &GenerateConfig {
                max_new_tokens: 3,
                temperature: 1.5,
                top_k: 0,
                top_p: 1e-6,
                stop_at_eos: true,
                seed: 4,
            },
        )
        .expect("ok");
        assert_eq!(greedy, nucleus);
    }

    #[test]
    fn complete_text_round_trip() {
        let tok = CharTokenizer::new();
        let model = trained_on(&tok.encode("abcabcabc"));
        let cfg = GenerateConfig {
            max_new_tokens: 3,
            ..GenerateConfig::default()
        };
        let out = complete_text(&model, &tok, "abcabc", &cfg).expect("ok");
        assert_eq!(out.len(), 3, "three new characters expected, got {out:?}");
    }
}

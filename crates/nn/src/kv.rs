//! Incremental decoding with a key/value cache.
//!
//! [`crate::TinyLm::forward`] recomputes the whole sequence every call —
//! fine for training, quadratically wasteful for generation. [`KvCache`]
//! stores the per-layer rotary-encoded keys and values so each new token
//! costs `O(T·d·L)` instead of `O(T²·d·L)`. The benchmark harness generates
//! thousands of responses, which is why this path exists.
//!
//! Numerical note: the cached path computes exactly the same attention as
//! the full forward pass (same RoPE angles, same masking), so greedy
//! decodes agree token-for-token with the uncached implementation; a unit
//! test pins that equivalence.
//!
//! Performance note: every per-token projection (and the LM head) goes
//! through [`Matrix::matvec`] — the tensor crate's single-row fast path —
//! rather than a `1 × d` matmul, and the per-head score→softmax→context
//! sequence runs fused over one reusable scratch buffer, so a decode step
//! allocates no `1 × seq` intermediates per head per layer. A test below
//! pins the fast-path routing via [`chipalign_tensor::tune::matvec_calls`].
//!
//! Batching note: [`KvCache::decode_batch`] advances N sessions that share
//! one model by one token each, stacking the per-session hidden states so
//! every projection runs as a single `N × d` GEMM (the tensor crate's
//! skinny-m kernel) while attention stays per-session over ragged cache
//! lengths. Its logits are bit-identical to N independent
//! [`KvCache::decode_step`] calls — the serving scheduler relies on that to
//! keep batched transcripts byte-equal to unbatched ones.
//!
//! Prefill note: prefill is resumable. [`KvCache::prefill_chunk`] processes
//! any slice of a prompt and returns, and the cache can continue from where
//! it stopped later — each position's keys and values depend only on the
//! tokens fed so far, so chunked prefill is bit-identical to a one-shot
//! [`KvCache::prefill`] over the same tokens. [`KvCache::fork_from`] clones
//! a cache's first P positions, which is what lets a serving-layer prefix
//! cache hand a new session the K/V rows of an already-prefilled shared
//! prompt prefix instead of recomputing them. The cache records the token
//! at every cached position ([`KvCache::tokens`]) so prefix reuse can be
//! validated against the new prompt.

use std::sync::Arc;

use chipalign_tensor::ops;
use chipalign_tensor::Matrix;

use crate::model::TinyLm;
use crate::NnError;

/// Per-layer cached keys and values, one row per processed position.
#[derive(Debug, Clone)]
struct LayerKv {
    /// `(T × d_model)` rotary-encoded keys.
    k: Vec<Vec<f32>>,
    /// `(T × d_model)` values.
    v: Vec<Vec<f32>>,
}

/// A decoding session over one sequence.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
///
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::{KvCache, TinyLm};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("kv");
/// arch.vocab_size = 99;
/// let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1))?);
/// let mut cache = KvCache::new(&model);
/// let logits = cache.prefill(&[5, 6, 7])?;
/// assert_eq!(logits.len(), 99);
/// let next = cache.decode_step(8)?;
/// assert_eq!(next.len(), 99);
/// assert_eq!(cache.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvCache {
    model: Arc<TinyLm>,
    layers: Vec<LayerKv>,
    len: usize,
    /// The token fed at each cached position, in order (`tokens.len() ==
    /// len`). Lets prefix reuse verify that a donated cache really holds
    /// the prompt it claims to.
    tokens: Vec<u32>,
    /// Reusable per-head attention-score scratch (capacity grows to the
    /// longest sequence seen), so decode steps allocate no score vectors.
    score_buf: Vec<f32>,
}

impl KvCache {
    /// Creates an empty cache bound to a shared model.
    ///
    /// The cache holds an [`Arc`] clone, so every concurrent session
    /// decodes against one model allocation and per-session memory is
    /// O(cached keys/values), not O(model). Sessions created from the same
    /// `Arc` are eligible for [`KvCache::decode_batch`].
    #[must_use]
    pub fn new(model: &Arc<TinyLm>) -> Self {
        let n_layers = model.arch().n_layers;
        KvCache {
            model: Arc::clone(model),
            layers: (0..n_layers)
                .map(|_| LayerKv {
                    k: Vec::new(),
                    v: Vec::new(),
                })
                .collect(),
            len: 0,
            tokens: Vec::new(),
            score_buf: Vec::new(),
        }
    }

    /// The shared model this cache decodes against.
    #[must_use]
    pub fn model(&self) -> &Arc<TinyLm> {
        &self.model
    }

    /// Number of positions processed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions have been processed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The token fed at each cached position, in order.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Approximate heap footprint of the cached keys and values, in bytes.
    ///
    /// Counts the K and V rows (`len × n_layers × 2 × d_model` floats);
    /// bookkeeping (token history, scratch) is negligible next to them.
    /// The serving-layer prefix cache uses this for its byte budget.
    #[must_use]
    pub fn kv_bytes(&self) -> usize {
        let d = self.model.arch().d_model;
        self.layers.len() * self.len * 2 * d * std::mem::size_of::<f32>()
    }

    /// Clears every cached position while keeping the bound model (and the
    /// per-layer bucket allocations), so a decoding session can re-prefill
    /// after a context-window slide without cloning the model again.
    pub fn reset(&mut self) {
        for kv in &mut self.layers {
            kv.k.clear();
            kv.v.clear();
        }
        self.len = 0;
        self.tokens.clear();
    }

    /// Processes a prompt, returning the logits of its final position.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] for an empty prompt or one that
    /// (with the cache contents) exceeds the architecture's context length,
    /// and [`NnError::BadToken`] for out-of-vocabulary ids.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<Vec<f32>, NnError> {
        if tokens.is_empty() {
            return Err(NnError::BadSequence {
                detail: "prefill requires at least one token".into(),
            });
        }
        self.prefill_chunk(tokens)
    }

    /// Processes one chunk of a prompt, returning the logits of the chunk's
    /// final position. Resumable: a prompt split into arbitrary chunks and
    /// fed through successive `prefill_chunk` calls produces a cache (and
    /// final logits) bit-identical to one-shot [`KvCache::prefill`] over
    /// the whole prompt, because each position's K/V rows depend only on
    /// the tokens fed before it. The serving scheduler uses this to
    /// interleave long-prompt prefill with decode slices of other sessions.
    ///
    /// An empty chunk is a no-op returning empty logits (callers resuming a
    /// finished prefill need no special case).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if the chunk (with the cache
    /// contents) exceeds the architecture's context length, and
    /// [`NnError::BadToken`] for out-of-vocabulary ids. On error the cache
    /// retains every position processed before the failing token.
    pub fn prefill_chunk(&mut self, tokens: &[u32]) -> Result<Vec<f32>, NnError> {
        let mut last = Vec::new();
        for &t in tokens {
            last = self.decode_step(t)?;
        }
        Ok(last)
    }

    /// Clones the first `positions` cached positions into a new independent
    /// session bound to the same model allocation.
    ///
    /// The forked cache's K/V rows are byte-for-byte copies, so decoding
    /// from it is bit-identical to decoding from a fresh cache prefilled
    /// with the same leading tokens — each position's rotary encoding is
    /// absolute, depending only on the tokens before it, never on what the
    /// donor cached afterwards. This is the primitive behind shared-prefix
    /// reuse: one prefill of a common prompt scaffold can seed many
    /// sessions.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if `positions` exceeds the donor's
    /// cached length.
    pub fn fork_from(&self, positions: usize) -> Result<KvCache, NnError> {
        if positions > self.len {
            return Err(NnError::BadSequence {
                detail: format!(
                    "cannot fork {positions} positions from a cache holding {}",
                    self.len
                ),
            });
        }
        Ok(KvCache {
            model: Arc::clone(&self.model),
            layers: self
                .layers
                .iter()
                .map(|kv| LayerKv {
                    k: kv.k[..positions].to_vec(),
                    v: kv.v[..positions].to_vec(),
                })
                .collect(),
            len: positions,
            tokens: self.tokens[..positions].to_vec(),
            score_buf: Vec::new(),
        })
    }

    /// Processes one token, returning the next-token logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if the context window is full and
    /// [`NnError::BadToken`] for an out-of-vocabulary id.
    pub fn decode_step(&mut self, token: u32) -> Result<Vec<f32>, NnError> {
        let arch = self.model.arch().clone();
        if self.len >= arch.max_seq_len {
            return Err(NnError::BadSequence {
                detail: format!("kv cache full at {} positions", self.len),
            });
        }
        if token as usize >= arch.vocab_size {
            return Err(NnError::BadToken {
                id: token,
                vocab: arch.vocab_size,
            });
        }
        let pos = self.len;
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();
        let params = self.model.params();

        // Embedding row.
        let mut h: Vec<f32> = params.embed.row(token as usize).to_vec();

        // Reusable score scratch, taken out of self so the layer loop can
        // borrow `self.layers` mutably alongside it.
        let mut scores = std::mem::take(&mut self.score_buf);

        for (layer, kv) in params.layers.iter().zip(&mut self.layers) {
            // Attention block.
            let h_norm = rmsnorm_row(&h, layer.norm1.data());
            let mut q = project(&h_norm, &layer.wq);
            let mut k = project(&h_norm, &layer.wk);
            let v = project(&h_norm, &layer.wv);
            rope_row(&mut q, pos, n_heads, head_dim);
            rope_row(&mut k, pos, n_heads, head_dim);
            kv.k.push(k);
            kv.v.push(v);

            let mut ctx = vec![0.0f32; d];
            fused_attention(&q, kv, n_heads, head_dim, &mut scores, &mut ctx);
            let attn_out = project(&ctx, &layer.wo);
            for (a, b) in h.iter_mut().zip(&attn_out) {
                *a += b;
            }

            // MLP block.
            let h_norm2 = rmsnorm_row(&h, layer.norm2.data());
            let gate = project(&h_norm2, &layer.wg);
            let up = project(&h_norm2, &layer.wu);
            let act: Vec<f32> = gate
                .iter()
                .zip(&up)
                .map(|(&g, &u)| ops::silu(g) * u)
                .collect();
            let mlp_out = project(&act, &layer.wd);
            for (a, b) in h.iter_mut().zip(&mlp_out) {
                *a += b;
            }
        }

        self.score_buf = scores;

        let h_final = rmsnorm_row(&h, params.final_norm.data());
        let logits = project(&h_final, &params.lm_head);
        self.len += 1;
        self.tokens.push(token);
        Ok(logits)
    }

    /// Advances N decoding sessions that share one model by one token each,
    /// returning each session's next-token logits in submission order.
    ///
    /// The per-session hidden states are stacked row-wise into an
    /// `N × d_model` matrix so every projection (QKV, attention output,
    /// SwiGLU, LM head) runs as a single [`Matrix::matmul_bt`] — the
    /// tall-skinny GEMM shape the tensor crate tunes for — while attention
    /// stays per-session over each cache's own fused
    /// score→softmax→context scratch, because cache lengths are ragged.
    ///
    /// Logits are **bit-identical** to calling [`KvCache::decode_step`] on
    /// each session independently: for `N ≤
    /// chipalign_tensor::tune::GEMM_SKINNY_M_MAX` the skinny kernel
    /// accumulates every output row in exactly [`Matrix::matvec`]'s order,
    /// and the normalisation, RoPE, and attention code is shared verbatim
    /// with the single-session path. Tests here and in the tensor crate pin
    /// this.
    ///
    /// All validation happens before any session is touched: on error, no
    /// cache has advanced.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `tokens.len() != sessions.len()`
    /// or the sessions do not all share one model allocation,
    /// [`NnError::BadSequence`] if any session's context window is full,
    /// and [`NnError::BadToken`] for any out-of-vocabulary id.
    pub fn decode_batch(
        sessions: &mut [&mut KvCache],
        tokens: &[u32],
    ) -> Result<Vec<Vec<f32>>, NnError> {
        if sessions.len() != tokens.len() {
            return Err(NnError::BadConfig {
                detail: format!(
                    "decode_batch got {} sessions but {} tokens",
                    sessions.len(),
                    tokens.len()
                ),
            });
        }
        let Some(first) = sessions.first() else {
            return Ok(Vec::new());
        };
        let model = Arc::clone(&first.model);
        let arch = model.arch().clone();
        for (i, s) in sessions.iter().enumerate() {
            if !Arc::ptr_eq(&s.model, &model) {
                return Err(NnError::BadConfig {
                    detail: format!("decode_batch session {i} is bound to a different model"),
                });
            }
            if s.len >= arch.max_seq_len {
                return Err(NnError::BadSequence {
                    detail: format!("kv cache full at {} positions (session {i})", s.len),
                });
            }
        }
        for &t in tokens {
            if t as usize >= arch.vocab_size {
                return Err(NnError::BadToken {
                    id: t,
                    vocab: arch.vocab_size,
                });
            }
        }
        if sessions.len() == 1 {
            // A batch of one is exactly the matvec decode fast path.
            return Ok(vec![sessions[0].decode_step(tokens[0])?]);
        }

        let n = sessions.len();
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();
        let params = model.params();

        // Stack the embedding rows: one hidden-state row per session.
        let mut h = Matrix::zeros(n, d);
        for (r, &t) in tokens.iter().enumerate() {
            h.row_mut(r).copy_from_slice(params.embed.row(t as usize));
        }

        for (li, layer) in params.layers.iter().enumerate() {
            // Attention block: projections batched across sessions.
            let mut hn = Matrix::zeros(n, d);
            for r in 0..n {
                let normed = rmsnorm_row(h.row(r), layer.norm1.data());
                hn.row_mut(r).copy_from_slice(&normed);
            }
            let mut q = project_rows(&hn, &layer.wq);
            let mut k = project_rows(&hn, &layer.wk);
            let v = project_rows(&hn, &layer.wv);
            for r in 0..n {
                let pos = sessions[r].len;
                rope_row(q.row_mut(r), pos, n_heads, head_dim);
                rope_row(k.row_mut(r), pos, n_heads, head_dim);
            }
            // Attention stays per-session: cache lengths are ragged.
            let mut ctx = Matrix::zeros(n, d);
            for r in 0..n {
                let session = &mut *sessions[r];
                let kv = &mut session.layers[li];
                kv.k.push(k.row(r).to_vec());
                kv.v.push(v.row(r).to_vec());
                let mut scores = std::mem::take(&mut session.score_buf);
                fused_attention(q.row(r), kv, n_heads, head_dim, &mut scores, ctx.row_mut(r));
                session.score_buf = scores;
            }
            let attn_out = project_rows(&ctx, &layer.wo);
            for r in 0..n {
                for (a, b) in h.row_mut(r).iter_mut().zip(attn_out.row(r)) {
                    *a += b;
                }
            }

            // MLP block.
            let mut hn2 = Matrix::zeros(n, d);
            for r in 0..n {
                let normed = rmsnorm_row(h.row(r), layer.norm2.data());
                hn2.row_mut(r).copy_from_slice(&normed);
            }
            let gate = project_rows(&hn2, &layer.wg);
            let up = project_rows(&hn2, &layer.wu);
            let mut act = Matrix::zeros(n, gate.cols());
            for r in 0..n {
                for ((a, &g), &u) in act.row_mut(r).iter_mut().zip(gate.row(r)).zip(up.row(r)) {
                    *a = ops::silu(g) * u;
                }
            }
            let mlp_out = project_rows(&act, &layer.wd);
            for r in 0..n {
                for (a, b) in h.row_mut(r).iter_mut().zip(mlp_out.row(r)) {
                    *a += b;
                }
            }
        }

        let mut hf = Matrix::zeros(n, d);
        for r in 0..n {
            let normed = rmsnorm_row(h.row(r), params.final_norm.data());
            hf.row_mut(r).copy_from_slice(&normed);
        }
        let logits = project_rows(&hf, &params.lm_head);
        for (s, &t) in sessions.iter_mut().zip(tokens) {
            s.len += 1;
            s.tokens.push(t);
        }
        Ok((0..n).map(|r| logits.row(r).to_vec()).collect())
    }
}

/// `y = x · Wᵀ` for a single row, via the tensor crate's matvec fast path.
fn project(x: &[f32], w: &Matrix) -> Vec<f32> {
    w.matvec(x)
        .expect("projection shapes are fixed by the architecture")
}

/// `Y = X · Wᵀ` for a stack of rows, via the batched GEMM path. Row `r` of
/// the result is bit-identical to `project(x.row(r), w)`: the tensor
/// crate's skinny-m kernel accumulates in matvec order.
fn project_rows(x: &Matrix, w: &Matrix) -> Matrix {
    x.matmul_bt(w)
        .expect("projection shapes are fixed by the architecture")
}

/// Fused per-head score→softmax→context for one query row against one
/// session's cached K/V rows, accumulating into `ctx` (which must arrive
/// zeroed). Scores go against every cached position (causal by
/// construction: the cache only holds positions `<= pos`), are normalised
/// in place over the reusable scratch, and contracted against V without
/// allocating a per-head vector. Shared verbatim by
/// [`KvCache::decode_step`] and [`KvCache::decode_batch`] so the two paths
/// cannot drift numerically.
fn fused_attention(
    q: &[f32],
    kv: &LayerKv,
    n_heads: usize,
    head_dim: usize,
    scores: &mut Vec<f32>,
    ctx: &mut [f32],
) {
    let scale = 1.0 / (head_dim as f32).sqrt();
    for hh in 0..n_heads {
        let lo = hh * head_dim;
        let hi = lo + head_dim;
        scores.clear();
        scores.extend(
            kv.k.iter()
                .map(|krow| ops::dot(&q[lo..hi], &krow[lo..hi]) * scale),
        );
        ops::softmax_inplace(scores);
        for (w, vrow) in scores.iter().zip(&kv.v) {
            for (c, &vv) in ctx[lo..hi].iter_mut().zip(&vrow[lo..hi]) {
                *c += w * vv;
            }
        }
    }
}

/// Single-row RMSNorm (same ε as the batched path).
fn rmsnorm_row(x: &[f32], gain: &[f32]) -> Vec<f32> {
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let rms = (ms + 1e-5).sqrt();
    x.iter().zip(gain).map(|(&v, &g)| v * g / rms).collect()
}

/// Single-row rotary embedding (must match the batched implementation).
fn rope_row(x: &mut [f32], pos: usize, n_heads: usize, head_dim: usize) {
    for hh in 0..n_heads {
        let base = hh * head_dim;
        for i in 0..head_dim / 2 {
            let theta = pos as f32 * 10_000.0f32.powf(-2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn model() -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("kv");
        arch.vocab_size = 99;
        Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(77)).expect("valid"))
    }

    #[test]
    fn cached_logits_match_full_forward() {
        let m = model();
        let tokens = [4u32, 9, 14, 19, 24, 29];
        let full = m.logits(&tokens).expect("ok");
        let mut cache = KvCache::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let row = cache.decode_step(tok).expect("ok");
            for v in 0..99 {
                let a = full.get(t, v).expect("in range");
                let b = row[v];
                assert!(
                    (a - b).abs() < 1e-3,
                    "mismatch at pos {t} vocab {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn prefill_matches_stepwise() {
        let m = model();
        let mut a = KvCache::new(&m);
        let last_a = a.prefill(&[5, 10, 15]).expect("ok");
        let mut b = KvCache::new(&m);
        b.decode_step(5).expect("ok");
        b.decode_step(10).expect("ok");
        let last_b = b.decode_step(15).expect("ok");
        assert_eq!(last_a, last_b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn cache_enforces_context_limit() {
        let m = model(); // max_seq_len = 32
        let mut cache = KvCache::new(&m);
        for i in 0..32 {
            cache.decode_step(4 + (i % 90) as u32).expect("ok");
        }
        assert!(matches!(
            cache.decode_step(4),
            Err(NnError::BadSequence { .. })
        ));
    }

    #[test]
    fn reset_cache_replays_like_a_fresh_one() {
        let m = model();
        let mut used = KvCache::new(&m);
        used.prefill(&[5, 10, 15, 20]).expect("ok");
        used.reset();
        assert!(used.is_empty());
        let replayed = used.prefill(&[7, 12, 17]).expect("ok");
        let mut fresh = KvCache::new(&m);
        let reference = fresh.prefill(&[7, 12, 17]).expect("ok");
        assert_eq!(replayed, reference, "reset must fully clear cached state");
        assert_eq!(used.len(), fresh.len());
    }

    #[test]
    fn decode_goes_through_matvec_fast_path() {
        // Per token: 7 projections (q,k,v,o,gate,up,down) × 2 layers plus
        // the LM head = 15 matvec calls; 3 tokens = 45. The counter is
        // process-wide, so assert a lower bound on the delta rather than an
        // exact count (other tests may decode concurrently).
        let m = model();
        let mut cache = KvCache::new(&m);
        let before = chipalign_tensor::tune::matvec_calls();
        cache.prefill(&[5, 10, 15]).expect("ok");
        let delta = chipalign_tensor::tune::matvec_calls() - before;
        assert!(delta >= 45, "expected >= 45 matvec calls, saw {delta}");
    }

    #[test]
    fn rejects_bad_tokens_and_empty_prefill() {
        let m = model();
        let mut cache = KvCache::new(&m);
        assert!(matches!(
            cache.decode_step(200),
            Err(NnError::BadToken { .. })
        ));
        assert!(cache.prefill(&[]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn decode_batch_is_bitwise_identical_to_sequential() {
        // Ragged histories: every session enters the batch at a different
        // cache length, and the batch runs for several rounds so the
        // lengths stay staggered throughout.
        let m = model();
        let histories: [&[u32]; 4] = [&[5], &[5, 10], &[5, 10, 15, 20], &[7, 3, 9, 22, 41, 2, 8]];
        let mk = |h: &&[u32]| {
            let mut c = KvCache::new(&m);
            c.prefill(h).expect("ok");
            c
        };
        let mut seq: Vec<KvCache> = histories.iter().map(mk).collect();
        let mut bat: Vec<KvCache> = histories.iter().map(mk).collect();

        for round in 0..3u32 {
            let toks: Vec<u32> = [11u32, 22, 33, 44].iter().map(|&t| t + round).collect();
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .zip(&toks)
                .map(|(c, &t)| c.decode_step(t).expect("ok"))
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).expect("ok");
            assert_eq!(got, expected, "round {round} drifted from sequential");
        }
        for (a, b) in seq.iter().zip(&bat) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn decode_batch_handles_empty_and_single() {
        let m = model();
        let mut none: Vec<&mut KvCache> = Vec::new();
        assert!(KvCache::decode_batch(&mut none, &[])
            .expect("ok")
            .is_empty());

        let mut a = KvCache::new(&m);
        a.prefill(&[5, 6]).expect("ok");
        let mut reference = KvCache::new(&m);
        reference.prefill(&[5, 6]).expect("ok");
        let expected = reference.decode_step(7).expect("ok");
        let mut batch = [&mut a];
        let got = KvCache::decode_batch(&mut batch, &[7]).expect("ok");
        assert_eq!(got, vec![expected]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn decode_batch_validates_before_touching_any_session() {
        let m = model();
        let mut a = KvCache::new(&m);
        a.prefill(&[5, 6]).expect("ok");
        let mut b = KvCache::new(&m);
        b.prefill(&[5]).expect("ok");

        // Session/token count mismatch.
        {
            let mut batch = [&mut a, &mut b];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1]),
                Err(NnError::BadConfig { .. })
            ));
        }
        // Out-of-vocabulary token in the *second* slot: the first session
        // must not have advanced either.
        {
            let mut batch = [&mut a, &mut b];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1, 200]),
                Err(NnError::BadToken { .. })
            ));
        }
        // Same weights, different allocation: batching requires one Arc.
        let other = model();
        let mut c = KvCache::new(&other);
        c.prefill(&[5]).expect("ok");
        {
            let mut batch = [&mut a, &mut c];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1, 2]),
                Err(NnError::BadConfig { .. })
            ));
        }
        assert_eq!(a.len(), 2, "failed batches must not advance any session");
        assert_eq!(b.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn decode_batch_rejects_full_cache_without_side_effects() {
        let m = model(); // max_seq_len = 32
        let mut full = KvCache::new(&m);
        for i in 0..32 {
            full.decode_step(4 + (i % 90) as u32).expect("ok");
        }
        let mut fresh = KvCache::new(&m);
        fresh.prefill(&[5]).expect("ok");
        let mut batch = [&mut fresh, &mut full];
        assert!(matches!(
            KvCache::decode_batch(&mut batch, &[1, 2]),
            Err(NnError::BadSequence { .. })
        ));
        assert_eq!(fresh.len(), 1);
        assert_eq!(full.len(), 32);
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_to_one_shot() {
        let m = model();
        let prompt: Vec<u32> = (0..12).map(|i| 4 + (i * 7) % 90).collect();
        let mut one_shot = KvCache::new(&m);
        let reference = one_shot.prefill(&prompt).expect("ok");
        for split in [1usize, 3, 5, 11] {
            let mut chunked = KvCache::new(&m);
            let mut last = Vec::new();
            for chunk in prompt.chunks(split) {
                last = chunked.prefill_chunk(chunk).expect("ok");
            }
            assert_eq!(last, reference, "chunk size {split} drifted");
            assert_eq!(chunked.len(), one_shot.len());
            assert_eq!(chunked.tokens(), one_shot.tokens());
            // And the caches must continue identically.
            let a = chunked.decode_step(42).expect("ok");
            let b = one_shot.clone().decode_step(42).expect("ok");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_prefill_chunk_is_a_no_op() {
        let m = model();
        let mut cache = KvCache::new(&m);
        cache.prefill(&[5, 6]).expect("ok");
        let logits = cache.prefill_chunk(&[]).expect("ok");
        assert!(logits.is_empty());
        assert_eq!(cache.len(), 2);
        // One-shot prefill still rejects empty prompts.
        assert!(cache.prefill(&[]).is_err());
    }

    #[test]
    fn forked_prefix_continues_like_a_fresh_prefill() {
        let m = model();
        let prompt = [5u32, 10, 15, 20, 25, 30];
        let mut donor = KvCache::new(&m);
        donor.prefill(&prompt).expect("ok");
        // Advance the donor past the fork point: the fork must not see it.
        donor.decode_step(77).expect("ok");

        for p in [1usize, 3, 6] {
            let mut forked = donor.fork_from(p).expect("ok");
            assert_eq!(forked.len(), p);
            assert_eq!(forked.tokens(), &prompt[..p]);
            assert!(Arc::ptr_eq(forked.model(), donor.model()));

            let mut fresh = KvCache::new(&m);
            fresh.prefill(&prompt[..p]).expect("ok");
            let a = forked.decode_step(50).expect("ok");
            let b = fresh.decode_step(50).expect("ok");
            assert_eq!(a, b, "fork at {p} positions drifted from fresh prefill");
        }
    }

    #[test]
    fn fork_from_validates_positions_and_supports_zero() {
        let m = model();
        let mut donor = KvCache::new(&m);
        donor.prefill(&[5, 6, 7]).expect("ok");
        assert!(matches!(
            donor.fork_from(4),
            Err(NnError::BadSequence { .. })
        ));
        let empty = donor.fork_from(0).expect("ok");
        assert!(empty.is_empty());
        assert_eq!(empty.kv_bytes(), 0);
    }

    #[test]
    fn token_history_tracks_every_path() {
        let m = model();
        let mut a = KvCache::new(&m);
        a.prefill(&[5, 10]).expect("ok");
        a.decode_step(15).expect("ok");
        assert_eq!(a.tokens(), &[5, 10, 15]);

        let mut b = KvCache::new(&m);
        b.prefill(&[5]).expect("ok");
        {
            let mut batch = [&mut a, &mut b];
            KvCache::decode_batch(&mut batch, &[20, 25]).expect("ok");
        }
        assert_eq!(a.tokens(), &[5, 10, 15, 20]);
        assert_eq!(b.tokens(), &[5, 25]);

        a.reset();
        assert!(a.tokens().is_empty());
    }

    #[test]
    fn kv_bytes_counts_cached_rows() {
        let m = model();
        let arch = m.arch().clone();
        let mut cache = KvCache::new(&m);
        assert_eq!(cache.kv_bytes(), 0);
        cache.prefill(&[5, 6, 7]).expect("ok");
        assert_eq!(cache.kv_bytes(), arch.n_layers * 3 * 2 * arch.d_model * 4);
    }

    #[test]
    fn sessions_share_one_model_allocation() {
        let m = model();
        let base = Arc::strong_count(&m);
        let caches: Vec<KvCache> = (0..8).map(|_| KvCache::new(&m)).collect();
        assert_eq!(
            Arc::strong_count(&m),
            base + 8,
            "each cache must hold an Arc, not a model clone"
        );
        for c in &caches {
            assert!(Arc::ptr_eq(c.model(), &m));
        }
    }
}

//! Incremental decoding with a key/value cache.
//!
//! [`crate::TinyLm::forward`] recomputes the whole sequence every call —
//! fine for training, quadratically wasteful for generation. [`KvCache`]
//! stores the per-layer rotary-encoded keys and values so each new token
//! costs `O(T·d·L)` instead of `O(T²·d·L)`. The benchmark harness generates
//! thousands of responses, which is why this path exists.
//!
//! Numerical note: the cached path computes exactly the same attention as
//! the full forward pass (same RoPE angles, same masking), so greedy
//! decodes agree token-for-token with the uncached implementation; a unit
//! test pins that equivalence.
//!
//! Performance note: every per-token projection (and the LM head) goes
//! through [`Matrix::matvec`] — the tensor crate's single-row fast path —
//! rather than a `1 × d` matmul, and the per-head score→softmax→context
//! sequence runs fused over one reusable scratch buffer, so a decode step
//! allocates no `1 × seq` intermediates per head per layer. A test below
//! pins the fast-path routing via [`chipalign_tensor::tune::matvec_calls`].

use chipalign_tensor::ops;
use chipalign_tensor::Matrix;

use crate::model::TinyLm;
use crate::NnError;

/// Per-layer cached keys and values, one row per processed position.
#[derive(Debug, Clone)]
struct LayerKv {
    /// `(T × d_model)` rotary-encoded keys.
    k: Vec<Vec<f32>>,
    /// `(T × d_model)` values.
    v: Vec<Vec<f32>>,
}

/// A decoding session over one sequence.
///
/// # Example
///
/// ```
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::{KvCache, TinyLm};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("kv");
/// arch.vocab_size = 99;
/// let model = TinyLm::new(&arch, &mut Pcg32::seed(1))?;
/// let mut cache = KvCache::new(&model);
/// let logits = cache.prefill(&[5, 6, 7])?;
/// assert_eq!(logits.len(), 99);
/// let next = cache.decode_step(8)?;
/// assert_eq!(next.len(), 99);
/// assert_eq!(cache.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvCache {
    model: TinyLm,
    layers: Vec<LayerKv>,
    len: usize,
    /// Reusable per-head attention-score scratch (capacity grows to the
    /// longest sequence seen), so decode steps allocate no score vectors.
    score_buf: Vec<f32>,
}

impl KvCache {
    /// Creates an empty cache bound to a model (cloned; the model is small).
    #[must_use]
    pub fn new(model: &TinyLm) -> Self {
        let n_layers = model.arch().n_layers;
        KvCache {
            model: model.clone(),
            layers: (0..n_layers)
                .map(|_| LayerKv {
                    k: Vec::new(),
                    v: Vec::new(),
                })
                .collect(),
            len: 0,
            score_buf: Vec::new(),
        }
    }

    /// Number of positions processed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions have been processed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears every cached position while keeping the bound model (and the
    /// per-layer bucket allocations), so a decoding session can re-prefill
    /// after a context-window slide without cloning the model again.
    pub fn reset(&mut self) {
        for kv in &mut self.layers {
            kv.k.clear();
            kv.v.clear();
        }
        self.len = 0;
    }

    /// Processes a prompt, returning the logits of its final position.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] for an empty prompt or one that
    /// (with the cache contents) exceeds the architecture's context length,
    /// and [`NnError::BadToken`] for out-of-vocabulary ids.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<Vec<f32>, NnError> {
        if tokens.is_empty() {
            return Err(NnError::BadSequence {
                detail: "prefill requires at least one token".into(),
            });
        }
        let mut last = Vec::new();
        for &t in tokens {
            last = self.decode_step(t)?;
        }
        Ok(last)
    }

    /// Processes one token, returning the next-token logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if the context window is full and
    /// [`NnError::BadToken`] for an out-of-vocabulary id.
    pub fn decode_step(&mut self, token: u32) -> Result<Vec<f32>, NnError> {
        let arch = self.model.arch().clone();
        if self.len >= arch.max_seq_len {
            return Err(NnError::BadSequence {
                detail: format!("kv cache full at {} positions", self.len),
            });
        }
        if token as usize >= arch.vocab_size {
            return Err(NnError::BadToken {
                id: token,
                vocab: arch.vocab_size,
            });
        }
        let pos = self.len;
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();
        let params = self.model.params();

        // Embedding row.
        let mut h: Vec<f32> = params.embed.row(token as usize).to_vec();

        // Reusable score scratch, taken out of self so the layer loop can
        // borrow `self.layers` mutably alongside it.
        let mut scores = std::mem::take(&mut self.score_buf);

        for (layer, kv) in params.layers.iter().zip(&mut self.layers) {
            // Attention block.
            let h_norm = rmsnorm_row(&h, layer.norm1.data());
            let mut q = project(&h_norm, &layer.wq);
            let mut k = project(&h_norm, &layer.wk);
            let v = project(&h_norm, &layer.wv);
            rope_row(&mut q, pos, n_heads, head_dim);
            rope_row(&mut k, pos, n_heads, head_dim);
            kv.k.push(k);
            kv.v.push(v);

            let mut ctx = vec![0.0f32; d];
            let scale = 1.0 / (head_dim as f32).sqrt();
            for hh in 0..n_heads {
                let lo = hh * head_dim;
                let hi = lo + head_dim;
                // Fused score→softmax→context over the scratch buffer:
                // scores against every cached position (causal by
                // construction: the cache only holds positions <= pos),
                // normalised and contracted against V without allocating a
                // per-head vector.
                scores.clear();
                scores.extend(
                    kv.k.iter()
                        .map(|krow| ops::dot(&q[lo..hi], &krow[lo..hi]) * scale),
                );
                ops::softmax_inplace(&mut scores);
                for (w, vrow) in scores.iter().zip(&kv.v) {
                    for (c, &vv) in ctx[lo..hi].iter_mut().zip(&vrow[lo..hi]) {
                        *c += w * vv;
                    }
                }
            }
            let attn_out = project(&ctx, &layer.wo);
            for (a, b) in h.iter_mut().zip(&attn_out) {
                *a += b;
            }

            // MLP block.
            let h_norm2 = rmsnorm_row(&h, layer.norm2.data());
            let gate = project(&h_norm2, &layer.wg);
            let up = project(&h_norm2, &layer.wu);
            let act: Vec<f32> = gate
                .iter()
                .zip(&up)
                .map(|(&g, &u)| ops::silu(g) * u)
                .collect();
            let mlp_out = project(&act, &layer.wd);
            for (a, b) in h.iter_mut().zip(&mlp_out) {
                *a += b;
            }
        }

        self.score_buf = scores;

        let h_final = rmsnorm_row(&h, params.final_norm.data());
        let logits = project(&h_final, &params.lm_head);
        self.len += 1;
        Ok(logits)
    }
}

/// `y = x · Wᵀ` for a single row, via the tensor crate's matvec fast path.
fn project(x: &[f32], w: &Matrix) -> Vec<f32> {
    w.matvec(x)
        .expect("projection shapes are fixed by the architecture")
}

/// Single-row RMSNorm (same ε as the batched path).
fn rmsnorm_row(x: &[f32], gain: &[f32]) -> Vec<f32> {
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let rms = (ms + 1e-5).sqrt();
    x.iter().zip(gain).map(|(&v, &g)| v * g / rms).collect()
}

/// Single-row rotary embedding (must match the batched implementation).
fn rope_row(x: &mut [f32], pos: usize, n_heads: usize, head_dim: usize) {
    for hh in 0..n_heads {
        let base = hh * head_dim;
        for i in 0..head_dim / 2 {
            let theta = pos as f32 * 10_000.0f32.powf(-2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn model() -> TinyLm {
        let mut arch = ArchSpec::tiny("kv");
        arch.vocab_size = 99;
        TinyLm::new(&arch, &mut Pcg32::seed(77)).expect("valid")
    }

    #[test]
    fn cached_logits_match_full_forward() {
        let m = model();
        let tokens = [4u32, 9, 14, 19, 24, 29];
        let full = m.logits(&tokens).expect("ok");
        let mut cache = KvCache::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let row = cache.decode_step(tok).expect("ok");
            for v in 0..99 {
                let a = full.get(t, v).expect("in range");
                let b = row[v];
                assert!(
                    (a - b).abs() < 1e-3,
                    "mismatch at pos {t} vocab {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn prefill_matches_stepwise() {
        let m = model();
        let mut a = KvCache::new(&m);
        let last_a = a.prefill(&[5, 10, 15]).expect("ok");
        let mut b = KvCache::new(&m);
        b.decode_step(5).expect("ok");
        b.decode_step(10).expect("ok");
        let last_b = b.decode_step(15).expect("ok");
        assert_eq!(last_a, last_b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn cache_enforces_context_limit() {
        let m = model(); // max_seq_len = 32
        let mut cache = KvCache::new(&m);
        for i in 0..32 {
            cache.decode_step(4 + (i % 90) as u32).expect("ok");
        }
        assert!(matches!(
            cache.decode_step(4),
            Err(NnError::BadSequence { .. })
        ));
    }

    #[test]
    fn reset_cache_replays_like_a_fresh_one() {
        let m = model();
        let mut used = KvCache::new(&m);
        used.prefill(&[5, 10, 15, 20]).expect("ok");
        used.reset();
        assert!(used.is_empty());
        let replayed = used.prefill(&[7, 12, 17]).expect("ok");
        let mut fresh = KvCache::new(&m);
        let reference = fresh.prefill(&[7, 12, 17]).expect("ok");
        assert_eq!(replayed, reference, "reset must fully clear cached state");
        assert_eq!(used.len(), fresh.len());
    }

    #[test]
    fn decode_goes_through_matvec_fast_path() {
        // Per token: 7 projections (q,k,v,o,gate,up,down) × 2 layers plus
        // the LM head = 15 matvec calls; 3 tokens = 45. The counter is
        // process-wide, so assert a lower bound on the delta rather than an
        // exact count (other tests may decode concurrently).
        let m = model();
        let mut cache = KvCache::new(&m);
        let before = chipalign_tensor::tune::matvec_calls();
        cache.prefill(&[5, 10, 15]).expect("ok");
        let delta = chipalign_tensor::tune::matvec_calls() - before;
        assert!(delta >= 45, "expected >= 45 matvec calls, saw {delta}");
    }

    #[test]
    fn rejects_bad_tokens_and_empty_prefill() {
        let m = model();
        let mut cache = KvCache::new(&m);
        assert!(matches!(
            cache.decode_step(200),
            Err(NnError::BadToken { .. })
        ));
        assert!(cache.prefill(&[]).is_err());
        assert!(cache.is_empty());
    }
}

//! Incremental decoding with a key/value cache.
//!
//! [`crate::TinyLm::forward`] recomputes the whole sequence every call —
//! fine for training, quadratically wasteful for generation. [`KvCache`]
//! stores the per-layer rotary-encoded keys and values so each new token
//! costs `O(T·d·L)` instead of `O(T²·d·L)`. The benchmark harness generates
//! thousands of responses, which is why this path exists.
//!
//! Numerical note: the cached path computes exactly the same attention as
//! the full forward pass (same RoPE angles, same masking), so greedy
//! decodes agree token-for-token with the uncached implementation; a unit
//! test pins that equivalence.
//!
//! Performance note: every per-token projection (and the LM head) goes
//! through [`Matrix::matvec`] — the tensor crate's single-row fast path —
//! rather than a `1 × d` matmul, and the per-head score→softmax→context
//! sequence runs fused over one reusable scratch buffer, so a decode step
//! allocates no `1 × seq` intermediates per head per layer. A test below
//! pins the fast-path routing via [`chipalign_tensor::tune::matvec_calls`].
//!
//! Batching note: [`KvCache::decode_batch`] advances N sessions that share
//! one model by one token each, stacking the per-session hidden states so
//! every projection runs as a single `N × d` GEMM (the tensor crate's
//! skinny-m kernel) while attention stays per-session over ragged cache
//! lengths. Its logits are bit-identical to N independent
//! [`KvCache::decode_step`] calls — the serving scheduler relies on that to
//! keep batched transcripts byte-equal to unbatched ones.
//!
//! Quantization note: when the model carries an int8 sidecar
//! ([`crate::TinyLm::quantize`]), every decode projection streams the
//! per-row-scaled int8 codes instead of the f32 matrices — norms,
//! embedding lookups, and attention are unchanged. The batched ==
//! single-step bit-identity holds for int8 exactly as for f32, because the
//! quantized batched kernel accumulates each output element in
//! [`chipalign_tensor::QuantizedMatrix::matvec`] order; tests below pin
//! both that identity and the int8 path's tracking of the f32 oracle.
//!
//! Prefill note: prefill is resumable. [`KvCache::prefill_chunk`] processes
//! any slice of a prompt and returns, and the cache can continue from where
//! it stopped later — each position's keys and values depend only on the
//! tokens fed so far, so chunked prefill is bit-identical to a one-shot
//! [`KvCache::prefill`] over the same tokens. [`KvCache::fork_from`] clones
//! a cache's first P positions, which is what lets a serving-layer prefix
//! cache hand a new session the K/V rows of an already-prefilled shared
//! prompt prefix instead of recomputing them. The cache records the token
//! at every cached position ([`KvCache::tokens`]) so prefix reuse can be
//! validated against the new prompt.
//!
//! Paging note: a cache created with [`KvCache::new_paged`] stores its
//! rows in fixed-size blocks drawn from a shared [`crate::kvpool::KvPool`]
//! instead of per-session contiguous buffers. [`KvCache::fork_from`] then
//! aliases blocks (refcounted, zero bytes copied) and the first write into
//! a shared tail block privatises it (copy-on-write), so shared-prefix
//! reuse costs O(blocks) instead of O(bytes). Both storage layouts drive
//! the *same* per-row attention code — [`fused_attention`] is generic over
//! a row iterator and accumulates in identical order — so paged decoding
//! is bit-identical to the contiguous path, which stays available as a
//! differential oracle (equivalence tests below and in
//! `tests/kvpool_equivalence.rs` pin `==`).
//!
//! Quantized-KV note: a pool created at [`crate::KvDtype::Int8`] seals
//! each block layer to i8 codes + per-head scales the moment its last
//! position is written (the open tail stays f32, so writes and
//! copy-on-write are dtype-blind). The row iterators then yield
//! `KvRowRef::Q8` rows for sealed blocks, and [`fused_attention`]
//! dequantizes them in-register through the active
//! [`chipalign_tensor::backend::KernelBackend`]'s `dot_q8` / `axpy_q8`
//! primitives — the hot loop streams ~¼ the bytes. The seal trigger is a
//! pure function of the position, so chunked prefill, batched decode, and
//! one-shot prefill over an int8 pool stay bit-identical to each other;
//! against the *f32* oracle, int8-KV logits are pinned within
//! [`KV8_LOGIT_TOL`] with margin-gated argmax agreement (tests below and
//! in `tests/kvpool_equivalence.rs`).

use std::sync::Arc;

use chipalign_tensor::ops;
use chipalign_tensor::{backend, Matrix, QuantizedMatrix};

use crate::kvpool::{BlockLayer, KvBlock, KvPool};
use crate::model::TinyLm;
use crate::NnError;

/// Pinned per-logit tolerance for int8-KV decoding against the f32
/// oracle: every logit of a quantized-KV decode must lie within this of
/// the same step's f32 logits (teacher-forced), and greedy argmax must
/// agree outright whenever the f32 runner-up margin exceeds
/// `2 × KV8_LOGIT_TOL`. This is the serving contract for `#kv8` models.
pub const KV8_LOGIT_TOL: f32 = 0.5;

/// Per-layer cached keys and values, one row per processed position.
#[derive(Debug, Clone)]
struct LayerKv {
    /// `(T × d_model)` rotary-encoded keys.
    k: Vec<Vec<f32>>,
    /// `(T × d_model)` values.
    v: Vec<Vec<f32>>,
}

/// Where a cache's K/V rows live. Both layouts feed the same attention
/// code through [`fused_attention`]'s row iterators, so the choice of
/// storage cannot change a single output bit.
#[derive(Debug, Clone)]
enum KvStore {
    /// One growable buffer per layer, owned by this cache alone.
    Contiguous(Vec<LayerKv>),
    /// Fixed-size blocks drawn from a shared pool; rows gathered through
    /// the block table, blocks aliased between caches via [`Arc`].
    Paged(BlockTable),
}

/// A paged cache's view of its storage: an ordered list of refcounted
/// block handles. Block `b` holds positions `[b·bt, (b+1)·bt)` for every
/// layer, where `bt` is the pool's block size. Invariant outside of an
/// in-flight [`KvStore::prepare_position`]: `blocks.len()` equals
/// `ceil(len / bt)` of the owning cache.
#[derive(Debug, Clone)]
struct BlockTable {
    pool: Arc<KvPool>,
    blocks: Vec<Arc<KvBlock>>,
    /// Attention heads of the bound model — the granularity at which int8
    /// pools compute seal-time scales (one absmax per head per block).
    n_heads: usize,
}

/// One cached K or V row as stored: a plain f32 slice, or a sealed block's
/// i8 codes together with its per-head scales. [`fused_attention`] matches
/// per row, so mixed tables (sealed body + f32 tail) stream each block at
/// its own width.
#[derive(Clone, Copy)]
enum KvRowRef<'a> {
    /// Row of an f32 buffer (contiguous store, or an open/unsealed block).
    F32(&'a [f32]),
    /// Row of a sealed block: `codes` is the `d_model`-wide i8 row,
    /// `scales` the owning block layer's `n_heads` absmax scales.
    Q8 { codes: &'a [i8], scales: &'a [f32] },
}

/// What [`KvStore::prepare_position`] changed, so a batched caller can
/// unwind reservations when a *later* session's reservation fails.
#[derive(Debug, Clone, Copy)]
enum PreparedPosition {
    /// Nothing structural changed (contiguous store, or the tail block was
    /// already writable — a copy-on-write replacement also lands here,
    /// because the private copy is content-identical to the shared block
    /// and needs no undo).
    Untouched,
    /// A fresh tail block was pushed; rollback pops it.
    PushedBlock,
}

impl BlockTable {
    /// Makes position `pos` writable: pushes a fresh block when `pos`
    /// opens a new one, otherwise privatises a shared tail block
    /// (copy-on-write). The only fallible step of a decode — called before
    /// any visible mutation, so [`NnError::PoolExhausted`] leaves the
    /// cache semantically untouched.
    fn prepare_position(
        &mut self,
        pos: usize,
        n_layers: usize,
        d: usize,
    ) -> Result<PreparedPosition, NnError> {
        let bt = self.pool.block_tokens();
        let b = pos / bt;
        if b == self.blocks.len() {
            debug_assert_eq!(pos % bt, 0, "block table must grow one block at a time");
            let block = self.pool.alloc_block(n_layers, d)?;
            self.blocks.push(Arc::new(block));
            return Ok(PreparedPosition::PushedBlock);
        }
        debug_assert_eq!(
            b + 1,
            self.blocks.len(),
            "writes only land in the tail block"
        );
        if self.blocks[b].is_sealed() {
            // A fork landed mid-way into a sealed (int8) block, making it
            // this table's tail: sealed blocks are immutable, so regrow an
            // f32 working tail seeded with the already-filled rows
            // dequantized. Like a plain copy-on-write, the replacement
            // carries the same logical rows and needs no undo.
            let copy =
                self.pool
                    .alloc_block_unsealed(&self.blocks[b], pos % bt, d, self.n_heads)?;
            self.blocks[b] = Arc::new(copy);
        } else if Arc::get_mut(&mut self.blocks[b]).is_none() {
            // The tail is aliased (fork donor, prefix-cache snapshot, or a
            // plain clone): copy it before the first write. Forks take
            // `&self` and writes `&mut self`, so a racing fork can only
            // make the block look *more* shared — a spurious copy, never a
            // missed one.
            let copy = self.pool.alloc_block_from(&self.blocks[b])?;
            self.blocks[b] = Arc::new(copy);
        }
        Ok(PreparedPosition::Untouched)
    }

    /// Scatters one position's K/V rows into the (prepared) tail block.
    /// Writing a block's final position seals the layer on int8 pools
    /// (a no-op on f32) — the trigger is a pure function of `pos`, so any
    /// prefill chunking quantizes identical rows at identical moments.
    fn write_row(&mut self, li: usize, pos: usize, k: &[f32], v: &[f32]) {
        let bt = self.pool.block_tokens();
        let d = k.len();
        let n_heads = self.n_heads;
        let block = Arc::get_mut(&mut self.blocks[pos / bt])
            .expect("prepare_position left the tail block uniquely owned");
        let start = (pos % bt) * d;
        match &mut block.layers[li] {
            BlockLayer::F32 { k: bk, v: bv } => {
                bk[start..start + d].copy_from_slice(k);
                bv[start..start + d].copy_from_slice(v);
            }
            BlockLayer::Q8 { .. } => {
                unreachable!("prepare_position replaces a sealed tail before any write")
            }
        }
        if pos % bt == bt - 1 {
            block.seal_layer(li, d, n_heads);
        }
    }

    /// Gathers the first `rows` cached rows of one layer, in position
    /// order — the iterator [`fused_attention`] consumes. Each row is
    /// served at its block's stored width: f32 for open/unsealed blocks,
    /// i8 codes + scales for sealed ones.
    fn rows<'a>(
        &'a self,
        li: usize,
        rows: usize,
        d: usize,
        keys: bool,
    ) -> impl Iterator<Item = KvRowRef<'a>> + Clone + 'a {
        let bt = self.pool.block_tokens();
        (0..rows).map(move |t| {
            let start = (t % bt) * d;
            match &self.blocks[t / bt].layers[li] {
                BlockLayer::F32 { k, v } => {
                    let buf = if keys { k } else { v };
                    KvRowRef::F32(&buf[start..start + d])
                }
                BlockLayer::Q8 {
                    k_codes,
                    v_codes,
                    k_scales,
                    v_scales,
                } => {
                    let (codes, scales) = if keys {
                        (k_codes, k_scales)
                    } else {
                        (v_codes, v_scales)
                    };
                    KvRowRef::Q8 {
                        codes: &codes[start..start + d],
                        scales,
                    }
                }
            }
        })
    }

    /// Aliases the blocks covering the first `positions` positions: the
    /// zero-copy fork primitive. O(blocks) `Arc` clones, no K/V bytes.
    fn fork_prefix(&self, positions: usize) -> BlockTable {
        BlockTable {
            pool: Arc::clone(&self.pool),
            blocks: self.blocks[..self.pool.blocks_for(positions)].to_vec(),
            n_heads: self.n_heads,
        }
    }
}

impl KvStore {
    fn prepare_position(
        &mut self,
        pos: usize,
        n_layers: usize,
        d: usize,
    ) -> Result<PreparedPosition, NnError> {
        match self {
            KvStore::Contiguous(_) => Ok(PreparedPosition::Untouched),
            KvStore::Paged(table) => table.prepare_position(pos, n_layers, d),
        }
    }

    fn rollback_position(&mut self, prepared: PreparedPosition) {
        if let (KvStore::Paged(table), PreparedPosition::PushedBlock) = (self, prepared) {
            table.blocks.pop();
        }
    }

    fn write_row(&mut self, li: usize, pos: usize, k: Vec<f32>, v: Vec<f32>) {
        match self {
            KvStore::Contiguous(layers) => {
                let kv = &mut layers[li];
                debug_assert_eq!(kv.k.len(), pos);
                kv.k.push(k);
                kv.v.push(v);
            }
            KvStore::Paged(table) => table.write_row(li, pos, &k, &v),
        }
    }

    /// Fused attention for one query row over the first `rows` cached
    /// rows of layer `li`, dispatched to the layout's row iterator.
    /// `head_dim` is recovered from the query width (`d = n_heads ×
    /// head_dim` by construction of the architecture).
    fn attend(
        &self,
        li: usize,
        rows: usize,
        q: &[f32],
        n_heads: usize,
        scores: &mut Vec<f32>,
        ctx: &mut [f32],
    ) {
        let head_dim = q.len() / n_heads;
        match self {
            KvStore::Contiguous(layers) => {
                let kv = &layers[li];
                debug_assert_eq!(kv.k.len(), rows);
                fused_attention(
                    q,
                    kv.k.iter().map(|r| KvRowRef::F32(r.as_slice())),
                    kv.v.iter().map(|r| KvRowRef::F32(r.as_slice())),
                    n_heads,
                    head_dim,
                    scores,
                    ctx,
                );
            }
            KvStore::Paged(table) => {
                let d = q.len();
                fused_attention(
                    q,
                    table.rows(li, rows, d, true),
                    table.rows(li, rows, d, false),
                    n_heads,
                    head_dim,
                    scores,
                    ctx,
                );
            }
        }
    }
}

/// A decoding session over one sequence.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
///
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::{KvCache, TinyLm};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("kv");
/// arch.vocab_size = 99;
/// let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1))?);
/// let mut cache = KvCache::new(&model);
/// let logits = cache.prefill(&[5, 6, 7])?;
/// assert_eq!(logits.len(), 99);
/// let next = cache.decode_step(8)?;
/// assert_eq!(next.len(), 99);
/// assert_eq!(cache.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KvCache {
    model: Arc<TinyLm>,
    store: KvStore,
    len: usize,
    /// The token fed at each cached position, in order (`tokens.len() ==
    /// len`). Lets prefix reuse verify that a donated cache really holds
    /// the prompt it claims to.
    tokens: Vec<u32>,
    /// Reusable per-head attention-score scratch (capacity grows to the
    /// longest sequence seen), so decode steps allocate no score vectors.
    score_buf: Vec<f32>,
}

impl KvCache {
    /// Creates an empty cache bound to a shared model.
    ///
    /// The cache holds an [`Arc`] clone, so every concurrent session
    /// decodes against one model allocation and per-session memory is
    /// O(cached keys/values), not O(model). Sessions created from the same
    /// `Arc` are eligible for [`KvCache::decode_batch`].
    #[must_use]
    pub fn new(model: &Arc<TinyLm>) -> Self {
        let n_layers = model.arch().n_layers;
        KvCache {
            model: Arc::clone(model),
            store: KvStore::Contiguous(
                (0..n_layers)
                    .map(|_| LayerKv {
                        k: Vec::new(),
                        v: Vec::new(),
                    })
                    .collect(),
            ),
            len: 0,
            tokens: Vec::new(),
            score_buf: Vec::new(),
        }
    }

    /// Creates an empty *paged* cache: K/V rows live in fixed-size blocks
    /// drawn from `pool` and [`KvCache::fork_from`] aliases blocks instead
    /// of copying rows (copy-on-write on the first shared-tail write).
    ///
    /// Decoding is bit-identical to a contiguous cache — same attention
    /// accumulation order, pinned by equivalence tests — but allocation is
    /// incremental (`ceil(len / block_tokens)` blocks, not a worst-case
    /// buffer) and bounded by the pool: a decode step that needs a block
    /// the pool cannot grant fails with [`NnError::PoolExhausted`]
    /// *before* mutating the cache.
    #[must_use]
    pub fn new_paged(model: &Arc<TinyLm>, pool: &Arc<KvPool>) -> Self {
        KvCache {
            model: Arc::clone(model),
            store: KvStore::Paged(BlockTable {
                pool: Arc::clone(pool),
                blocks: Vec::new(),
                n_heads: model.arch().n_heads,
            }),
            len: 0,
            tokens: Vec::new(),
            score_buf: Vec::new(),
        }
    }

    /// The block pool backing this cache, if it is paged.
    #[must_use]
    pub fn pool(&self) -> Option<&Arc<KvPool>> {
        match &self.store {
            KvStore::Contiguous(_) => None,
            KvStore::Paged(table) => Some(&table.pool),
        }
    }

    /// Whether this cache stores its rows in pool blocks.
    #[must_use]
    pub fn is_paged(&self) -> bool {
        matches!(self.store, KvStore::Paged(_))
    }

    /// Number of pool blocks currently held (0 for a contiguous cache).
    /// Aliased blocks count once per *table*, so a fresh fork reports the
    /// donor's block count without having allocated anything.
    #[must_use]
    pub fn block_count(&self) -> usize {
        match &self.store {
            KvStore::Contiguous(_) => 0,
            KvStore::Paged(table) => table.blocks.len(),
        }
    }

    /// `(block id, block bytes)` for every block this cache holds, in
    /// position order; empty for a contiguous cache. Ids are pool-unique
    /// and never reused, which is what lets the serving layer charge a
    /// byte budget per *physical* block: two caches aliasing a block
    /// report the same id, so shared storage is counted once. Bytes are
    /// each block's *current* representation — f32 for the open tail,
    /// code + scale width for sealed int8 blocks — and sealed blocks are
    /// immutable, so a charge taken from this list never goes stale.
    #[must_use]
    pub fn block_ids(&self) -> Vec<(u64, usize)> {
        match &self.store {
            KvStore::Contiguous(_) => Vec::new(),
            KvStore::Paged(table) => table.blocks.iter().map(|b| (b.id, b.bytes())).collect(),
        }
    }

    /// Largest prefix length `≤ positions` from which a fork continues
    /// *bit-deterministically*. Contiguous and f32-paged caches fork
    /// anywhere (`positions` comes back unchanged); on an int8 pool a fork
    /// landing strictly inside a *sealed* block would regrow its tail from
    /// dequantized rows — within [`KV8_LOGIT_TOL`], but not bit-stable
    /// against a fresh prefill — so this rounds such a cut down to the
    /// preceding block boundary. The serving prefix cache trims donations
    /// with this, keeping int8 served transcripts deterministic.
    #[must_use]
    pub fn aligned_fork_len(&self, positions: usize) -> usize {
        let positions = positions.min(self.len);
        if let KvStore::Paged(table) = &self.store {
            let bt = table.pool.block_tokens();
            if positions % bt != 0 {
                let b = positions / bt;
                if table.blocks.get(b).is_some_and(|blk| blk.is_sealed()) {
                    return b * bt;
                }
            }
        }
        positions
    }

    /// The shared model this cache decodes against.
    #[must_use]
    pub fn model(&self) -> &Arc<TinyLm> {
        &self.model
    }

    /// Number of positions processed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions have been processed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The token fed at each cached position, in order.
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Logical heap footprint of the cached keys and values, in bytes.
    ///
    /// Counts the K and V rows (`len × n_layers × 2 × d_model` floats);
    /// bookkeeping (token history, scratch) is negligible next to them.
    /// For a paged cache this is the *logical* size — physical usage is
    /// whole blocks, possibly shared with other caches; use
    /// [`KvCache::block_ids`] to account physical bytes per unique block
    /// (the serving-layer prefix cache does exactly that).
    #[must_use]
    pub fn kv_bytes(&self) -> usize {
        let arch = self.model.arch();
        arch.n_layers * self.len * 2 * arch.d_model * std::mem::size_of::<f32>()
    }

    /// Clears every cached position while keeping the bound model (and,
    /// for a contiguous cache, the per-layer bucket allocations), so a
    /// decoding session can re-prefill after a context-window slide
    /// without cloning the model again. A paged cache drops its block
    /// handles, returning any block this was the last holder of to the
    /// pool.
    pub fn reset(&mut self) {
        match &mut self.store {
            KvStore::Contiguous(layers) => {
                for kv in layers {
                    kv.k.clear();
                    kv.v.clear();
                }
            }
            KvStore::Paged(table) => table.blocks.clear(),
        }
        self.len = 0;
        self.tokens.clear();
    }

    /// Processes a prompt, returning the logits of its final position.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] for an empty prompt or one that
    /// (with the cache contents) exceeds the architecture's context length,
    /// and [`NnError::BadToken`] for out-of-vocabulary ids.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<Vec<f32>, NnError> {
        if tokens.is_empty() {
            return Err(NnError::BadSequence {
                detail: "prefill requires at least one token".into(),
            });
        }
        self.prefill_chunk(tokens)
    }

    /// Processes one chunk of a prompt, returning the logits of the chunk's
    /// final position. Resumable: a prompt split into arbitrary chunks and
    /// fed through successive `prefill_chunk` calls produces a cache (and
    /// final logits) bit-identical to one-shot [`KvCache::prefill`] over
    /// the whole prompt, because each position's K/V rows depend only on
    /// the tokens fed before it. The serving scheduler uses this to
    /// interleave long-prompt prefill with decode slices of other sessions.
    ///
    /// An empty chunk is a no-op returning empty logits (callers resuming a
    /// finished prefill need no special case).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if the chunk (with the cache
    /// contents) exceeds the architecture's context length, and
    /// [`NnError::BadToken`] for out-of-vocabulary ids. On error the cache
    /// retains every position processed before the failing token.
    pub fn prefill_chunk(&mut self, tokens: &[u32]) -> Result<Vec<f32>, NnError> {
        let mut last = Vec::new();
        for &t in tokens {
            last = self.decode_step(t)?;
        }
        Ok(last)
    }

    /// Clones the first `positions` cached positions into a new independent
    /// session bound to the same model allocation.
    ///
    /// Decoding from the fork is bit-identical to decoding from a fresh
    /// cache prefilled with the same leading tokens — each position's
    /// rotary encoding is absolute, depending only on the tokens before
    /// it, never on what the donor cached afterwards. This is the
    /// primitive behind shared-prefix reuse: one prefill of a common
    /// prompt scaffold can seed many sessions.
    ///
    /// For a contiguous cache the K/V rows are byte-for-byte copies
    /// (O(bytes)). For a paged cache the covering blocks are *aliased* —
    /// O(blocks) refcount bumps, zero K/V bytes moved — and the first
    /// write either side makes into a shared tail block privatises it
    /// first (copy-on-write), so neither branch can corrupt the other.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if `positions` exceeds the donor's
    /// cached length.
    pub fn fork_from(&self, positions: usize) -> Result<KvCache, NnError> {
        if positions > self.len {
            return Err(NnError::BadSequence {
                detail: format!(
                    "cannot fork {positions} positions from a cache holding {}",
                    self.len
                ),
            });
        }
        let store = match &self.store {
            KvStore::Contiguous(layers) => KvStore::Contiguous(
                layers
                    .iter()
                    .map(|kv| LayerKv {
                        k: kv.k[..positions].to_vec(),
                        v: kv.v[..positions].to_vec(),
                    })
                    .collect(),
            ),
            KvStore::Paged(table) => KvStore::Paged(table.fork_prefix(positions)),
        };
        Ok(KvCache {
            model: Arc::clone(&self.model),
            store,
            len: positions,
            tokens: self.tokens[..positions].to_vec(),
            score_buf: Vec::new(),
        })
    }

    /// Processes one token, returning the next-token logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if the context window is full,
    /// [`NnError::BadToken`] for an out-of-vocabulary id, and — for a
    /// paged cache — [`NnError::PoolExhausted`] when the pool cannot back
    /// the new position. All errors leave the cache unadvanced.
    pub fn decode_step(&mut self, token: u32) -> Result<Vec<f32>, NnError> {
        let arch = self.model.arch().clone();
        if self.len >= arch.max_seq_len {
            return Err(NnError::BadSequence {
                detail: format!("kv cache full at {} positions", self.len),
            });
        }
        if token as usize >= arch.vocab_size {
            return Err(NnError::BadToken {
                id: token,
                vocab: arch.vocab_size,
            });
        }
        let pos = self.len;
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();
        // Paged caches reserve (or privatise) the tail block up front: the
        // only fallible step of the decode runs before any visible
        // mutation.
        self.store.prepare_position(pos, arch.n_layers, d)?;
        let params = self.model.params();
        let quant = self.model.quant();

        // Embedding row.
        let mut h: Vec<f32> = params.embed.row(token as usize).to_vec();

        // Reusable score scratch, taken out of self so the layer loop can
        // borrow `self.store` mutably alongside it.
        let mut scores = std::mem::take(&mut self.score_buf);

        for (li, layer) in params.layers.iter().enumerate() {
            let ql = quant.map(|qp| &qp.layers[li]);
            // Attention block.
            let h_norm = rmsnorm_row(&h, layer.norm1.data());
            let mut q = project(&h_norm, &layer.wq, ql.map(|l| &l.wq));
            let mut k = project(&h_norm, &layer.wk, ql.map(|l| &l.wk));
            let v = project(&h_norm, &layer.wv, ql.map(|l| &l.wv));
            rope_row(&mut q, pos, n_heads, head_dim);
            rope_row(&mut k, pos, n_heads, head_dim);
            self.store.write_row(li, pos, k, v);

            let mut ctx = vec![0.0f32; d];
            self.store
                .attend(li, pos + 1, &q, n_heads, &mut scores, &mut ctx);
            let attn_out = project(&ctx, &layer.wo, ql.map(|l| &l.wo));
            for (a, b) in h.iter_mut().zip(&attn_out) {
                *a += b;
            }

            // MLP block.
            let h_norm2 = rmsnorm_row(&h, layer.norm2.data());
            let gate = project(&h_norm2, &layer.wg, ql.map(|l| &l.wg));
            let up = project(&h_norm2, &layer.wu, ql.map(|l| &l.wu));
            let act: Vec<f32> = gate
                .iter()
                .zip(&up)
                .map(|(&g, &u)| ops::silu(g) * u)
                .collect();
            let mlp_out = project(&act, &layer.wd, ql.map(|l| &l.wd));
            for (a, b) in h.iter_mut().zip(&mlp_out) {
                *a += b;
            }
        }

        self.score_buf = scores;

        let h_final = rmsnorm_row(&h, params.final_norm.data());
        let logits = project(&h_final, &params.lm_head, quant.map(|qp| &qp.lm_head));
        self.len += 1;
        self.tokens.push(token);
        Ok(logits)
    }

    /// Advances N decoding sessions that share one model by one token each,
    /// returning each session's next-token logits in submission order.
    ///
    /// The per-session hidden states are stacked row-wise into an
    /// `N × d_model` matrix so every projection (QKV, attention output,
    /// SwiGLU, LM head) runs as a single [`Matrix::matmul_bt`] — the
    /// tall-skinny GEMM shape the tensor crate tunes for — while attention
    /// stays per-session over each cache's own fused
    /// score→softmax→context scratch, because cache lengths are ragged.
    ///
    /// Logits are **bit-identical** to calling [`KvCache::decode_step`] on
    /// each session independently: for `N ≤
    /// chipalign_tensor::tune::GEMM_SKINNY_M_MAX` the skinny kernel
    /// accumulates every output row in exactly [`Matrix::matvec`]'s order,
    /// and the normalisation, RoPE, and attention code is shared verbatim
    /// with the single-session path. Tests here and in the tensor crate pin
    /// this.
    ///
    /// All validation happens before any session is touched: on error, no
    /// cache has advanced. Paged and contiguous sessions may be mixed
    /// freely — each row scatters and gathers through its own session's
    /// storage, and pool reservations for paged members are made (and, on
    /// failure, unwound) before any session's state moves.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `tokens.len() != sessions.len()`
    /// or the sessions do not all share one model allocation,
    /// [`NnError::BadSequence`] if any session's context window is full,
    /// [`NnError::BadToken`] for any out-of-vocabulary id, and
    /// [`NnError::PoolExhausted`] if any paged session's pool cannot back
    /// its new position.
    pub fn decode_batch(
        sessions: &mut [&mut KvCache],
        tokens: &[u32],
    ) -> Result<Vec<Vec<f32>>, NnError> {
        if sessions.len() != tokens.len() {
            return Err(NnError::BadConfig {
                detail: format!(
                    "decode_batch got {} sessions but {} tokens",
                    sessions.len(),
                    tokens.len()
                ),
            });
        }
        let Some(first) = sessions.first() else {
            return Ok(Vec::new());
        };
        let model = Arc::clone(&first.model);
        let arch = model.arch().clone();
        for (i, s) in sessions.iter().enumerate() {
            if !Arc::ptr_eq(&s.model, &model) {
                return Err(NnError::BadConfig {
                    detail: format!("decode_batch session {i} is bound to a different model"),
                });
            }
            if s.len >= arch.max_seq_len {
                return Err(NnError::BadSequence {
                    detail: format!("kv cache full at {} positions (session {i})", s.len),
                });
            }
        }
        for &t in tokens {
            if t as usize >= arch.vocab_size {
                return Err(NnError::BadToken {
                    id: t,
                    vocab: arch.vocab_size,
                });
            }
        }
        if sessions.len() == 1 {
            // A batch of one is exactly the matvec decode fast path.
            return Ok(vec![sessions[0].decode_step(tokens[0])?]);
        }

        let n = sessions.len();
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();

        // Reserve pool space for every paged session before any state
        // advances: a pool-exhausted batch must leave every session
        // exactly where it was. Freshly pushed tail blocks are popped on
        // failure; copy-on-write replacements are content-identical and
        // need no undo.
        let mut prepared: Vec<PreparedPosition> = Vec::with_capacity(n);
        let mut reserve_err = None;
        for s in sessions.iter_mut() {
            match s.store.prepare_position(s.len, arch.n_layers, d) {
                Ok(p) => prepared.push(p),
                Err(e) => {
                    reserve_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = reserve_err {
            for (s, p) in sessions.iter_mut().zip(prepared) {
                s.store.rollback_position(p);
            }
            return Err(e);
        }

        let params = model.params();
        let quant = model.quant();

        // Stack the embedding rows: one hidden-state row per session.
        let mut h = Matrix::zeros(n, d);
        for (r, &t) in tokens.iter().enumerate() {
            h.row_mut(r).copy_from_slice(params.embed.row(t as usize));
        }

        for (li, layer) in params.layers.iter().enumerate() {
            let ql = quant.map(|qp| &qp.layers[li]);
            // Attention block: projections batched across sessions.
            let mut hn = Matrix::zeros(n, d);
            for r in 0..n {
                let normed = rmsnorm_row(h.row(r), layer.norm1.data());
                hn.row_mut(r).copy_from_slice(&normed);
            }
            let mut q = project_rows(&hn, &layer.wq, ql.map(|l| &l.wq));
            let mut k = project_rows(&hn, &layer.wk, ql.map(|l| &l.wk));
            let v = project_rows(&hn, &layer.wv, ql.map(|l| &l.wv));
            for r in 0..n {
                let pos = sessions[r].len;
                rope_row(q.row_mut(r), pos, n_heads, head_dim);
                rope_row(k.row_mut(r), pos, n_heads, head_dim);
            }
            // Attention stays per-session: cache lengths are ragged.
            let mut ctx = Matrix::zeros(n, d);
            for r in 0..n {
                let session = &mut *sessions[r];
                let pos = session.len;
                session
                    .store
                    .write_row(li, pos, k.row(r).to_vec(), v.row(r).to_vec());
                let mut scores = std::mem::take(&mut session.score_buf);
                session
                    .store
                    .attend(li, pos + 1, q.row(r), n_heads, &mut scores, ctx.row_mut(r));
                session.score_buf = scores;
            }
            let attn_out = project_rows(&ctx, &layer.wo, ql.map(|l| &l.wo));
            for r in 0..n {
                for (a, b) in h.row_mut(r).iter_mut().zip(attn_out.row(r)) {
                    *a += b;
                }
            }

            // MLP block.
            let mut hn2 = Matrix::zeros(n, d);
            for r in 0..n {
                let normed = rmsnorm_row(h.row(r), layer.norm2.data());
                hn2.row_mut(r).copy_from_slice(&normed);
            }
            let gate = project_rows(&hn2, &layer.wg, ql.map(|l| &l.wg));
            let up = project_rows(&hn2, &layer.wu, ql.map(|l| &l.wu));
            let mut act = Matrix::zeros(n, gate.cols());
            for r in 0..n {
                for ((a, &g), &u) in act.row_mut(r).iter_mut().zip(gate.row(r)).zip(up.row(r)) {
                    *a = ops::silu(g) * u;
                }
            }
            let mlp_out = project_rows(&act, &layer.wd, ql.map(|l| &l.wd));
            for r in 0..n {
                for (a, b) in h.row_mut(r).iter_mut().zip(mlp_out.row(r)) {
                    *a += b;
                }
            }
        }

        let mut hf = Matrix::zeros(n, d);
        for r in 0..n {
            let normed = rmsnorm_row(h.row(r), params.final_norm.data());
            hf.row_mut(r).copy_from_slice(&normed);
        }
        let logits = project_rows(&hf, &params.lm_head, quant.map(|qp| &qp.lm_head));
        for (s, &t) in sessions.iter_mut().zip(tokens) {
            s.len += 1;
            s.tokens.push(t);
        }
        Ok((0..n).map(|r| logits.row(r).to_vec()).collect())
    }

    /// Processes `tokens` as consecutive positions of **this** session in
    /// one batched forward, returning the next-token logits after *every*
    /// position — the speculative-decoding verification primitive: feed
    /// `[t0, d1, …, dm]` and row `i` tells you what the model would emit
    /// after the first `i + 1` of those tokens.
    ///
    /// The hidden states of the `m` positions are stacked row-wise so each
    /// projection runs as one `m × d_model` GEMM (the same skinny kernel as
    /// [`KvCache::decode_batch`]), while within each layer the K/V rows are
    /// written and attended **in position order** — row `r` attends over
    /// every earlier cached row *plus* rows `0..r` of the chunk itself, the
    /// exact causal structure of `m` sequential [`KvCache::decode_step`]
    /// calls. Because the skinny GEMM accumulates each output row in
    /// [`Matrix::matvec`] order and the norm/RoPE/attention helpers are
    /// shared verbatim with the single-step path, the returned logits are
    /// **bit-identical** to stepping the tokens one at a time (pinned by
    /// tests across contiguous, paged, int8-weight, and int8-KV caches).
    ///
    /// An empty chunk is a no-op returning no rows. All validation and pool
    /// reservation happens before any state advances; on error the cache is
    /// exactly as it was.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `tokens.len()` exceeds
    /// [`chipalign_tensor::tune::GEMM_SKINNY_M_MAX`] (beyond which the
    /// bit-identity guarantee would not hold), [`NnError::BadSequence`] if
    /// the chunk does not fit the context window, [`NnError::BadToken`] for
    /// out-of-vocabulary ids, and [`NnError::PoolExhausted`] if a paged
    /// cache's pool cannot back every new position.
    pub fn verify_chunk(&mut self, tokens: &[u32]) -> Result<Vec<Vec<f32>>, NnError> {
        let arch = self.model.arch().clone();
        let m = tokens.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        if m > chipalign_tensor::tune::GEMM_SKINNY_M_MAX {
            return Err(NnError::BadConfig {
                detail: format!(
                    "verify_chunk of {m} tokens exceeds the skinny-GEMM bound {}",
                    chipalign_tensor::tune::GEMM_SKINNY_M_MAX
                ),
            });
        }
        if self.len + m > arch.max_seq_len {
            return Err(NnError::BadSequence {
                detail: format!(
                    "verify_chunk of {m} tokens overflows the context window ({} cached, {} max)",
                    self.len, arch.max_seq_len
                ),
            });
        }
        for &t in tokens {
            if t as usize >= arch.vocab_size {
                return Err(NnError::BadToken {
                    id: t,
                    vocab: arch.vocab_size,
                });
            }
        }
        if m == 1 {
            // A chunk of one is exactly the matvec decode fast path.
            return Ok(vec![self.decode_step(tokens[0])?]);
        }

        let base = self.len;
        let d = arch.d_model;
        let n_heads = arch.n_heads;
        let head_dim = arch.head_dim();

        // Reserve every new position up front so a pool-exhausted chunk
        // leaves the cache exactly where it was: freshly pushed tail
        // blocks are popped on failure, copy-on-write replacements are
        // content-identical and need no undo.
        let mut prepared: Vec<PreparedPosition> = Vec::with_capacity(m);
        let mut reserve_err = None;
        for r in 0..m {
            match self.store.prepare_position(base + r, arch.n_layers, d) {
                Ok(p) => prepared.push(p),
                Err(e) => {
                    reserve_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = reserve_err {
            for p in prepared.into_iter().rev() {
                self.store.rollback_position(p);
            }
            return Err(e);
        }

        let params = self.model.params();
        let quant = self.model.quant();

        // Stack the embedding rows: one hidden-state row per position.
        let mut h = Matrix::zeros(m, d);
        for (r, &t) in tokens.iter().enumerate() {
            h.row_mut(r).copy_from_slice(params.embed.row(t as usize));
        }

        let mut scores = std::mem::take(&mut self.score_buf);

        for (li, layer) in params.layers.iter().enumerate() {
            let ql = quant.map(|qp| &qp.layers[li]);
            // Attention block: projections batched across positions.
            let mut hn = Matrix::zeros(m, d);
            for r in 0..m {
                let normed = rmsnorm_row(h.row(r), layer.norm1.data());
                hn.row_mut(r).copy_from_slice(&normed);
            }
            let mut q = project_rows(&hn, &layer.wq, ql.map(|l| &l.wq));
            let mut k = project_rows(&hn, &layer.wk, ql.map(|l| &l.wk));
            let v = project_rows(&hn, &layer.wv, ql.map(|l| &l.wv));
            for r in 0..m {
                rope_row(q.row_mut(r), base + r, n_heads, head_dim);
                rope_row(k.row_mut(r), base + r, n_heads, head_dim);
            }
            // Attention stays per-position and strictly in order: row r
            // sees every earlier row of the chunk, exactly like r
            // sequential decode steps would.
            let mut ctx = Matrix::zeros(m, d);
            for r in 0..m {
                let pos = base + r;
                self.store
                    .write_row(li, pos, k.row(r).to_vec(), v.row(r).to_vec());
                self.store
                    .attend(li, pos + 1, q.row(r), n_heads, &mut scores, ctx.row_mut(r));
            }
            let attn_out = project_rows(&ctx, &layer.wo, ql.map(|l| &l.wo));
            for r in 0..m {
                for (a, b) in h.row_mut(r).iter_mut().zip(attn_out.row(r)) {
                    *a += b;
                }
            }

            // MLP block.
            let mut hn2 = Matrix::zeros(m, d);
            for r in 0..m {
                let normed = rmsnorm_row(h.row(r), layer.norm2.data());
                hn2.row_mut(r).copy_from_slice(&normed);
            }
            let gate = project_rows(&hn2, &layer.wg, ql.map(|l| &l.wg));
            let up = project_rows(&hn2, &layer.wu, ql.map(|l| &l.wu));
            let mut act = Matrix::zeros(m, gate.cols());
            for r in 0..m {
                for ((a, &g), &u) in act.row_mut(r).iter_mut().zip(gate.row(r)).zip(up.row(r)) {
                    *a = ops::silu(g) * u;
                }
            }
            let mlp_out = project_rows(&act, &layer.wd, ql.map(|l| &l.wd));
            for r in 0..m {
                for (a, b) in h.row_mut(r).iter_mut().zip(mlp_out.row(r)) {
                    *a += b;
                }
            }
        }

        self.score_buf = scores;

        let mut hf = Matrix::zeros(m, d);
        for r in 0..m {
            let normed = rmsnorm_row(h.row(r), params.final_norm.data());
            hf.row_mut(r).copy_from_slice(&normed);
        }
        let logits = project_rows(&hf, &params.lm_head, quant.map(|qp| &qp.lm_head));
        self.len += m;
        self.tokens.extend_from_slice(tokens);
        Ok((0..m).map(|r| logits.row(r).to_vec()).collect())
    }

    /// Rewinds the cache to its first `len` positions, discarding the
    /// rest — the speculative-decoding rejection primitive: after a
    /// [`KvCache::verify_chunk`] whose tail tokens the target disagreed
    /// with, the cache truncates back to the accepted prefix and continues
    /// **bit-identically** to a cache that never saw the rejected rows
    /// (K/V rows are per-position and causal, so dropped rows leave no
    /// trace; any stale bytes past `len` in a paged tail block are
    /// positionally overwritten before they could ever be attended).
    ///
    /// For a paged cache, blocks wholly past the cut are released to the
    /// pool (or merely un-aliased, if forked copies still hold them).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`] if `len` exceeds the cached length,
    /// or if the cut lands strictly inside a *sealed* int8 block — sealed
    /// rows could only be re-opened by dequantizing (lossy, so the rewind
    /// would no longer be exact). Callers pace writes with
    /// [`KvCache::lossless_run`] to keep every speculative rewind on the
    /// exact path. On error the cache is unchanged.
    pub fn truncate(&mut self, len: usize) -> Result<(), NnError> {
        if len > self.len {
            return Err(NnError::BadSequence {
                detail: format!(
                    "cannot truncate to {len} positions, only {} cached",
                    self.len
                ),
            });
        }
        if len == self.len {
            return Ok(());
        }
        if let KvStore::Paged(table) = &self.store {
            let bt = table.pool.block_tokens();
            if len % bt != 0 && table.blocks[len / bt].is_sealed() {
                return Err(NnError::BadSequence {
                    detail: format!(
                        "truncating to {len} positions cuts inside a sealed int8 block"
                    ),
                });
            }
        }
        match &mut self.store {
            KvStore::Contiguous(layers) => {
                for kv in layers {
                    kv.k.truncate(len);
                    kv.v.truncate(len);
                }
            }
            KvStore::Paged(table) => {
                let keep = table.pool.blocks_for(len);
                table.blocks.truncate(keep);
            }
        }
        self.tokens.truncate(len);
        self.len = len;
        Ok(())
    }

    /// How many positions can be written from here and still be rewound
    /// *exactly* by [`KvCache::truncate`]. Contiguous and f32-paged caches
    /// rewind anywhere (`usize::MAX` — f32 blocks never seal); on an int8
    /// pool the answer is the distance to the next seal boundary, because
    /// writing a block's final position quantizes it irreversibly. The
    /// speculative decoder caps each draft burst at this, so rejection
    /// rollbacks stay bit-exact on every KV dtype (a zero here just means
    /// one plain decode step, after which a fresh block opens).
    #[must_use]
    pub fn lossless_run(&self) -> usize {
        match &self.store {
            KvStore::Contiguous(_) => usize::MAX,
            KvStore::Paged(table) => {
                if table.pool.dtype() == crate::KvDtype::Int8 {
                    let bt = table.pool.block_tokens();
                    bt - 1 - (self.len % bt)
                } else {
                    usize::MAX
                }
            }
        }
    }
}

/// `y = x · Wᵀ` for a single row, via the tensor crate's matvec fast path.
/// When an int8 sidecar weight is supplied, the dot runs over the quantized
/// codes instead — the f32 matrix is not touched.
fn project(x: &[f32], w: &Matrix, q: Option<&QuantizedMatrix>) -> Vec<f32> {
    match q {
        Some(qw) => qw
            .matvec(x)
            .expect("projection shapes are fixed by the architecture"),
        None => w
            .matvec(x)
            .expect("projection shapes are fixed by the architecture"),
    }
}

/// `Y = X · Wᵀ` for a stack of rows, via the batched GEMM path. Row `r` of
/// the result is bit-identical to `project(x.row(r), w, q)`: both the f32
/// skinny-m kernel and the quantized batched kernel accumulate in matvec
/// order.
fn project_rows(x: &Matrix, w: &Matrix, q: Option<&QuantizedMatrix>) -> Matrix {
    match q {
        Some(qw) => qw
            .matmul_bt(x)
            .expect("projection shapes are fixed by the architecture"),
        None => x
            .matmul_bt(w)
            .expect("projection shapes are fixed by the architecture"),
    }
}

/// Fused per-head score→softmax→context for one query row against one
/// session's cached K/V rows, accumulating into `ctx` (which must arrive
/// zeroed). Scores go against every cached position (causal by
/// construction: the iterators only yield positions `<= pos`), are
/// normalised in place over the reusable scratch, and contracted against V
/// without allocating a per-head vector. Shared verbatim by
/// [`KvCache::decode_step`] and [`KvCache::decode_batch`] so the two paths
/// cannot drift numerically — and generic over the row iterators so the
/// contiguous and paged storage layouts run the *same* dot products in the
/// *same* order, which is what makes paged decoding bit-identical to
/// contiguous.
fn fused_attention<'a, K, V>(
    q: &[f32],
    keys: K,
    vals: V,
    n_heads: usize,
    head_dim: usize,
    scores: &mut Vec<f32>,
    ctx: &mut [f32],
) where
    K: Iterator<Item = KvRowRef<'a>> + Clone,
    V: Iterator<Item = KvRowRef<'a>> + Clone,
{
    let scale = 1.0 / (head_dim as f32).sqrt();
    let be = backend::active();
    for hh in 0..n_heads {
        let lo = hh * head_dim;
        let hi = lo + head_dim;
        scores.clear();
        scores.extend(keys.clone().map(|krow| {
            let s = match krow {
                // The f32 arm is byte-for-byte the pre-quantization code
                // path: it must stay bit-exact with the contiguous oracle.
                KvRowRef::F32(k) => ops::dot(&q[lo..hi], &k[lo..hi]),
                KvRowRef::Q8 { codes, scales } => be.dot_q8(&codes[lo..hi], scales[hh], &q[lo..hi]),
            };
            s * scale
        }));
        ops::softmax_inplace(scores);
        for (w, vrow) in scores.iter().zip(vals.clone()) {
            match vrow {
                KvRowRef::F32(v) => {
                    for (c, &vv) in ctx[lo..hi].iter_mut().zip(&v[lo..hi]) {
                        *c += w * vv;
                    }
                }
                KvRowRef::Q8 { codes, scales } => {
                    be.axpy_q8(*w, &codes[lo..hi], scales[hh], &mut ctx[lo..hi]);
                }
            }
        }
    }
}

/// Single-row RMSNorm (same ε as the batched path).
fn rmsnorm_row(x: &[f32], gain: &[f32]) -> Vec<f32> {
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let rms = (ms + 1e-5).sqrt();
    x.iter().zip(gain).map(|(&v, &g)| v * g / rms).collect()
}

/// Single-row rotary embedding (must match the batched implementation).
fn rope_row(x: &mut [f32], pos: usize, n_heads: usize, head_dim: usize) {
    for hh in 0..n_heads {
        let base = hh * head_dim;
        for i in 0..head_dim / 2 {
            let theta = pos as f32 * 10_000.0f32.powf(-2.0 * i as f32 / head_dim as f32);
            let (sin, cos) = theta.sin_cos();
            let a = x[base + 2 * i];
            let b = x[base + 2 * i + 1];
            x[base + 2 * i] = a * cos - b * sin;
            x[base + 2 * i + 1] = a * sin + b * cos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn model() -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("kv");
        arch.vocab_size = 99;
        Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(77)).expect("valid"))
    }

    #[test]
    fn cached_logits_match_full_forward() {
        let m = model();
        let tokens = [4u32, 9, 14, 19, 24, 29];
        let full = m.logits(&tokens).expect("ok");
        let mut cache = KvCache::new(&m);
        for (t, &tok) in tokens.iter().enumerate() {
            let row = cache.decode_step(tok).expect("ok");
            for v in 0..99 {
                let a = full.get(t, v).expect("in range");
                let b = row[v];
                assert!(
                    (a - b).abs() < 1e-3,
                    "mismatch at pos {t} vocab {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn prefill_matches_stepwise() {
        let m = model();
        let mut a = KvCache::new(&m);
        let last_a = a.prefill(&[5, 10, 15]).expect("ok");
        let mut b = KvCache::new(&m);
        b.decode_step(5).expect("ok");
        b.decode_step(10).expect("ok");
        let last_b = b.decode_step(15).expect("ok");
        assert_eq!(last_a, last_b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn cache_enforces_context_limit() {
        let m = model(); // max_seq_len = 32
        let mut cache = KvCache::new(&m);
        for i in 0..32 {
            cache.decode_step(4 + (i % 90) as u32).expect("ok");
        }
        assert!(matches!(
            cache.decode_step(4),
            Err(NnError::BadSequence { .. })
        ));
    }

    #[test]
    fn reset_cache_replays_like_a_fresh_one() {
        let m = model();
        let mut used = KvCache::new(&m);
        used.prefill(&[5, 10, 15, 20]).expect("ok");
        used.reset();
        assert!(used.is_empty());
        let replayed = used.prefill(&[7, 12, 17]).expect("ok");
        let mut fresh = KvCache::new(&m);
        let reference = fresh.prefill(&[7, 12, 17]).expect("ok");
        assert_eq!(replayed, reference, "reset must fully clear cached state");
        assert_eq!(used.len(), fresh.len());
    }

    #[test]
    fn decode_goes_through_matvec_fast_path() {
        // Per token: 7 projections (q,k,v,o,gate,up,down) × 2 layers plus
        // the LM head = 15 matvec calls; 3 tokens = 45. The counter is
        // process-wide, so assert a lower bound on the delta rather than an
        // exact count (other tests may decode concurrently).
        let m = model();
        let mut cache = KvCache::new(&m);
        let before = chipalign_tensor::tune::matvec_calls();
        cache.prefill(&[5, 10, 15]).expect("ok");
        let delta = chipalign_tensor::tune::matvec_calls() - before;
        assert!(delta >= 45, "expected >= 45 matvec calls, saw {delta}");
    }

    #[test]
    fn rejects_bad_tokens_and_empty_prefill() {
        let m = model();
        let mut cache = KvCache::new(&m);
        assert!(matches!(
            cache.decode_step(200),
            Err(NnError::BadToken { .. })
        ));
        assert!(cache.prefill(&[]).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn decode_batch_is_bitwise_identical_to_sequential() {
        // Ragged histories: every session enters the batch at a different
        // cache length, and the batch runs for several rounds so the
        // lengths stay staggered throughout.
        let m = model();
        let histories: [&[u32]; 4] = [&[5], &[5, 10], &[5, 10, 15, 20], &[7, 3, 9, 22, 41, 2, 8]];
        let mk = |h: &&[u32]| {
            let mut c = KvCache::new(&m);
            c.prefill(h).expect("ok");
            c
        };
        let mut seq: Vec<KvCache> = histories.iter().map(mk).collect();
        let mut bat: Vec<KvCache> = histories.iter().map(mk).collect();

        for round in 0..3u32 {
            let toks: Vec<u32> = [11u32, 22, 33, 44].iter().map(|&t| t + round).collect();
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .zip(&toks)
                .map(|(c, &t)| c.decode_step(t).expect("ok"))
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).expect("ok");
            assert_eq!(got, expected, "round {round} drifted from sequential");
        }
        for (a, b) in seq.iter().zip(&bat) {
            assert_eq!(a.len(), b.len());
        }
    }

    fn quant_model() -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("kv");
        arch.vocab_size = 99;
        let mut m = TinyLm::new(&arch, &mut Pcg32::seed(77)).expect("valid");
        m.quantize();
        Arc::new(m)
    }

    #[test]
    fn quantized_decode_tracks_f32_within_tolerance() {
        // Same weights, same token stream (teacher-forced): the int8 decode
        // may drift from the f32 oracle only by the quantization error,
        // which for this architecture stays well under 0.25 per logit.
        let f32_m = model();
        let int8_m = quant_model();
        let mut f32_c = KvCache::new(&f32_m);
        let mut int8_c = KvCache::new(&int8_m);
        let tokens = [4u32, 9, 14, 19, 24, 29, 7, 3];
        for &t in &tokens {
            let a = f32_c.decode_step(t).expect("ok");
            let b = int8_c.decode_step(t).expect("ok");
            let max_diff = a
                .iter()
                .zip(&b)
                .fold(0.0f32, |acc, (x, y)| acc.max((x - y).abs()));
            assert!(
                max_diff <= 0.25,
                "int8 logits drifted {max_diff} from f32 at token {t}"
            );
        }
    }

    #[test]
    fn quantized_decode_is_deterministic() {
        // Two independent caches over the same quantized model agree
        // bitwise — int8 decode is as reproducible as f32 decode.
        let m = quant_model();
        let mut a = KvCache::new(&m);
        let mut b = KvCache::new(&m);
        for t in [5u32, 11, 42, 8] {
            assert_eq!(a.decode_step(t).expect("ok"), b.decode_step(t).expect("ok"));
        }
    }

    #[test]
    fn quantized_decode_batch_is_bitwise_identical_to_sequential() {
        // The int8 twin of the f32 batched-decode bit-identity pin.
        let m = quant_model();
        let histories: [&[u32]; 3] = [&[5], &[5, 10, 15], &[7, 3, 9, 22, 41]];
        let mk = |h: &&[u32]| {
            let mut c = KvCache::new(&m);
            c.prefill(h).expect("ok");
            c
        };
        let mut seq: Vec<KvCache> = histories.iter().map(mk).collect();
        let mut bat: Vec<KvCache> = histories.iter().map(mk).collect();
        for round in 0..3u32 {
            let toks: Vec<u32> = [11u32, 22, 33].iter().map(|&t| t + round).collect();
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .zip(&toks)
                .map(|(c, &t)| c.decode_step(t).expect("ok"))
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).expect("ok");
            assert_eq!(got, expected, "int8 round {round} drifted from sequential");
        }
    }

    #[test]
    fn decode_batch_handles_empty_and_single() {
        let m = model();
        let mut none: Vec<&mut KvCache> = Vec::new();
        assert!(KvCache::decode_batch(&mut none, &[])
            .expect("ok")
            .is_empty());

        let mut a = KvCache::new(&m);
        a.prefill(&[5, 6]).expect("ok");
        let mut reference = KvCache::new(&m);
        reference.prefill(&[5, 6]).expect("ok");
        let expected = reference.decode_step(7).expect("ok");
        let mut batch = [&mut a];
        let got = KvCache::decode_batch(&mut batch, &[7]).expect("ok");
        assert_eq!(got, vec![expected]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn decode_batch_validates_before_touching_any_session() {
        let m = model();
        let mut a = KvCache::new(&m);
        a.prefill(&[5, 6]).expect("ok");
        let mut b = KvCache::new(&m);
        b.prefill(&[5]).expect("ok");

        // Session/token count mismatch.
        {
            let mut batch = [&mut a, &mut b];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1]),
                Err(NnError::BadConfig { .. })
            ));
        }
        // Out-of-vocabulary token in the *second* slot: the first session
        // must not have advanced either.
        {
            let mut batch = [&mut a, &mut b];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1, 200]),
                Err(NnError::BadToken { .. })
            ));
        }
        // Same weights, different allocation: batching requires one Arc.
        let other = model();
        let mut c = KvCache::new(&other);
        c.prefill(&[5]).expect("ok");
        {
            let mut batch = [&mut a, &mut c];
            assert!(matches!(
                KvCache::decode_batch(&mut batch, &[1, 2]),
                Err(NnError::BadConfig { .. })
            ));
        }
        assert_eq!(a.len(), 2, "failed batches must not advance any session");
        assert_eq!(b.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn decode_batch_rejects_full_cache_without_side_effects() {
        let m = model(); // max_seq_len = 32
        let mut full = KvCache::new(&m);
        for i in 0..32 {
            full.decode_step(4 + (i % 90) as u32).expect("ok");
        }
        let mut fresh = KvCache::new(&m);
        fresh.prefill(&[5]).expect("ok");
        let mut batch = [&mut fresh, &mut full];
        assert!(matches!(
            KvCache::decode_batch(&mut batch, &[1, 2]),
            Err(NnError::BadSequence { .. })
        ));
        assert_eq!(fresh.len(), 1);
        assert_eq!(full.len(), 32);
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_to_one_shot() {
        let m = model();
        let prompt: Vec<u32> = (0..12).map(|i| 4 + (i * 7) % 90).collect();
        let mut one_shot = KvCache::new(&m);
        let reference = one_shot.prefill(&prompt).expect("ok");
        for split in [1usize, 3, 5, 11] {
            let mut chunked = KvCache::new(&m);
            let mut last = Vec::new();
            for chunk in prompt.chunks(split) {
                last = chunked.prefill_chunk(chunk).expect("ok");
            }
            assert_eq!(last, reference, "chunk size {split} drifted");
            assert_eq!(chunked.len(), one_shot.len());
            assert_eq!(chunked.tokens(), one_shot.tokens());
            // And the caches must continue identically.
            let a = chunked.decode_step(42).expect("ok");
            let b = one_shot.clone().decode_step(42).expect("ok");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_prefill_chunk_is_a_no_op() {
        let m = model();
        let mut cache = KvCache::new(&m);
        cache.prefill(&[5, 6]).expect("ok");
        let logits = cache.prefill_chunk(&[]).expect("ok");
        assert!(logits.is_empty());
        assert_eq!(cache.len(), 2);
        // One-shot prefill still rejects empty prompts.
        assert!(cache.prefill(&[]).is_err());
    }

    #[test]
    fn forked_prefix_continues_like_a_fresh_prefill() {
        let m = model();
        let prompt = [5u32, 10, 15, 20, 25, 30];
        let mut donor = KvCache::new(&m);
        donor.prefill(&prompt).expect("ok");
        // Advance the donor past the fork point: the fork must not see it.
        donor.decode_step(77).expect("ok");

        for p in [1usize, 3, 6] {
            let mut forked = donor.fork_from(p).expect("ok");
            assert_eq!(forked.len(), p);
            assert_eq!(forked.tokens(), &prompt[..p]);
            assert!(Arc::ptr_eq(forked.model(), donor.model()));

            let mut fresh = KvCache::new(&m);
            fresh.prefill(&prompt[..p]).expect("ok");
            let a = forked.decode_step(50).expect("ok");
            let b = fresh.decode_step(50).expect("ok");
            assert_eq!(a, b, "fork at {p} positions drifted from fresh prefill");
        }
    }

    #[test]
    fn fork_from_validates_positions_and_supports_zero() {
        let m = model();
        let mut donor = KvCache::new(&m);
        donor.prefill(&[5, 6, 7]).expect("ok");
        assert!(matches!(
            donor.fork_from(4),
            Err(NnError::BadSequence { .. })
        ));
        let empty = donor.fork_from(0).expect("ok");
        assert!(empty.is_empty());
        assert_eq!(empty.kv_bytes(), 0);
    }

    #[test]
    fn token_history_tracks_every_path() {
        let m = model();
        let mut a = KvCache::new(&m);
        a.prefill(&[5, 10]).expect("ok");
        a.decode_step(15).expect("ok");
        assert_eq!(a.tokens(), &[5, 10, 15]);

        let mut b = KvCache::new(&m);
        b.prefill(&[5]).expect("ok");
        {
            let mut batch = [&mut a, &mut b];
            KvCache::decode_batch(&mut batch, &[20, 25]).expect("ok");
        }
        assert_eq!(a.tokens(), &[5, 10, 15, 20]);
        assert_eq!(b.tokens(), &[5, 25]);

        a.reset();
        assert!(a.tokens().is_empty());
    }

    #[test]
    fn kv_bytes_counts_cached_rows() {
        let m = model();
        let arch = m.arch().clone();
        let mut cache = KvCache::new(&m);
        assert_eq!(cache.kv_bytes(), 0);
        cache.prefill(&[5, 6, 7]).expect("ok");
        assert_eq!(cache.kv_bytes(), arch.n_layers * 3 * 2 * arch.d_model * 4);
    }

    #[test]
    fn sessions_share_one_model_allocation() {
        let m = model();
        let base = Arc::strong_count(&m);
        let caches: Vec<KvCache> = (0..8).map(|_| KvCache::new(&m)).collect();
        assert_eq!(
            Arc::strong_count(&m),
            base + 8,
            "each cache must hold an Arc, not a model clone"
        );
        for c in &caches {
            assert!(Arc::ptr_eq(c.model(), &m));
        }
    }

    fn small_pool(max_blocks: usize) -> Arc<crate::KvPool> {
        crate::KvPool::new(crate::KvPoolConfig {
            block_tokens: 4,
            max_blocks,
            ..crate::KvPoolConfig::default()
        })
        .expect("valid pool config")
    }

    fn small_pool_q8(max_blocks: usize) -> Arc<crate::KvPool> {
        crate::KvPool::new(crate::KvPoolConfig {
            block_tokens: 4,
            max_blocks,
            dtype: crate::KvDtype::Int8,
        })
        .expect("valid pool config")
    }

    /// Asserts the KV8 serving contract for one logit row: every logit
    /// within [`KV8_LOGIT_TOL`] of the f32 oracle, and argmax agreement
    /// whenever the oracle's runner-up margin clears `2 × tol`.
    fn assert_kv8_tracks(f32_logits: &[f32], kv8_logits: &[f32], what: &str) {
        let max_diff = f32_logits
            .iter()
            .zip(kv8_logits)
            .fold(0.0f32, |acc, (a, b)| acc.max((a - b).abs()));
        assert!(
            max_diff <= KV8_LOGIT_TOL,
            "{what}: int8-KV logits drifted {max_diff} (> {KV8_LOGIT_TOL}) from f32"
        );
        let am = ops::argmax(f32_logits).expect("non-empty");
        let top = f32_logits[am];
        let runner_up = f32_logits
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != am)
            .fold(f32::NEG_INFINITY, |acc, (_, &v)| acc.max(v));
        if top - runner_up > 2.0 * KV8_LOGIT_TOL {
            assert_eq!(
                ops::argmax(kv8_logits).expect("non-empty"),
                am,
                "{what}: argmax flipped despite a {}-wide margin",
                top - runner_up
            );
        }
    }

    #[test]
    fn paged_decode_is_bitwise_identical_to_contiguous() {
        let m = model();
        let pool = small_pool(64);
        // 13 tokens with block_tokens = 4: three full blocks + a partial.
        let prompt: Vec<u32> = (0..13).map(|i| 4 + (i * 7) % 90).collect();
        let mut paged = KvCache::new_paged(&m, &pool);
        let mut flat = KvCache::new(&m);
        assert!(paged.is_paged() && !flat.is_paged());
        let a = paged.prefill(&prompt).expect("ok");
        let b = flat.prefill(&prompt).expect("ok");
        assert_eq!(a, b, "paged prefill logits must equal contiguous exactly");
        for t in [42u32, 7, 88] {
            assert_eq!(
                paged.decode_step(t).expect("ok"),
                flat.decode_step(t).expect("ok"),
                "paged decode drifted at token {t}"
            );
        }
        assert_eq!(paged.tokens(), flat.tokens());
        assert_eq!(paged.kv_bytes(), flat.kv_bytes());
        assert_eq!(paged.block_count(), pool.blocks_for(paged.len()));
        assert_eq!(pool.blocks_in_use(), paged.block_count());
    }

    #[test]
    fn paged_fork_aliases_blocks_and_cow_protects_both_branches() {
        let m = model();
        let pool = small_pool(64);
        let prompt = [5u32, 10, 15, 20, 25, 30]; // 2 blocks, tail half full
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&prompt).expect("ok");
        let blocks_before = pool.blocks_in_use();

        let mut fork = donor.fork_from(prompt.len()).expect("ok");
        assert_eq!(
            pool.blocks_in_use(),
            blocks_before,
            "a fork must allocate zero blocks"
        );
        assert_eq!(fork.block_ids(), donor.block_ids(), "blocks are aliased");

        // Diverge BOTH branches: each write into the shared tail block
        // must privatise it, never scribble over the other branch's rows.
        let fork_logits = fork.decode_step(50).expect("ok");
        let donor_logits = donor.decode_step(60).expect("ok");
        assert!(pool.cow_copies() >= 1, "shared tail writes must copy");
        assert_ne!(
            fork.block_ids().last(),
            donor.block_ids().last(),
            "diverged tails must be distinct blocks"
        );

        // Contiguous twins as the differential oracle.
        let mut ref_fork = KvCache::new(&m);
        ref_fork.prefill(&prompt).expect("ok");
        let mut ref_donor = ref_fork.clone();
        assert_eq!(fork_logits, ref_fork.decode_step(50).expect("ok"));
        assert_eq!(donor_logits, ref_donor.decode_step(60).expect("ok"));
        // And both branches keep decoding identically after the split.
        assert_eq!(
            fork.decode_step(51).expect("ok"),
            ref_fork.decode_step(51).expect("ok")
        );
        assert_eq!(
            donor.decode_step(61).expect("ok"),
            ref_donor.decode_step(61).expect("ok")
        );
    }

    #[test]
    fn pool_exhaustion_fails_cleanly_and_reset_releases_blocks() {
        let m = model();
        let pool = small_pool(2); // 8 positions at block_tokens = 4
        let mut cache = KvCache::new_paged(&m, &pool);
        cache
            .prefill(&[5, 6, 7, 8, 9, 10, 11, 12])
            .expect("8 positions fit in 2 blocks");
        assert_eq!(pool.blocks_free(), 0);
        let err = cache
            .decode_step(13)
            .expect_err("third block must be refused");
        assert!(matches!(err, NnError::PoolExhausted { .. }));
        assert_eq!(cache.len(), 8, "a refused step must not advance the cache");
        assert_eq!(cache.block_count(), 2);

        cache.reset();
        assert_eq!(pool.blocks_in_use(), 0, "reset returns blocks to the pool");
        cache
            .prefill(&[5, 6, 7])
            .expect("freed blocks are allocatable");
    }

    #[test]
    fn decode_batch_rejects_pool_exhaustion_without_side_effects() {
        let m = model();
        let pool = small_pool(3);
        let mk = |toks: &[u32]| {
            let mut c = KvCache::new_paged(&m, &pool);
            c.prefill(toks).expect("ok");
            c
        };
        // Both sessions sit exactly at a block boundary: the next token
        // needs one fresh block each, but only one is left in the pool.
        let mut a = mk(&[5, 6, 7, 8]);
        let mut b = mk(&[9, 10, 11, 12]);
        assert_eq!(pool.blocks_free(), 1);
        {
            let mut batch = [&mut a, &mut b];
            let err = KvCache::decode_batch(&mut batch, &[1, 2]).expect_err("pool short");
            assert!(matches!(err, NnError::PoolExhausted { .. }));
        }
        assert_eq!(a.len(), 4, "failed batches must not advance any session");
        assert_eq!(b.len(), 4);
        assert_eq!(
            pool.blocks_in_use(),
            2,
            "the first session's speculative block must be returned"
        );
        // Freeing one session lets the other proceed.
        b.reset();
        a.decode_step(1).expect("pool has room again");
    }

    #[test]
    fn mixed_paged_and_contiguous_batch_matches_sequential() {
        let m = model();
        let pool = small_pool(64);
        let histories: [&[u32]; 3] = [&[5], &[5, 10, 15, 20], &[7, 3, 9, 22, 41]];
        let mk = |h: &&[u32], paged: bool| {
            let mut c = if paged {
                KvCache::new_paged(&m, &pool)
            } else {
                KvCache::new(&m)
            };
            c.prefill(h).expect("ok");
            c
        };
        let mut seq: Vec<KvCache> = histories
            .iter()
            .enumerate()
            .map(|(i, h)| mk(h, i % 2 == 0))
            .collect();
        let mut bat: Vec<KvCache> = histories
            .iter()
            .enumerate()
            .map(|(i, h)| mk(h, i % 2 == 0))
            .collect();
        for round in 0..3u32 {
            let toks: Vec<u32> = [11u32, 22, 33].iter().map(|&t| t + round).collect();
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .zip(&toks)
                .map(|(c, &t)| c.decode_step(t).expect("ok"))
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).expect("ok");
            assert_eq!(got, expected, "round {round} drifted from sequential");
        }
    }

    #[test]
    fn contiguous_cache_reports_no_pool_state() {
        let m = model();
        let mut flat = KvCache::new(&m);
        flat.prefill(&[5, 6, 7]).expect("ok");
        assert!(flat.pool().is_none());
        assert_eq!(flat.block_count(), 0);
        assert!(flat.block_ids().is_empty());
    }

    #[test]
    fn kv8_decode_tracks_f32_within_tolerance() {
        // Teacher-forced greedy pin: same weights, same token stream, the
        // only difference is int8-sealed KV blocks. Covers several sealed
        // blocks plus a partial f32 tail at every step.
        let m = model();
        let pool = small_pool_q8(64);
        let mut kv8 = KvCache::new_paged(&m, &pool);
        let mut oracle = KvCache::new(&m);
        let tokens: Vec<u32> = (0..14).map(|i| 4 + (i * 7) % 90).collect();
        for &t in &tokens {
            let a = oracle.decode_step(t).expect("ok");
            let b = kv8.decode_step(t).expect("ok");
            assert_kv8_tracks(&a, &b, &format!("decode at token {t}"));
        }
    }

    #[test]
    fn kv8_chunked_prefill_is_bitwise_identical_to_one_shot() {
        // Sealing is a pure function of position, so chunk boundaries must
        // not change which rows get quantized — the logits are bit-equal,
        // not merely within tolerance.
        let m = model();
        let prompt: Vec<u32> = (0..11).map(|i| 4 + (i * 13) % 90).collect();
        let mut one_shot = KvCache::new_paged(&m, &small_pool_q8(64));
        let a = one_shot.prefill(&prompt).expect("ok");
        let mut chunked = KvCache::new_paged(&m, &small_pool_q8(64));
        let mut b = Vec::new();
        for chunk in prompt.chunks(3) {
            b = chunked.prefill_chunk(chunk).expect("ok");
        }
        assert_eq!(a, b, "chunk boundaries changed int8 sealing");
        for t in [42u32, 7, 88] {
            assert_eq!(
                one_shot.decode_step(t).expect("ok"),
                chunked.decode_step(t).expect("ok"),
                "post-prefill decode drifted at token {t}"
            );
        }
    }

    #[test]
    fn kv8_decode_batch_is_bitwise_identical_to_sequential() {
        let m = model();
        let pool = small_pool_q8(64);
        let histories: [&[u32]; 3] = [&[5, 10], &[5, 10, 15, 20, 25], &[7, 3, 9, 22, 41, 2, 8]];
        let mk = |h: &&[u32]| {
            let mut c = KvCache::new_paged(&m, &pool);
            c.prefill(h).expect("ok");
            c
        };
        let mut seq: Vec<KvCache> = histories.iter().map(mk).collect();
        let mut bat: Vec<KvCache> = histories.iter().map(mk).collect();
        for round in 0..4u32 {
            let toks: Vec<u32> = [11u32, 22, 33].iter().map(|&t| t + round).collect();
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .zip(&toks)
                .map(|(c, &t)| c.decode_step(t).expect("ok"))
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).expect("ok");
            assert_eq!(got, expected, "round {round} drifted from sequential");
        }
    }

    #[test]
    fn kv8_fork_at_block_boundary_is_lossless_and_aliases_blocks() {
        // A fork cut on a block boundary only shares sealed blocks, so the
        // branch continues exactly like a fresh int8 cache replaying the
        // same prefix (no dequant→requant anywhere).
        let m = model();
        let pool = small_pool_q8(64);
        let prompt = [5u32, 10, 15, 20, 25, 30, 35, 40]; // 2 sealed blocks
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&prompt).expect("ok");
        let blocks_before = pool.blocks_in_use();
        let mut fork = donor.fork_from(prompt.len()).expect("ok");
        assert_eq!(pool.blocks_in_use(), blocks_before);

        let mut replay = KvCache::new_paged(&m, &pool);
        replay.prefill(&prompt).expect("ok");
        for t in [50u32, 51, 52] {
            assert_eq!(
                fork.decode_step(t).expect("ok"),
                replay.decode_step(t).expect("ok"),
                "boundary fork drifted at token {t}"
            );
        }
    }

    #[test]
    fn kv8_fork_inside_sealed_block_unseals_and_stays_within_tolerance() {
        // Cutting strictly inside a sealed block forces the lossy unseal
        // path (dequant the kept prefix rows back to f32). The branch must
        // still track the f32 oracle within the serving tolerance.
        let m = model();
        let pool = small_pool_q8(64);
        let prompt = [5u32, 10, 15, 20, 25, 30, 35, 40];
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&prompt).expect("ok");
        assert_eq!(
            donor.aligned_fork_len(6),
            4,
            "cut at 6 lands in a sealed block"
        );

        let cows_before = pool.cow_copies();
        let mut fork = donor.fork_from(6).expect("ok");
        let mut oracle = KvCache::new(&m);
        oracle.prefill(&prompt[..6]).expect("ok");
        for t in [50u32, 51, 52] {
            let a = oracle.decode_step(t).expect("ok");
            let b = fork.decode_step(t).expect("ok");
            assert_kv8_tracks(&a, &b, &format!("unsealed fork at token {t}"));
        }
        assert!(
            pool.cow_copies() > cows_before,
            "unsealing must be counted as a CoW copy"
        );
        // The donor's own blocks are untouched by the fork's unseal.
        let mut ref_donor = KvCache::new_paged(&m, &small_pool_q8(64));
        ref_donor.prefill(&prompt).expect("ok");
        assert_eq!(
            donor.decode_step(60).expect("ok"),
            ref_donor.decode_step(60).expect("ok")
        );
    }

    #[test]
    fn kv8_window_slide_replay_stays_within_tolerance() {
        // Window slide = reset + replay of the kept window, exactly how
        // StepDecoder::begin_slide drives it.
        let m = model();
        let pool = small_pool_q8(64);
        let mut kv8 = KvCache::new_paged(&m, &pool);
        let mut oracle = KvCache::new(&m);
        let history: Vec<u32> = (0..12).map(|i| 4 + (i * 11) % 90).collect();
        kv8.prefill(&history).expect("ok");
        oracle.prefill(&history).expect("ok");

        let window = &history[6..];
        kv8.reset();
        oracle.reset();
        let b = kv8.prefill(window).expect("ok");
        let a = oracle.prefill(window).expect("ok");
        assert_kv8_tracks(&a, &b, "slide replay prefill");
        for t in [50u32, 51] {
            let a = oracle.decode_step(t).expect("ok");
            let b = kv8.decode_step(t).expect("ok");
            assert_kv8_tracks(&a, &b, &format!("post-slide decode at token {t}"));
        }
    }

    #[test]
    fn kv8_block_ids_report_sealed_bytes() {
        let m = model();
        let pool = small_pool_q8(64);
        let arch = m.arch();
        let sealed = pool.sealed_block_bytes(arch.n_layers, arch.d_model, arch.n_heads);
        let born = pool.block_bytes(arch.n_layers, arch.d_model);
        assert!(sealed < born, "int8 sealing must shrink blocks");

        let mut cache = KvCache::new_paged(&m, &pool);
        cache.prefill(&[5, 6, 7, 8, 9, 10]).expect("ok"); // 1 sealed + tail
        let ids = cache.block_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].1, sealed, "sealed block charged at int8 size");
        assert_eq!(ids[1].1, born, "open tail still charged at f32 size");
        assert_eq!(pool.bytes_in_use(), sealed + born);

        cache.reset();
        assert_eq!(pool.bytes_in_use(), 0, "reset returns every byte");
    }

    #[test]
    fn aligned_fork_len_rounds_only_into_sealed_blocks() {
        let m = model();
        let mut kv8 = KvCache::new_paged(&m, &small_pool_q8(64));
        kv8.prefill(&[5, 6, 7, 8, 9, 10]).expect("ok"); // sealed block + 2-row tail
        assert_eq!(kv8.aligned_fork_len(4), 4, "boundary cuts pass through");
        assert_eq!(kv8.aligned_fork_len(3), 0, "mid-sealed cuts round down");
        assert_eq!(kv8.aligned_fork_len(6), 6, "cuts in the f32 tail are exact");
        assert_eq!(kv8.aligned_fork_len(99), 6, "lengths clamp to the cache");

        let mut f32_paged = KvCache::new_paged(&m, &small_pool(64));
        f32_paged.prefill(&[5, 6, 7, 8, 9, 10]).expect("ok");
        assert_eq!(f32_paged.aligned_fork_len(3), 3, "f32 blocks never seal");

        let mut flat = KvCache::new(&m);
        flat.prefill(&[5, 6, 7]).expect("ok");
        assert_eq!(flat.aligned_fork_len(2), 2, "contiguous caches are exact");
    }

    #[test]
    fn kv8_pool_bytes_shrink_as_blocks_seal() {
        let m = model();
        let pool = small_pool_q8(64);
        let arch = m.arch();
        let born = pool.block_bytes(arch.n_layers, arch.d_model);
        let sealed = pool.sealed_block_bytes(arch.n_layers, arch.d_model, arch.n_heads);
        let mut cache = KvCache::new_paged(&m, &pool);
        cache.prefill(&[5, 6, 7]).expect("ok"); // tail only, still f32
        assert_eq!(pool.bytes_in_use(), born);
        cache.decode_step(8).expect("ok"); // fills row 3 → block seals
        assert_eq!(pool.bytes_in_use(), sealed);
    }

    #[test]
    fn verify_chunk_is_bitwise_identical_to_sequential() {
        // The speculative-verification forward must agree bit-for-bit with
        // stepping the same tokens one at a time, on every storage layout
        // and weight dtype — chunks crossing block (and int8 seal)
        // boundaries included.
        let chunk = [11u32, 22, 33, 44, 55, 66];
        let prompt = [5u32, 10, 15];
        let cases: Vec<(&str, KvCache)> = vec![
            ("contiguous", KvCache::new(&model())),
            ("paged f32", KvCache::new_paged(&model(), &small_pool(64))),
            ("int8 weights", KvCache::new(&quant_model())),
            ("int8 kv", KvCache::new_paged(&model(), &small_pool_q8(64))),
        ];
        for (what, mut bat) in cases {
            bat.prefill(&prompt).expect("ok");
            let mut seq = bat.clone();
            let expected: Vec<Vec<f32>> = chunk
                .iter()
                .map(|&t| seq.decode_step(t).expect("ok"))
                .collect();
            let got = bat.verify_chunk(&chunk).expect("ok");
            assert_eq!(got, expected, "{what}: chunk drifted from sequential");
            assert_eq!(bat.len(), seq.len(), "{what}");
            assert_eq!(bat.tokens(), seq.tokens(), "{what}");
            // And both caches keep decoding identically afterwards.
            assert_eq!(
                bat.decode_step(42).expect("ok"),
                seq.decode_step(42).expect("ok"),
                "{what}: post-chunk decode drifted"
            );
        }
    }

    #[test]
    fn verify_chunk_validates_and_rolls_back_without_side_effects() {
        let m = model();
        // Empty chunk is a no-op; single token takes the matvec path.
        let mut a = KvCache::new(&m);
        a.prefill(&[5, 6]).expect("ok");
        assert!(a.verify_chunk(&[]).expect("ok").is_empty());
        assert_eq!(a.len(), 2);

        // Out-of-vocabulary token in the *second* slot: nothing advances.
        assert!(matches!(
            a.verify_chunk(&[1, 200]),
            Err(NnError::BadToken { .. })
        ));
        assert_eq!(a.len(), 2);

        // Chunks past the skinny-GEMM bound lose the bit-identity
        // guarantee and are refused outright.
        let huge = vec![1u32; chipalign_tensor::tune::GEMM_SKINNY_M_MAX + 1];
        assert!(matches!(
            a.verify_chunk(&huge),
            Err(NnError::BadConfig { .. })
        ));

        // Context overflow: 2 cached + 31 > 32.
        let wide = vec![1u32; 31];
        assert!(matches!(
            a.verify_chunk(&wide),
            Err(NnError::BadSequence { .. })
        ));
        assert_eq!(a.len(), 2);

        // Pool exhaustion mid-chunk unwinds every reserved block.
        let pool = small_pool(2); // 8 positions
        let mut p = KvCache::new_paged(&m, &pool);
        p.prefill(&[5, 6, 7]).expect("ok");
        let err = p
            .verify_chunk(&[1, 2, 3, 4, 5, 6])
            .expect_err("9 positions need 3 blocks");
        assert!(matches!(err, NnError::PoolExhausted { .. }));
        assert_eq!(p.len(), 3, "failed chunks must not advance the cache");
        assert_eq!(p.block_count(), 1, "reserved blocks must be returned");
        assert_eq!(pool.blocks_in_use(), 1);
        // The cache still works — and matches a never-failed twin.
        let mut twin = KvCache::new_paged(&m, &small_pool(2));
        twin.prefill(&[5, 6, 7]).expect("ok");
        assert_eq!(
            p.verify_chunk(&[1, 2, 3]).expect("ok"),
            twin.verify_chunk(&[1, 2, 3]).expect("ok")
        );
    }

    #[test]
    fn truncate_rewinds_exactly_on_f32_stores() {
        // Decode past the cut, truncate back, re-decode different tokens:
        // the result must be bit-identical to a cache that never saw the
        // rejected rows. Exercises both storage layouts, with the paged cut
        // landing mid-block.
        let m = model();
        for paged in [false, true] {
            let pool = small_pool(64);
            let mk = || {
                if paged {
                    KvCache::new_paged(&m, &pool)
                } else {
                    KvCache::new(&m)
                }
            };
            let mut cache = mk();
            cache.prefill(&[5, 10, 15, 20, 25]).expect("ok");
            cache.verify_chunk(&[30, 35, 40]).expect("ok");
            let blocks_grown = cache.block_count();
            cache.truncate(6).expect("cut lands mid-block");
            assert_eq!(cache.len(), 6);
            assert_eq!(cache.tokens(), &[5, 10, 15, 20, 25, 30]);
            if paged {
                assert_eq!(cache.block_count(), pool.blocks_for(6));
                assert!(cache.block_count() < blocks_grown, "tail block released");
            }

            let mut fresh = mk();
            fresh.prefill(&[5, 10, 15, 20, 25, 30]).expect("ok");
            for t in [81u32, 82, 83] {
                assert_eq!(
                    cache.decode_step(t).expect("ok"),
                    fresh.decode_step(t).expect("ok"),
                    "paged={paged}: truncated cache drifted at token {t}"
                );
            }
        }
    }

    #[test]
    fn truncate_validates_length_and_sealed_cuts() {
        let m = model();
        let mut flat = KvCache::new(&m);
        flat.prefill(&[5, 6, 7]).expect("ok");
        assert!(matches!(flat.truncate(4), Err(NnError::BadSequence { .. })));
        flat.truncate(3).expect("no-op truncate is fine");
        assert_eq!(flat.len(), 3);

        // Int8 pool: cuts inside a sealed block are refused (the rewind
        // would be lossy); boundary cuts and f32-tail cuts are exact.
        let mut kv8 = KvCache::new_paged(&m, &small_pool_q8(64));
        kv8.prefill(&[5, 6, 7, 8, 9, 10]).expect("ok"); // sealed + 2-row tail
        assert!(matches!(kv8.truncate(3), Err(NnError::BadSequence { .. })));
        assert_eq!(kv8.len(), 6, "a refused truncate must not change the cache");
        kv8.truncate(5).expect("cut in the open f32 tail is exact");
        kv8.truncate(4)
            .expect("boundary cut keeps the sealed block whole");
        let mut replay = KvCache::new_paged(&m, &small_pool_q8(64));
        replay.prefill(&[5, 6, 7, 8]).expect("ok");
        assert_eq!(
            kv8.decode_step(50).expect("ok"),
            replay.decode_step(50).expect("ok"),
            "boundary-truncated kv8 cache drifted from a fresh replay"
        );
    }

    #[test]
    fn lossless_run_measures_distance_to_the_next_seal() {
        let m = model();
        assert_eq!(KvCache::new(&m).lossless_run(), usize::MAX);

        let mut f32_paged = KvCache::new_paged(&m, &small_pool(64));
        f32_paged.prefill(&[5, 6, 7]).expect("ok");
        assert_eq!(
            f32_paged.lossless_run(),
            usize::MAX,
            "f32 blocks never seal"
        );

        let mut kv8 = KvCache::new_paged(&m, &small_pool_q8(64)); // bt = 4
        assert_eq!(kv8.lossless_run(), 3);
        kv8.prefill(&[5, 6]).expect("ok");
        assert_eq!(kv8.lossless_run(), 1);
        kv8.decode_step(7).expect("ok");
        assert_eq!(kv8.lossless_run(), 0, "the very next write would seal");
        kv8.decode_step(8).expect("ok"); // seals block 0, opens nothing yet
        assert_eq!(kv8.lossless_run(), 3, "a fresh block has 3 free rows");

        // The contract in action: a run within the bound truncates exactly.
        let run = kv8.lossless_run();
        kv8.verify_chunk(&[30, 35, 40][..run]).expect("ok");
        kv8.truncate(4)
            .expect("rewind within the lossless run is exact");
        let mut replay = KvCache::new_paged(&m, &small_pool_q8(64));
        replay.prefill(&[5, 6, 7, 8]).expect("ok");
        assert_eq!(
            kv8.decode_step(60).expect("ok"),
            replay.decode_step(60).expect("ok")
        );
    }
}

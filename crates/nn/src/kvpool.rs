//! Block-based KV pool: paged allocation for decoding sessions.
//!
//! A contiguous [`crate::KvCache`] owns its K/V rows outright, so node
//! capacity is bounded by `sessions × max_seq_len` even when most sessions
//! are short, and every prefix fork pays a deep copy. [`KvPool`] is the
//! vLLM-style alternative: K/V storage is carved into fixed-size *blocks*
//! of [`KvPoolConfig::block_tokens`] positions (all layers of a block live
//! together), sessions hold *block tables* — vectors of refcounted block
//! handles — and forking a prefix aliases blocks instead of copying rows.
//!
//! Sharing is safe because blocks are copy-on-write: before a session
//! writes into a partially filled tail block it checks whether the block
//! is uniquely owned ([`Arc::strong_count`] observed through
//! [`Arc::get_mut`]) and, if not, allocates a private copy from the pool
//! first. Forks take `&self` on the donor and writes take `&mut self`, so
//! a racing fork can only make a block look *more* shared than it is — a
//! spurious copy, never a missed one. Rows already written are immutable
//! (each position's K/V depends only on the tokens before it), which is
//! what makes aliasing the filled prefix of a block sound.
//!
//! The pool itself is an accounting object, not an arena: blocks own their
//! own heap buffers, and the pool tracks how many are alive against a
//! configured capacity so the serving layer can admit sessions by free
//! blocks and reject with a structured overload error instead of dying
//! mid-prefill. A [`BlockPermit`] drop guard inside every block returns
//! its slot when the last [`Arc`] clone is dropped.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::NnError;

/// Process-global block id source. Ids are unique across *every* pool, not
/// just within one, so downstream accounting (the serve prefix cache keys
/// block refcounts by bare id) stays correct when several models' pools
/// coexist. Starts at 1; 0 is never a valid id.
static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

fn next_block_id() -> u64 {
    NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed)
}

/// Configuration for a [`KvPool`].
#[derive(Debug, Clone)]
pub struct KvPoolConfig {
    /// Positions per block. Every block stores `block_tokens` K rows and
    /// `block_tokens` V rows for *every* layer, so a fork point is a token
    /// position, uniform across layers. Default 16.
    pub block_tokens: usize,
    /// Capacity of the pool in blocks. Allocation past this fails with
    /// [`NnError::PoolExhausted`]. Default 8192.
    pub max_blocks: usize,
}

impl Default for KvPoolConfig {
    fn default() -> Self {
        KvPoolConfig {
            block_tokens: 16,
            max_blocks: 8192,
        }
    }
}

/// A bounded allocator of fixed-size KV blocks, shared by every paged
/// session decoding against one model allocation.
///
/// Cheap to clone behind an [`Arc`]; all counters are atomic. See the
/// module docs for the sharing/copy-on-write protocol.
#[derive(Debug)]
pub struct KvPool {
    block_tokens: usize,
    max_blocks: usize,
    in_use: AtomicUsize,
    cow_copies: AtomicU64,
}

impl KvPool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `block_tokens` or `max_blocks`
    /// is zero.
    pub fn new(cfg: KvPoolConfig) -> Result<Arc<Self>, NnError> {
        if cfg.block_tokens == 0 {
            return Err(NnError::BadConfig {
                detail: "kv pool block_tokens must be >= 1".into(),
            });
        }
        if cfg.max_blocks == 0 {
            return Err(NnError::BadConfig {
                detail: "kv pool max_blocks must be >= 1".into(),
            });
        }
        Ok(Arc::new(KvPool {
            block_tokens: cfg.block_tokens,
            max_blocks: cfg.max_blocks,
            in_use: AtomicUsize::new(0),
            cow_copies: AtomicU64::new(0),
        }))
    }

    /// Positions stored per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Pool capacity in blocks.
    #[must_use]
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// Blocks currently alive (allocated and not yet dropped).
    #[must_use]
    pub fn blocks_in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Blocks still allocatable before the pool is exhausted.
    #[must_use]
    pub fn blocks_free(&self) -> usize {
        self.max_blocks.saturating_sub(self.blocks_in_use())
    }

    /// Copy-on-write block duplications performed so far (a shared tail
    /// block was about to be written and had to be privatised first).
    #[must_use]
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies.load(Ordering::Relaxed)
    }

    /// Blocks needed to store `tokens` positions at this pool's block size.
    #[must_use]
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Heap bytes of one block's K/V buffers for the given architecture
    /// shape: `n_layers × 2 (K and V) × block_tokens × d_model` floats.
    #[must_use]
    pub fn block_bytes(&self, n_layers: usize, d_model: usize) -> usize {
        n_layers * 2 * self.block_tokens * d_model * std::mem::size_of::<f32>()
    }

    /// Allocates a zeroed block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::PoolExhausted`] when the pool is at capacity.
    pub(crate) fn alloc_block(
        self: &Arc<Self>,
        n_layers: usize,
        d_model: usize,
    ) -> Result<KvBlock, NnError> {
        let permit = self.take_permit()?;
        let row_floats = self.block_tokens * d_model;
        Ok(KvBlock {
            layers: (0..n_layers)
                .map(|_| BlockLayer {
                    k: vec![0.0; row_floats],
                    v: vec![0.0; row_floats],
                })
                .collect(),
            id: next_block_id(),
            _permit: permit,
        })
    }

    /// Allocates a private copy of `src` (the copy-on-write step) and
    /// counts it in [`KvPool::cow_copies`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::PoolExhausted`] when the pool is at capacity.
    pub(crate) fn alloc_block_from(self: &Arc<Self>, src: &KvBlock) -> Result<KvBlock, NnError> {
        let permit = self.take_permit()?;
        self.cow_copies.fetch_add(1, Ordering::Relaxed);
        Ok(KvBlock {
            layers: src.layers.clone(),
            id: next_block_id(),
            _permit: permit,
        })
    }

    fn take_permit(self: &Arc<Self>) -> Result<BlockPermit, NnError> {
        let admitted = self
            .in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.max_blocks).then_some(n + 1)
            });
        match admitted {
            Ok(_) => Ok(BlockPermit {
                pool: Arc::clone(self),
            }),
            Err(in_use) => Err(NnError::PoolExhausted {
                in_use,
                capacity: self.max_blocks,
            }),
        }
    }
}

/// One layer's slice of a block: `block_tokens × d_model` rotary-encoded
/// keys and as many values, row-major, zero-filled until written.
#[derive(Debug, Clone)]
pub(crate) struct BlockLayer {
    pub(crate) k: Vec<f32>,
    pub(crate) v: Vec<f32>,
}

/// A fixed-size span of KV storage: `block_tokens` positions across every
/// layer. Shared between sessions via [`Arc`]; the embedded permit returns
/// the pool slot when the last clone drops.
#[derive(Debug)]
pub(crate) struct KvBlock {
    pub(crate) layers: Vec<BlockLayer>,
    /// Unique, never-reused identity (process-global monotonic counter) so
    /// the serving layer can account shared blocks without pointer-reuse
    /// hazards, even across distinct pools.
    pub(crate) id: u64,
    _permit: BlockPermit,
}

/// Drop guard decrementing the owning pool's in-use count.
#[derive(Debug)]
struct BlockPermit {
    pool: Arc<KvPool>,
}

impl Drop for BlockPermit {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max_blocks: usize) -> Arc<KvPool> {
        KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks,
        })
        .expect("valid config")
    }

    #[test]
    fn config_validation() {
        assert!(KvPool::new(KvPoolConfig {
            block_tokens: 0,
            max_blocks: 1,
        })
        .is_err());
        assert!(KvPool::new(KvPoolConfig {
            block_tokens: 1,
            max_blocks: 0,
        })
        .is_err());
        let p = KvPool::new(KvPoolConfig::default()).expect("default is valid");
        assert_eq!(p.block_tokens(), 16);
        assert_eq!(p.blocks_free(), p.max_blocks());
    }

    #[test]
    fn permits_bound_allocation_and_release_on_drop() {
        let p = pool(2);
        let a = p.alloc_block(2, 8).expect("first");
        let b = p.alloc_block(2, 8).expect("second");
        assert_eq!(p.blocks_in_use(), 2);
        assert_eq!(p.blocks_free(), 0);
        let err = p.alloc_block(2, 8).expect_err("pool is full");
        assert!(matches!(
            err,
            NnError::PoolExhausted {
                in_use: 2,
                capacity: 2
            }
        ));
        drop(a);
        assert_eq!(p.blocks_free(), 1);
        let c = p.alloc_block(2, 8).expect("slot freed");
        assert_ne!(b.id, c.id, "block ids are never reused");
        drop(b);
        drop(c);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn shared_blocks_hold_one_permit() {
        let p = pool(4);
        let block = Arc::new(p.alloc_block(1, 4).expect("alloc"));
        let aliases: Vec<_> = (0..5).map(|_| Arc::clone(&block)).collect();
        assert_eq!(p.blocks_in_use(), 1, "aliasing is free");
        drop(aliases);
        assert_eq!(p.blocks_in_use(), 1);
        drop(block);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn cow_copy_duplicates_content_and_counts() {
        let p = pool(4);
        let mut src = p.alloc_block(2, 4).expect("alloc");
        src.layers[1].k[3] = 7.5;
        src.layers[0].v[0] = -2.0;
        let copy = p.alloc_block_from(&src).expect("copy");
        assert_eq!(copy.layers[1].k[3], 7.5);
        assert_eq!(copy.layers[0].v[0], -2.0);
        assert_ne!(copy.id, src.id);
        assert_eq!(p.cow_copies(), 1);
        assert_eq!(p.blocks_in_use(), 2);
    }

    #[test]
    fn sizing_helpers() {
        let p = pool(8); // block_tokens = 4
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(4), 1);
        assert_eq!(p.blocks_for(5), 2);
        // 2 layers × 2 (K,V) × 4 tokens × 8 dims × 4 bytes.
        assert_eq!(p.block_bytes(2, 8), 2 * 2 * 4 * 8 * 4);
    }
}

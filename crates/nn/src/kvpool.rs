//! Block-based KV pool: paged allocation for decoding sessions.
//!
//! A contiguous [`crate::KvCache`] owns its K/V rows outright, so node
//! capacity is bounded by `sessions × max_seq_len` even when most sessions
//! are short, and every prefix fork pays a deep copy. [`KvPool`] is the
//! vLLM-style alternative: K/V storage is carved into fixed-size *blocks*
//! of [`KvPoolConfig::block_tokens`] positions (all layers of a block live
//! together), sessions hold *block tables* — vectors of refcounted block
//! handles — and forking a prefix aliases blocks instead of copying rows.
//!
//! Sharing is safe because blocks are copy-on-write: before a session
//! writes into a partially filled tail block it checks whether the block
//! is uniquely owned ([`Arc::strong_count`] observed through
//! [`Arc::get_mut`]) and, if not, allocates a private copy from the pool
//! first. Forks take `&self` on the donor and writes take `&mut self`, so
//! a racing fork can only make a block look *more* shared than it is — a
//! spurious copy, never a missed one. Rows already written are immutable
//! (each position's K/V depends only on the tokens before it), which is
//! what makes aliasing the filled prefix of a block sound.
//!
//! # KV dtypes
//!
//! A pool is created at a [`KvDtype`]: [`KvDtype::F32`] blocks store plain
//! `f32` rows forever, while [`KvDtype::Int8`] pools *seal* each block
//! layer the moment its last position is written — the `f32` rows are
//! replaced in place by `i8` codes plus per-head absmax scales, cutting
//! resident bytes ~4×. The open tail block always stays `f32`, so writes
//! and copy-on-write semantics are identical across dtypes, and the seal
//! trigger depends only on the token position, so chunked prefill, batched
//! decode, and one-shot prefill all quantize the exact same rows at the
//! exact same moment. Sealed blocks are immutable; the one way back is
//! [`KvPool::alloc_block_unsealed`], used when a fork lands mid-way into a
//! sealed block and the adopting session must regrow an `f32` tail from
//! the dequantized prefix.
//!
//! The pool itself is an accounting object, not an arena: blocks own their
//! own heap buffers, and the pool tracks how many are alive against a
//! configured capacity so the serving layer can admit sessions by free
//! blocks and reject with a structured overload error instead of dying
//! mid-prefill. A [`BlockPermit`] drop guard inside every block returns
//! its slot (and its resident bytes, kept current across sealing) when the
//! last [`Arc`] clone is dropped.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::NnError;

/// Process-global block id source. Ids are unique across *every* pool, not
/// just within one, so downstream accounting (the serve prefix cache keys
/// block refcounts by bare id) stays correct when several models' pools
/// coexist. Starts at 1; 0 is never a valid id.
static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

fn next_block_id() -> u64 {
    NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed)
}

/// Storage element type for a pool's sealed KV blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvDtype {
    /// Plain `f32` rows, bit-exact with the contiguous cache. The default,
    /// and the differential oracle for everything else.
    #[default]
    F32,
    /// Sealed blocks hold `i8` codes with per-head, per-block absmax
    /// scales (the open tail block stays `f32`). Transcripts are pinned
    /// within [`crate::kv::KV8_LOGIT_TOL`] of the f32 oracle.
    Int8,
}

impl KvDtype {
    /// Short stable identifier (`"f32"` / `"int8"`), used in metrics
    /// labels and bench columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KvDtype::F32 => "f32",
            KvDtype::Int8 => "int8",
        }
    }
}

/// Configuration for a [`KvPool`].
#[derive(Debug, Clone)]
pub struct KvPoolConfig {
    /// Positions per block. Every block stores `block_tokens` K rows and
    /// `block_tokens` V rows for *every* layer, so a fork point is a token
    /// position, uniform across layers. Default 16.
    pub block_tokens: usize,
    /// Capacity of the pool in blocks. Allocation past this fails with
    /// [`NnError::PoolExhausted`]. Default 8192.
    pub max_blocks: usize,
    /// Element type sealed blocks are stored at. Default [`KvDtype::F32`].
    pub dtype: KvDtype,
}

impl Default for KvPoolConfig {
    fn default() -> Self {
        KvPoolConfig {
            block_tokens: 16,
            max_blocks: 8192,
            dtype: KvDtype::F32,
        }
    }
}

/// A bounded allocator of fixed-size KV blocks, shared by every paged
/// session decoding against one model allocation.
///
/// Cheap to clone behind an [`Arc`]; all counters are atomic. See the
/// module docs for the sharing/copy-on-write protocol.
#[derive(Debug)]
pub struct KvPool {
    block_tokens: usize,
    max_blocks: usize,
    dtype: KvDtype,
    in_use: AtomicUsize,
    bytes_in_use: AtomicUsize,
    cow_copies: AtomicU64,
}

impl KvPool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `block_tokens` or `max_blocks`
    /// is zero.
    pub fn new(cfg: KvPoolConfig) -> Result<Arc<Self>, NnError> {
        if cfg.block_tokens == 0 {
            return Err(NnError::BadConfig {
                detail: "kv pool block_tokens must be >= 1".into(),
            });
        }
        if cfg.max_blocks == 0 {
            return Err(NnError::BadConfig {
                detail: "kv pool max_blocks must be >= 1".into(),
            });
        }
        Ok(Arc::new(KvPool {
            block_tokens: cfg.block_tokens,
            max_blocks: cfg.max_blocks,
            dtype: cfg.dtype,
            in_use: AtomicUsize::new(0),
            bytes_in_use: AtomicUsize::new(0),
            cow_copies: AtomicU64::new(0),
        }))
    }

    /// Positions stored per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Pool capacity in blocks.
    #[must_use]
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// The element type this pool seals blocks at.
    #[must_use]
    pub fn dtype(&self) -> KvDtype {
        self.dtype
    }

    /// Blocks currently alive (allocated and not yet dropped).
    #[must_use]
    pub fn blocks_in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Heap bytes of all live blocks at their *current* representation:
    /// open tail blocks count at f32 width, sealed int8 blocks at code +
    /// scale width. This is the gauge the serving layer exports.
    #[must_use]
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use.load(Ordering::Relaxed)
    }

    /// Blocks still allocatable before the pool is exhausted.
    #[must_use]
    pub fn blocks_free(&self) -> usize {
        self.max_blocks.saturating_sub(self.blocks_in_use())
    }

    /// Copy-on-write block duplications performed so far (a shared tail
    /// block was about to be written and had to be privatised first, or a
    /// sealed tail had to be dequantized back to an `f32` working copy).
    #[must_use]
    pub fn cow_copies(&self) -> u64 {
        self.cow_copies.load(Ordering::Relaxed)
    }

    /// Blocks needed to store `tokens` positions at this pool's block size.
    #[must_use]
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Heap bytes of one block's K/V buffers at f32 width for the given
    /// architecture shape: `n_layers × 2 (K and V) × block_tokens ×
    /// d_model` floats. Every block is born at this size (the open tail is
    /// always f32); see [`KvPool::sealed_block_bytes`] for the steady-state
    /// size after sealing.
    #[must_use]
    pub fn block_bytes(&self, n_layers: usize, d_model: usize) -> usize {
        n_layers * 2 * self.block_tokens * d_model * std::mem::size_of::<f32>()
    }

    /// Heap bytes of one *sealed* block at this pool's dtype: the f32 size
    /// for [`KvDtype::F32`], or `i8` codes plus `2 × n_heads` f32 scales
    /// per layer for [`KvDtype::Int8`] — the number that determines
    /// sessions-per-GB at steady state.
    #[must_use]
    pub fn sealed_block_bytes(&self, n_layers: usize, d_model: usize, n_heads: usize) -> usize {
        match self.dtype {
            KvDtype::F32 => self.block_bytes(n_layers, d_model),
            KvDtype::Int8 => {
                n_layers
                    * (2 * self.block_tokens * d_model + 2 * n_heads * std::mem::size_of::<f32>())
            }
        }
    }

    /// Allocates a zeroed f32 block (blocks are always born f32; int8
    /// pools quantize at seal time).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::PoolExhausted`] when the pool is at capacity.
    pub(crate) fn alloc_block(
        self: &Arc<Self>,
        n_layers: usize,
        d_model: usize,
    ) -> Result<KvBlock, NnError> {
        let bytes = self.block_bytes(n_layers, d_model);
        let permit = self.take_permit(bytes)?;
        let row_floats = self.block_tokens * d_model;
        Ok(KvBlock {
            layers: (0..n_layers)
                .map(|_| BlockLayer::F32 {
                    k: vec![0.0; row_floats],
                    v: vec![0.0; row_floats],
                })
                .collect(),
            id: next_block_id(),
            permit,
        })
    }

    /// Allocates a private copy of `src` (the copy-on-write step) and
    /// counts it in [`KvPool::cow_copies`]. The copy keeps `src`'s
    /// representation byte-for-byte (sealed stays sealed, f32 stays f32).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::PoolExhausted`] when the pool is at capacity.
    pub(crate) fn alloc_block_from(self: &Arc<Self>, src: &KvBlock) -> Result<KvBlock, NnError> {
        let bytes = src.bytes();
        let permit = self.take_permit(bytes)?;
        self.cow_copies.fetch_add(1, Ordering::Relaxed);
        Ok(KvBlock {
            layers: src.layers.clone(),
            id: next_block_id(),
            permit,
        })
    }

    /// Allocates a fresh f32 block seeded with the first `rows` positions
    /// of `src` dequantized (the *unseal* step: a fork landed mid-way into
    /// a sealed block, so the adopting session needs a writable f32 tail
    /// carrying the aliased prefix rows). Counted as a copy-on-write.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::PoolExhausted`] when the pool is at capacity.
    pub(crate) fn alloc_block_unsealed(
        self: &Arc<Self>,
        src: &KvBlock,
        rows: usize,
        d_model: usize,
        n_heads: usize,
    ) -> Result<KvBlock, NnError> {
        let n_layers = src.layers.len();
        let bytes = self.block_bytes(n_layers, d_model);
        let permit = self.take_permit(bytes)?;
        self.cow_copies.fetch_add(1, Ordering::Relaxed);
        let row_floats = self.block_tokens * d_model;
        Ok(KvBlock {
            layers: src
                .layers
                .iter()
                .map(|layer| layer.to_f32(rows, row_floats, d_model, n_heads))
                .collect(),
            id: next_block_id(),
            permit,
        })
    }

    fn take_permit(self: &Arc<Self>, bytes: usize) -> Result<BlockPermit, NnError> {
        let admitted = self
            .in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.max_blocks).then_some(n + 1)
            });
        match admitted {
            Ok(_) => {
                self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed);
                Ok(BlockPermit {
                    pool: Arc::clone(self),
                    bytes,
                })
            }
            Err(in_use) => Err(NnError::PoolExhausted {
                in_use,
                capacity: self.max_blocks,
            }),
        }
    }
}

/// Quantizes one f32 buffer of `block_tokens` rows (each `d` wide) to i8
/// codes with one absmax scale per head: `scale[h] = absmax(head h) / 127`,
/// `code = round(x / scale[h])`. An all-zero head gets scale 0 and all-zero
/// codes (dequantization multiplies by the scale, so 0 round-trips
/// exactly without dividing by zero).
fn quantize_per_head(values: &[f32], d: usize, n_heads: usize) -> (Vec<i8>, Vec<f32>) {
    let head_dim = d / n_heads;
    let mut scales = vec![0.0f32; n_heads];
    for (i, &x) in values.iter().enumerate() {
        let h = (i % d) / head_dim;
        if x.abs() > scales[h] {
            scales[h] = x.abs();
        }
    }
    for s in &mut scales {
        *s /= 127.0;
    }
    let codes = values
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let s = scales[(i % d) / head_dim];
            if s > 0.0 {
                (x / s).round().clamp(-127.0, 127.0) as i8
            } else {
                0
            }
        })
        .collect();
    (codes, scales)
}

/// One layer's slice of a block: `block_tokens × d_model` rotary-encoded
/// keys and as many values, row-major. Born [`BlockLayer::F32`]
/// (zero-filled until written); int8 pools convert the layer to
/// [`BlockLayer::Q8`] in place the moment its last position is written.
#[derive(Debug, Clone)]
pub(crate) enum BlockLayer {
    /// Plain rows — the only writable representation.
    F32 {
        /// Keys, `block_tokens × d_model` row-major.
        k: Vec<f32>,
        /// Values, same shape as `k`.
        v: Vec<f32>,
    },
    /// Sealed rows: i8 codes with one absmax scale per head (shared by
    /// every position in the block). Immutable.
    Q8 {
        /// Key codes, `block_tokens × d_model` row-major.
        k_codes: Vec<i8>,
        /// Value codes, same shape.
        v_codes: Vec<i8>,
        /// Per-head key scales (`n_heads` entries).
        k_scales: Vec<f32>,
        /// Per-head value scales (`n_heads` entries).
        v_scales: Vec<f32>,
    },
}

impl BlockLayer {
    /// Current heap bytes of this layer's buffers.
    pub(crate) fn bytes(&self) -> usize {
        match self {
            BlockLayer::F32 { k, v } => (k.len() + v.len()) * std::mem::size_of::<f32>(),
            BlockLayer::Q8 {
                k_codes,
                v_codes,
                k_scales,
                v_scales,
            } => {
                k_codes.len()
                    + v_codes.len()
                    + (k_scales.len() + v_scales.len()) * std::mem::size_of::<f32>()
            }
        }
    }

    /// Whether the layer has been quantized.
    pub(crate) fn is_sealed(&self) -> bool {
        matches!(self, BlockLayer::Q8 { .. })
    }

    /// Quantizes the layer in place (no-op if already sealed).
    fn seal(&mut self, d: usize, n_heads: usize) {
        if let BlockLayer::F32 { k, v } = self {
            let (k_codes, k_scales) = quantize_per_head(k, d, n_heads);
            let (v_codes, v_scales) = quantize_per_head(v, d, n_heads);
            *self = BlockLayer::Q8 {
                k_codes,
                v_codes,
                k_scales,
                v_scales,
            };
        }
    }

    /// An f32 working copy carrying the first `rows` positions (dequantized
    /// when sealed), zero elsewhere.
    fn to_f32(&self, rows: usize, row_floats: usize, d: usize, n_heads: usize) -> BlockLayer {
        match self {
            BlockLayer::F32 { k, v } => BlockLayer::F32 {
                k: k.clone(),
                v: v.clone(),
            },
            BlockLayer::Q8 {
                k_codes,
                v_codes,
                k_scales,
                v_scales,
            } => {
                let head_dim = d / n_heads;
                let expand = |codes: &[i8], scales: &[f32]| {
                    let mut out = vec![0.0f32; row_floats];
                    for (o, (i, &q)) in out.iter_mut().zip(codes.iter().enumerate()) {
                        if i >= rows * d {
                            break;
                        }
                        *o = f32::from(q) * scales[(i % d) / head_dim];
                    }
                    out
                };
                BlockLayer::F32 {
                    k: expand(k_codes, k_scales),
                    v: expand(v_codes, v_scales),
                }
            }
        }
    }
}

/// A fixed-size span of KV storage: `block_tokens` positions across every
/// layer. Shared between sessions via [`Arc`]; the embedded permit returns
/// the pool slot when the last clone drops.
#[derive(Debug)]
pub(crate) struct KvBlock {
    pub(crate) layers: Vec<BlockLayer>,
    /// Unique, never-reused identity (process-global monotonic counter) so
    /// the serving layer can account shared blocks without pointer-reuse
    /// hazards, even across distinct pools.
    pub(crate) id: u64,
    permit: BlockPermit,
}

impl KvBlock {
    /// Current heap bytes across all layers (tail f32 or sealed q8).
    pub(crate) fn bytes(&self) -> usize {
        self.layers.iter().map(BlockLayer::bytes).sum()
    }

    /// Whether the block has been fully quantized (layer 0 stands for all:
    /// layers seal in ascending order within one decode step, so a block
    /// is either all-f32 or all-q8 between steps, and the tail check in
    /// `prepare_position` runs only between steps).
    pub(crate) fn is_sealed(&self) -> bool {
        self.layers.first().is_some_and(BlockLayer::is_sealed)
    }

    /// Seals one layer in place if this block's pool is int8 (f32 pools
    /// never seal). Requires exclusive access, which the caller already
    /// holds for any write. Keeps the pool byte gauge and this block's
    /// permit in sync with the shrunken representation.
    pub(crate) fn seal_layer(&mut self, li: usize, d: usize, n_heads: usize) {
        if self.permit.pool.dtype != KvDtype::Int8 {
            return;
        }
        let before = self.layers[li].bytes();
        self.layers[li].seal(d, n_heads);
        let after = self.layers[li].bytes();
        self.permit.shrink(before.saturating_sub(after));
    }
}

/// Drop guard decrementing the owning pool's in-use count and resident
/// byte gauge.
#[derive(Debug)]
struct BlockPermit {
    pool: Arc<KvPool>,
    bytes: usize,
}

impl BlockPermit {
    /// Records that the block's buffers shrank by `delta` bytes (sealing).
    fn shrink(&mut self, delta: usize) {
        self.bytes -= delta;
        self.pool.bytes_in_use.fetch_sub(delta, Ordering::Relaxed);
    }
}

impl Drop for BlockPermit {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
        self.pool
            .bytes_in_use
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max_blocks: usize) -> Arc<KvPool> {
        KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks,
            dtype: KvDtype::F32,
        })
        .expect("valid config")
    }

    fn pool_q8(max_blocks: usize) -> Arc<KvPool> {
        KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks,
            dtype: KvDtype::Int8,
        })
        .expect("valid config")
    }

    /// Writes `val` at flat index `i` of layer `li`'s K (or V) buffer;
    /// only valid on unsealed layers.
    fn poke(block: &mut KvBlock, li: usize, key_side: bool, i: usize, val: f32) {
        match &mut block.layers[li] {
            BlockLayer::F32 { k, v } => {
                if key_side {
                    k[i] = val;
                } else {
                    v[i] = val;
                }
            }
            BlockLayer::Q8 { .. } => panic!("poking a sealed layer"),
        }
    }

    fn peek(block: &KvBlock, li: usize, key_side: bool, i: usize) -> f32 {
        match &block.layers[li] {
            BlockLayer::F32 { k, v } => {
                if key_side {
                    k[i]
                } else {
                    v[i]
                }
            }
            BlockLayer::Q8 { .. } => panic!("peeking a sealed layer"),
        }
    }

    #[test]
    fn config_validation() {
        assert!(KvPool::new(KvPoolConfig {
            block_tokens: 0,
            max_blocks: 1,
            dtype: KvDtype::F32,
        })
        .is_err());
        assert!(KvPool::new(KvPoolConfig {
            block_tokens: 1,
            max_blocks: 0,
            dtype: KvDtype::F32,
        })
        .is_err());
        let p = KvPool::new(KvPoolConfig::default()).expect("default is valid");
        assert_eq!(p.block_tokens(), 16);
        assert_eq!(p.dtype(), KvDtype::F32);
        assert_eq!(p.blocks_free(), p.max_blocks());
    }

    #[test]
    fn permits_bound_allocation_and_release_on_drop() {
        let p = pool(2);
        let a = p.alloc_block(2, 8).expect("first");
        let b = p.alloc_block(2, 8).expect("second");
        assert_eq!(p.blocks_in_use(), 2);
        assert_eq!(p.blocks_free(), 0);
        assert_eq!(p.bytes_in_use(), 2 * p.block_bytes(2, 8));
        let err = p.alloc_block(2, 8).expect_err("pool is full");
        assert!(matches!(
            err,
            NnError::PoolExhausted {
                in_use: 2,
                capacity: 2
            }
        ));
        drop(a);
        assert_eq!(p.blocks_free(), 1);
        let c = p.alloc_block(2, 8).expect("slot freed");
        assert_ne!(b.id, c.id, "block ids are never reused");
        drop(b);
        drop(c);
        assert_eq!(p.blocks_in_use(), 0);
        assert_eq!(p.bytes_in_use(), 0);
    }

    #[test]
    fn shared_blocks_hold_one_permit() {
        let p = pool(4);
        let block = Arc::new(p.alloc_block(1, 4).expect("alloc"));
        let aliases: Vec<_> = (0..5).map(|_| Arc::clone(&block)).collect();
        assert_eq!(p.blocks_in_use(), 1, "aliasing is free");
        drop(aliases);
        assert_eq!(p.blocks_in_use(), 1);
        drop(block);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn cow_copy_duplicates_content_and_counts() {
        let p = pool(4);
        let mut src = p.alloc_block(2, 4).expect("alloc");
        poke(&mut src, 1, true, 3, 7.5);
        poke(&mut src, 0, false, 0, -2.0);
        let copy = p.alloc_block_from(&src).expect("copy");
        assert_eq!(peek(&copy, 1, true, 3), 7.5);
        assert_eq!(peek(&copy, 0, false, 0), -2.0);
        assert_ne!(copy.id, src.id);
        assert_eq!(p.cow_copies(), 1);
        assert_eq!(p.blocks_in_use(), 2);
    }

    #[test]
    fn sizing_helpers() {
        let p = pool(8); // block_tokens = 4
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(4), 1);
        assert_eq!(p.blocks_for(5), 2);
        // 2 layers × 2 (K,V) × 4 tokens × 8 dims × 4 bytes.
        assert_eq!(p.block_bytes(2, 8), 2 * 2 * 4 * 8 * 4);
        // f32 pool: sealing changes nothing.
        assert_eq!(p.sealed_block_bytes(2, 8, 2), p.block_bytes(2, 8));
        // int8 pool: 1 byte per element plus 2 (K,V) × n_heads scales per
        // layer.
        let q = pool_q8(8);
        assert_eq!(q.sealed_block_bytes(2, 8, 2), 2 * (2 * 4 * 8 + 2 * 2 * 4));
    }

    #[test]
    fn sealing_shrinks_bytes_and_is_idempotent() {
        let q = pool_q8(4);
        let mut block = q.alloc_block(2, 8).expect("alloc");
        let born = q.block_bytes(2, 8);
        assert_eq!(q.bytes_in_use(), born);
        assert!(!block.is_sealed());
        block.seal_layer(0, 8, 2);
        block.seal_layer(1, 8, 2);
        assert!(block.is_sealed());
        assert_eq!(q.bytes_in_use(), q.sealed_block_bytes(2, 8, 2));
        // Re-sealing is a no-op, not a double subtraction.
        block.seal_layer(0, 8, 2);
        assert_eq!(q.bytes_in_use(), q.sealed_block_bytes(2, 8, 2));
        drop(block);
        assert_eq!(q.bytes_in_use(), 0);
        assert_eq!(q.blocks_in_use(), 0);
    }

    #[test]
    fn f32_pools_never_seal() {
        let p = pool(4);
        let mut block = p.alloc_block(1, 8).expect("alloc");
        block.seal_layer(0, 8, 2);
        assert!(!block.is_sealed(), "seal_layer is a no-op on f32 pools");
        assert_eq!(p.bytes_in_use(), p.block_bytes(1, 8));
    }

    #[test]
    fn quantize_round_trip_stays_within_half_step() {
        // One head spans 4 dims; absmax 12.7 gives a step of 0.1.
        let values = [0.05f32, -12.7, 3.21, 0.0, 1.0, -1.0, 0.5, -0.25];
        let (codes, scales) = quantize_per_head(&values, 4, 1);
        // Two rows of d=4, one head: a single scale across all 8 values.
        assert_eq!(scales.len(), 1);
        let step = scales[0];
        assert!((step - 12.7 / 127.0).abs() < 1e-6);
        for (&q, &x) in codes.iter().zip(&values) {
            let back = f32::from(q) * step;
            assert!(
                (back - x).abs() <= step / 2.0 + 1e-6,
                "round-trip of {x} drifted to {back}"
            );
        }
    }

    #[test]
    fn quantize_zero_head_round_trips_exactly() {
        let values = [0.0f32; 8];
        let (codes, scales) = quantize_per_head(&values, 4, 2);
        assert_eq!(scales, vec![0.0, 0.0]);
        assert!(codes.iter().all(|&q| q == 0));
    }

    #[test]
    fn unseal_recovers_prefix_rows_and_counts_cow() {
        let q = pool_q8(4);
        let mut block = q.alloc_block(1, 4).expect("alloc");
        // Fill 4 rows of d=4 with a recognisable ramp, then seal.
        for i in 0..16 {
            poke(&mut block, 0, true, i, i as f32 * 0.5);
            poke(&mut block, 0, false, i, -(i as f32) * 0.25);
        }
        block.seal_layer(0, 4, 2);
        let thawed = q
            .alloc_block_unsealed(&block, 2, 4, 2)
            .expect("unseal copy");
        assert!(!thawed.is_sealed());
        assert_eq!(q.cow_copies(), 1);
        // First 2 rows (8 values) round-trip within a quant step; the rest
        // are zeroed (they will be overwritten by the new tail's writes).
        for i in 0..8 {
            let step_k = 7.5 / 127.0; // absmax of the K ramp is 15·0.5
            assert!((peek(&thawed, 0, true, i) - i as f32 * 0.5).abs() <= step_k + 1e-6);
        }
        for i in 8..16 {
            assert_eq!(peek(&thawed, 0, true, i), 0.0);
            assert_eq!(peek(&thawed, 0, false, i), 0.0);
        }
    }
}

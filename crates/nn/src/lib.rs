//! A tiny, fully trainable LLaMA-style transformer, built from scratch.
//!
//! The ChipAlign paper merges multi-billion-parameter LLMs. Reproducing the
//! *mechanism* — an instruction-tuned and a domain-tuned specialist, both
//! finetuned from one base model, recombined in weight space — does not
//! require billions of parameters, but it does require real models trained
//! with real gradients. This crate is that substrate:
//!
//! * [`TinyLm`] — a decoder-only transformer with the LLaMA layer recipe
//!   (pre-RMSNorm, rotary-position attention, SwiGLU feed-forward, untied
//!   LM head), implemented with an explicit forward pass *and a complete
//!   manual backward pass* (no autograd dependency).
//! * [`CharTokenizer`] — a deterministic character-level tokenizer over
//!   printable ASCII plus `<pad>/<bos>/<eos>/<unk>`.
//! * [`loss`] — prompt-masked causal cross-entropy, so SFT examples only
//!   train on completion tokens (the paper's DAFT objective).
//! * [`Adam`] — the optimizer used for both pretraining and finetuning.
//! * [`LoraModel`] — low-rank adaptation of the frozen base (the paper's
//!   retrieval-augmented DAFT uses LoRA with rank 8, alpha 16).
//! * [`generate`]/[`score`] — greedy and temperature decoding, and the
//!   length-normalised answer log-likelihood used by the multi-choice chip
//!   QA benchmark (Figure 7).
//! * [`KvCache`] — incremental decoding over a shared (`Arc`) model, one
//!   cache per session, with [`KvCache::decode_batch`] advancing many
//!   sessions through one GEMM per projection — bit-identical to stepping
//!   each session alone, which is what lets the serving scheduler batch
//!   without changing a single output byte.
//! * [`QuantParamSet`] — optional per-row-scaled int8 copies of the decode
//!   projections (built by [`TinyLm::quantize`]); when attached, KV-cached
//!   decode streams int8 weights through the quantized kernels while
//!   training and the full f32 forward pass stay untouched.
//! * [`kvpool`] — a paged KV allocator: fixed-size token blocks, per-cache
//!   block tables, refcounted prefix aliasing with copy-on-write, so a
//!   prefix fork costs O(blocks) pointer clones instead of O(bytes) and
//!   short sessions stop reserving worst-case contiguous buffers. Paged
//!   decode is bit-identical to the contiguous path. Pools built with
//!   [`KvDtype::Int8`] additionally quantize each block to per-head-scaled
//!   i8 codes as it fills, shrinking resident KV bytes ~4× while pinning
//!   logits within [`KV8_LOGIT_TOL`] of the f32 oracle.
//! * [`spec`] — speculative decoding: a [`SpecDecoder`] wraps a target
//!   [`StepDecoder`] and a cheap draft model (a merge-family sibling, or a
//!   truncated-layer self-draft from [`TinyLm::truncate_layers`]), verifies
//!   drafted tokens in one batched forward via [`KvCache::verify_chunk`],
//!   and accepts the longest agreeing prefix — greedy output byte-identical
//!   to plain decoding by construction, with panic-isolated drafts.
//!
//! Models convert losslessly to and from [`chipalign_model::Checkpoint`],
//! which is what the merge crate operates on.
//!
//! # Example
//!
//! ```
//! use chipalign_model::ArchSpec;
//! use chipalign_nn::{CharTokenizer, TinyLm};
//! use chipalign_tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), chipalign_nn::NnError> {
//! let tok = CharTokenizer::new();
//! let mut arch = ArchSpec::tiny("demo");
//! arch.vocab_size = tok.vocab_size();
//! let model = TinyLm::new(&arch, &mut Pcg32::seed(1))?;
//! let ids = tok.encode("hello");
//! let logits = model.logits(&ids)?;
//! assert_eq!(logits.shape(), (ids.len(), tok.vocab_size()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod generate;
mod kv;
pub mod kvpool;
mod lora;
pub mod loss;
mod model;
mod optim;
mod params;
mod quant;
pub mod score;
pub mod spec;
mod tokenizer;
pub mod train;

pub use error::NnError;
pub use generate::{GenerateConfig, StepDecoder};
pub use kv::{KvCache, KV8_LOGIT_TOL};
pub use kvpool::{KvDtype, KvPool, KvPoolConfig};
pub use lora::{LoraConfig, LoraModel};
pub use model::{ForwardCache, TinyLm};
pub use optim::{Adam, AdamConfig};
pub use params::{LayerParams, ParamSet};
pub use quant::{QuantLayer, QuantParamSet};
pub use spec::{SpecDecoder, SpecStats, SPEC_K_MAX};
pub use tokenizer::{CharTokenizer, BOS, EOS, PAD, UNK};

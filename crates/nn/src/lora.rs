//! Low-rank adaptation (LoRA) of a frozen base model.
//!
//! The paper's domain specialists are produced by retrieval-augmented DAFT
//! using LoRA with rank 8 and alpha 16. This module reproduces that recipe:
//! every attention and MLP projection `W` gets a low-rank update
//! `W_eff = W + (α/r)·B·A` with `A ∈ R^{r×in}` (small normal init) and
//! `B ∈ R^{out×r}` (zero init, so training starts at the base model).
//! Only `A` and `B` receive gradients; the base stays frozen.

use chipalign_model::Checkpoint;
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::Matrix;

use crate::model::TinyLm;
use crate::optim::FlatAdam;
use crate::train::{Example, TrainConfig};
use crate::{loss, NnError};

/// LoRA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoraConfig {
    /// Adapter rank `r`.
    pub rank: usize,
    /// Scaling numerator `α`; the effective scale is `α / r`.
    pub alpha: usize,
}

impl Default for LoraConfig {
    /// The paper's DAFT recipe: rank 8, alpha 16.
    fn default() -> Self {
        LoraConfig { rank: 8, alpha: 16 }
    }
}

/// Which projections carry adapters, in fixed order per layer.
const TARGETS_PER_LAYER: usize = 7;

/// A LoRA-adapted model: frozen base plus trainable low-rank updates on
/// every q/k/v/o/gate/up/down projection.
///
/// # Example
///
/// ```
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::{LoraConfig, LoraModel, TinyLm};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("demo");
/// arch.vocab_size = 99;
/// let base = TinyLm::new(&arch, &mut Pcg32::seed(1))?;
/// let lora = LoraModel::new(base.clone(), LoraConfig::default(), &mut Pcg32::seed(2))?;
/// // B starts at zero, so the adapted model equals the base model.
/// let merged = lora.merged_model()?;
/// let a = base.logits(&[1, 2, 3])?;
/// let b = merged.logits(&[1, 2, 3])?;
/// assert!(a.approx_eq(&b, 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LoraModel {
    base: TinyLm,
    cfg: LoraConfig,
    /// Interleaved `[A, B]` pairs: layer-major, target-minor
    /// (q, k, v, o, gate, up, down), so `adapters[2*(l*7+t)]` is `A` and
    /// `… + 1` is `B`.
    adapters: Vec<Matrix>,
}

impl LoraModel {
    /// Wraps a base model with fresh adapters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a zero rank or a rank larger than
    /// the smallest projection dimension.
    pub fn new(base: TinyLm, cfg: LoraConfig, rng: &mut Pcg32) -> Result<Self, NnError> {
        let arch = base.arch();
        let min_dim = arch.d_model.min(arch.d_ff);
        if cfg.rank == 0 || cfg.rank > min_dim {
            return Err(NnError::BadConfig {
                detail: format!(
                    "LoRA rank {} must be in 1..={} for this architecture",
                    cfg.rank, min_dim
                ),
            });
        }
        let mut adapters = Vec::with_capacity(arch.n_layers * TARGETS_PER_LAYER * 2);
        for _ in 0..arch.n_layers {
            for (out_dim, in_dim) in Self::target_shapes(arch.d_model, arch.d_ff) {
                adapters.push(Matrix::randn(cfg.rank, in_dim, 0.02, rng)); // A
                adapters.push(Matrix::zeros(out_dim, cfg.rank)); // B
            }
        }
        Ok(LoraModel {
            base,
            cfg,
            adapters,
        })
    }

    /// `(out, in)` shapes of the seven adapted projections, in order.
    fn target_shapes(d_model: usize, d_ff: usize) -> [(usize, usize); TARGETS_PER_LAYER] {
        [
            (d_model, d_model), // q
            (d_model, d_model), // k
            (d_model, d_model), // v
            (d_model, d_model), // o
            (d_ff, d_model),    // gate
            (d_ff, d_model),    // up
            (d_model, d_ff),    // down
        ]
    }

    /// The frozen base model.
    #[must_use]
    pub fn base(&self) -> &TinyLm {
        &self.base
    }

    /// The adapter scale `α / r`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.cfg.alpha as f32 / self.cfg.rank as f32
    }

    /// Number of trainable adapter scalars.
    #[must_use]
    pub fn trainable_count(&self) -> usize {
        self.adapters.iter().map(Matrix::len).sum()
    }

    /// Materialises the adapted model `W + (α/r)·B·A` for every target.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (impossible for adapters built by
    /// [`LoraModel::new`]).
    pub fn merged_model(&self) -> Result<TinyLm, NnError> {
        let mut model = self.base.clone();
        let scale = self.scale();
        let n_layers = model.arch().n_layers;
        for l in 0..n_layers {
            for t in 0..TARGETS_PER_LAYER {
                let a = &self.adapters[2 * (l * TARGETS_PER_LAYER + t)];
                let b = &self.adapters[2 * (l * TARGETS_PER_LAYER + t) + 1];
                let update = b.matmul(a)?.scale(scale);
                let layer = &mut model.params_mut().layers[l];
                let target = match t {
                    0 => &mut layer.wq,
                    1 => &mut layer.wk,
                    2 => &mut layer.wv,
                    3 => &mut layer.wo,
                    4 => &mut layer.wg,
                    5 => &mut layer.wu,
                    _ => &mut layer.wd,
                };
                target.add_assign(&update)?;
            }
        }
        Ok(model)
    }

    /// Exports the adapted model as a checkpoint (adapters folded in).
    ///
    /// # Errors
    ///
    /// Propagates checkpoint conversion failures.
    pub fn merged_checkpoint(&self) -> Result<Checkpoint, NnError> {
        let mut ckpt = self.merged_model()?.to_checkpoint()?;
        ckpt.set_metadata("lora.rank", &self.cfg.rank.to_string());
        ckpt.set_metadata("lora.alpha", &self.cfg.alpha.to_string());
        Ok(ckpt)
    }

    /// Trains the adapters with prompt-masked cross-entropy while the base
    /// stays frozen. Returns the per-step mean losses.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for an empty dataset or invalid
    /// optimizer settings, and forwards any forward/backward failure.
    pub fn train(&mut self, data: &[Example], cfg: &TrainConfig) -> Result<Vec<f32>, NnError> {
        if data.is_empty() {
            return Err(NnError::BadConfig {
                detail: "LoRA training requires a non-empty dataset".into(),
            });
        }
        let mut rng = Pcg32::seed(cfg.seed);
        let mut adam = FlatAdam::new(&self.adapters, cfg.adam)?;
        let mut losses = Vec::with_capacity(cfg.steps);
        let scale = self.scale();
        let n_layers = self.base.arch().n_layers;

        for _ in 0..cfg.steps {
            // Materialise the effective model once per step.
            let model = self.merged_model()?;
            let mut grad_acc: Vec<Matrix> = self
                .adapters
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect();
            let mut batch_loss = 0.0f32;
            for _ in 0..cfg.batch_size {
                let ex = &data[rng.below(data.len())];
                let (logits, cache) = model.forward(&ex.tokens)?;
                let result = loss::masked_cross_entropy(&logits, &ex.tokens, &ex.mask)?;
                batch_loss += result.loss;
                let full = model.backward(&cache, &result.dlogits)?;
                // Project full-weight gradients onto the adapters:
                // dA = s·Bᵀ·dW, dB = s·dW·Aᵀ.
                for l in 0..n_layers {
                    let lg = &full.layers[l];
                    let weight_grads = [&lg.wq, &lg.wk, &lg.wv, &lg.wo, &lg.wg, &lg.wu, &lg.wd];
                    for (t, dw) in weight_grads.into_iter().enumerate() {
                        let idx = 2 * (l * TARGETS_PER_LAYER + t);
                        let a = &self.adapters[idx];
                        let b = &self.adapters[idx + 1];
                        let mut da = b.matmul_at(dw)?;
                        da.scale_inplace(scale);
                        let mut db = dw.matmul_bt(a)?;
                        db.scale_inplace(scale);
                        grad_acc[idx].add_assign(&da)?;
                        grad_acc[idx + 1].add_assign(&db)?;
                    }
                }
            }
            let inv = 1.0 / cfg.batch_size as f32;
            for g in &mut grad_acc {
                g.scale_inplace(inv);
            }
            adam.step(&mut self.adapters, &grad_acc)?;
            losses.push(batch_loss * inv);
        }
        Ok(losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;
    use crate::train::TrainConfig;
    use chipalign_model::ArchSpec;

    fn base() -> TinyLm {
        let mut arch = ArchSpec::tiny("lora");
        arch.vocab_size = 99;
        TinyLm::new(&arch, &mut Pcg32::seed(11)).expect("valid")
    }

    #[test]
    fn fresh_adapters_are_identity() {
        let b = base();
        let lora =
            LoraModel::new(b.clone(), LoraConfig::default(), &mut Pcg32::seed(1)).expect("ok");
        let merged = lora.merged_model().expect("ok");
        let x = b.logits(&[4, 8, 15]).expect("ok");
        let y = merged.logits(&[4, 8, 15]).expect("ok");
        assert!(x.approx_eq(&y, 1e-6));
    }

    #[test]
    fn rank_validation() {
        let b = base();
        assert!(LoraModel::new(
            b.clone(),
            LoraConfig { rank: 0, alpha: 16 },
            &mut Pcg32::seed(1)
        )
        .is_err());
        assert!(LoraModel::new(
            b,
            LoraConfig {
                rank: 1000,
                alpha: 16
            },
            &mut Pcg32::seed(1)
        )
        .is_err());
    }

    #[test]
    fn trainable_count_is_small_fraction() {
        let b = base();
        let total = b.params().scalar_count();
        let lora =
            LoraModel::new(b, LoraConfig { rank: 2, alpha: 4 }, &mut Pcg32::seed(1)).expect("ok");
        assert!(lora.trainable_count() > 0);
        assert!(
            lora.trainable_count() < total / 2,
            "LoRA must train far fewer parameters ({} vs {total})",
            lora.trainable_count()
        );
    }

    #[test]
    fn training_reduces_loss_and_freezes_base() {
        // Mirror real usage: LoRA adapts a *pretrained* base (the paper's
        // DAFT setting), steering it to a new continuation of a known
        // prefix. A random base would leave the frozen embedding/LM head
        // unusable and make learning artificially slow.
        let mut pretrained = base();
        let old_seq: Vec<u32> = vec![10, 20, 30, 40, 50, 60];
        crate::train::train(
            &mut pretrained,
            &[Example::pretrain(old_seq)],
            &TrainConfig {
                steps: 80,
                batch_size: 2,
                adam: AdamConfig {
                    lr: 3e-3,
                    ..AdamConfig::default()
                },
                seed: 1,
            },
        )
        .expect("pretraining succeeds");
        let base_ckpt = pretrained.to_checkpoint().expect("ok");
        let mut lora = LoraModel::new(
            pretrained,
            LoraConfig { rank: 4, alpha: 8 },
            &mut Pcg32::seed(2),
        )
        .expect("ok");
        // New behaviour: the same prefix now continues with a permutation
        // of *seen* tokens. (Unseen tokens would be unreachable: their
        // frozen LM-head rows are near-zero and LoRA cannot touch the head.)
        let new_seq: Vec<u32> = vec![10, 20, 30, 60, 50, 40];
        let data = vec![Example::pretrain(new_seq)];
        let cfg = TrainConfig {
            steps: 400,
            batch_size: 2,
            adam: AdamConfig {
                lr: 1e-2,
                warmup_steps: 10,
                ..AdamConfig::default()
            },
            seed: 3,
        };
        let losses = lora.train(&data, &cfg).expect("ok");
        let first = losses[..5].iter().sum::<f32>() / 5.0;
        let last = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last < first * 0.6,
            "LoRA training failed to learn: first {first}, last {last}"
        );
        // Base is untouched.
        let still = lora.base().to_checkpoint().expect("ok");
        assert!(still.approx_eq(&base_ckpt, 0.0));
        // Merged model now differs from the base.
        let merged = lora.merged_checkpoint().expect("ok");
        assert!(!merged.approx_eq(&base_ckpt, 1e-6));
        assert_eq!(
            merged.metadata().get("lora.rank").map(String::as_str),
            Some("4")
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        let mut lora =
            LoraModel::new(base(), LoraConfig::default(), &mut Pcg32::seed(1)).expect("ok");
        let cfg = TrainConfig::default();
        assert!(lora.train(&[], &cfg).is_err());
    }
}

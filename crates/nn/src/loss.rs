//! Prompt-masked causal cross-entropy.
//!
//! Training examples are `(tokens, mask)` pairs: the model predicts token
//! `t+1` from positions `0..=t`, and position `t` contributes to the loss
//! only when `mask[t+1]` is set. SFT examples mask out the prompt so that
//! only completion tokens are trained — the paper's DAFT objective.

use chipalign_tensor::ops;
use chipalign_tensor::Matrix;

use crate::NnError;

/// The result of a loss computation: the scalar loss and the gradient with
/// respect to the logits (ready for [`crate::TinyLm::backward`]).
#[derive(Debug, Clone)]
pub struct LossResult {
    /// Mean negative log-likelihood over the unmasked target positions.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `(seq × vocab)`.
    pub dlogits: Matrix,
    /// How many target positions contributed.
    pub target_count: usize,
}

/// Computes masked next-token cross-entropy and its gradient.
///
/// `logits` has shape `(seq × vocab)`; position `t` predicts `tokens[t+1]`.
/// `target_mask[t]` says whether token `t` counts as a *target* (so position
/// `t−1` is trained). `target_mask` must have the same length as `tokens`;
/// index 0 is ignored (nothing predicts the first token).
///
/// # Errors
///
/// Returns [`NnError::BadSequence`] if shapes disagree or no position is
/// unmasked.
pub fn masked_cross_entropy(
    logits: &Matrix,
    tokens: &[u32],
    target_mask: &[bool],
) -> Result<LossResult, NnError> {
    let seq = tokens.len();
    if logits.rows() != seq || target_mask.len() != seq {
        return Err(NnError::BadSequence {
            detail: format!(
                "logits rows {}, tokens {}, mask {} must agree",
                logits.rows(),
                seq,
                target_mask.len()
            ),
        });
    }
    let vocab = logits.cols();
    let mut dlogits = Matrix::zeros(seq, vocab);
    let mut total = 0.0f64;
    let mut count = 0usize;

    for t in 0..seq.saturating_sub(1) {
        if !target_mask[t + 1] {
            continue;
        }
        let target = tokens[t + 1] as usize;
        if target >= vocab {
            return Err(NnError::BadToken {
                id: tokens[t + 1],
                vocab,
            });
        }
        let row = logits.row(t);
        let lse = ops::logsumexp(row);
        total += f64::from(lse - row[target]);
        // dlogits = softmax(row); dlogits[target] -= 1 (scaled later).
        let mut probs = row.to_vec();
        ops::softmax_inplace(&mut probs);
        probs[target] -= 1.0;
        dlogits.row_mut(t).copy_from_slice(&probs);
        count += 1;
    }

    if count == 0 {
        return Err(NnError::BadSequence {
            detail: "no unmasked target positions".into(),
        });
    }
    let scale = 1.0 / count as f32;
    dlogits.scale_inplace(scale);
    Ok(LossResult {
        loss: (total / count as f64) as f32,
        dlogits,
        target_count: count,
    })
}

/// Convenience: cross-entropy with every position unmasked (pretraining).
///
/// # Errors
///
/// Same contract as [`masked_cross_entropy`].
pub fn cross_entropy(logits: &Matrix, tokens: &[u32]) -> Result<LossResult, NnError> {
    masked_cross_entropy(logits, tokens, &vec![true; tokens.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_tensor::rng::Pcg32;

    #[test]
    fn uniform_logits_give_log_vocab() {
        let logits = Matrix::zeros(3, 10);
        let result = cross_entropy(&logits, &[1, 2, 3]).expect("ok");
        assert!((result.loss - (10.0f32).ln()).abs() < 1e-5);
        assert_eq!(result.target_count, 2);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(2, 5);
        logits.set(0, 3, 20.0).expect("in range"); // predicts token 3
        let result = cross_entropy(&logits, &[0, 3]).expect("ok");
        assert!(result.loss < 1e-3, "loss was {}", result.loss);
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let mut logits = Matrix::zeros(2, 5);
        logits.set(0, 1, 20.0).expect("in range"); // predicts 1, target is 3
        let result = cross_entropy(&logits, &[0, 3]).expect("ok");
        assert!(result.loss > 10.0);
    }

    #[test]
    fn mask_excludes_prompt_positions() {
        let mut rng = Pcg32::seed(1);
        let logits = Matrix::randn(4, 6, 1.0, &mut rng);
        let tokens = [0u32, 1, 2, 3];
        // Only token 3 (position 3) is a target -> only position 2 trains.
        let mask = [false, false, false, true];
        let result = masked_cross_entropy(&logits, &tokens, &mask).expect("ok");
        assert_eq!(result.target_count, 1);
        // Gradient must be zero except at row 2.
        for r in [0usize, 1, 3] {
            let norm: f32 = result.dlogits.row(r).iter().map(|v| v * v).sum();
            assert_eq!(norm, 0.0, "row {r} should have no gradient");
        }
        let norm2: f32 = result.dlogits.row(2).iter().map(|v| v * v).sum();
        assert!(norm2 > 0.0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax minus one-hot always sums to zero per row.
        let mut rng = Pcg32::seed(2);
        let logits = Matrix::randn(5, 8, 1.0, &mut rng);
        let tokens = [1u32, 2, 3, 4, 5];
        let result = cross_entropy(&logits, &tokens).expect("ok");
        for r in 0..4 {
            let sum: f32 = result.dlogits.row(r).iter().sum();
            assert!(sum.abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Pcg32::seed(3);
        let logits = Matrix::randn(3, 5, 1.0, &mut rng);
        let tokens = [0u32, 2, 4];
        let result = cross_entropy(&logits, &tokens).expect("ok");
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..5 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp.row_mut(r)[c] += h;
                lm.row_mut(r)[c] -= h;
                let fp = cross_entropy(&lp, &tokens).expect("ok").loss;
                let fm = cross_entropy(&lm, &tokens).expect("ok").loss;
                let fd = (fp - fm) / (2.0 * h);
                let an = result.dlogits.get(r, c).expect("in range");
                assert!(
                    (fd - an).abs() < 1e-2,
                    "dlogits[{r}][{c}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn all_masked_is_an_error() {
        let logits = Matrix::zeros(3, 4);
        let err = masked_cross_entropy(&logits, &[0, 1, 2], &[false; 3]);
        assert!(matches!(err, Err(NnError::BadSequence { .. })));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let logits = Matrix::zeros(3, 4);
        assert!(masked_cross_entropy(&logits, &[0, 1], &[true, true]).is_err());
        assert!(masked_cross_entropy(&logits, &[0, 1, 2], &[true; 2]).is_err());
    }

    #[test]
    fn out_of_vocab_target_is_an_error() {
        let logits = Matrix::zeros(2, 4);
        assert!(matches!(
            cross_entropy(&logits, &[0, 9]),
            Err(NnError::BadToken { .. })
        ));
    }
}

//! The decoder-only transformer: forward pass with activation caching and a
//! complete manual backward pass.
//!
//! Layer recipe (LLaMA): pre-RMSNorm → rotary multi-head self-attention →
//! residual → pre-RMSNorm → SwiGLU MLP → residual; final RMSNorm and an
//! untied LM head. Everything is `f32`; matrices are `(seq × features)`
//! activations against `(out × in)` weights, so projections are
//! `x · Wᵀ` ([`Matrix::matmul_bt`]). Single-token sequences (`seq == 1`)
//! automatically take the kernel's matvec fast path via its `m == 1`
//! dispatch, with the same accumulation order as the KV-cached decode in
//! [`crate::KvCache`], so the two paths agree numerically.

use chipalign_model::{ArchSpec, Checkpoint, ModelError, QuantCheckpoint};
use chipalign_tensor::ops;
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::Matrix;

use crate::params::{LayerParams, ParamSet};
use crate::quant::QuantParamSet;
use crate::NnError;

const RMS_EPS: f32 = 1e-5;
const ROPE_BASE: f32 = 10_000.0;

/// A tiny LLaMA-style causal language model.
///
/// # Example
///
/// ```
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::TinyLm;
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("demo");
/// arch.vocab_size = 99;
/// let model = TinyLm::new(&arch, &mut Pcg32::seed(7))?;
/// let logits = model.logits(&[1, 5, 9])?;
/// assert_eq!(logits.shape(), (3, 99));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TinyLm {
    arch: ArchSpec,
    params: ParamSet,
    /// Optional int8 sidecar for the decode projections. `None` for f32
    /// models; populated by [`TinyLm::quantize`] or a quantized checkpoint
    /// load, and dropped whenever the f32 weights are mutated.
    quant: Option<QuantParamSet>,
}

/// Cached activations from one forward pass, consumed by
/// [`TinyLm::backward`].
#[derive(Debug, Clone)]
pub struct ForwardCache {
    tokens: Vec<u32>,
    h0: Matrix,
    layers: Vec<LayerCache>,
    final_rms: Vec<f32>,
    h_final_in: Matrix,
    h_final: Matrix,
}

#[derive(Debug, Clone)]
struct LayerCache {
    h_in: Matrix,
    norm1_rms: Vec<f32>,
    h_norm1: Matrix,
    q_rot: Matrix,
    k_rot: Matrix,
    v: Matrix,
    probs: Vec<Matrix>,
    ctx: Matrix,
    h_mid: Matrix,
    norm2_rms: Vec<f32>,
    h_norm2: Matrix,
    gate: Matrix,
    up: Matrix,
    act: Matrix,
}

impl TinyLm {
    /// Creates a randomly initialised model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the architecture is internally
    /// inconsistent (see [`ArchSpec::check`]).
    pub fn new(arch: &ArchSpec, rng: &mut Pcg32) -> Result<Self, NnError> {
        arch.check()
            .map_err(|detail| NnError::BadConfig { detail })?;
        Ok(TinyLm {
            arch: arch.clone(),
            params: ParamSet::init(arch, rng),
            quant: None,
        })
    }

    /// Reconstructs a model from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns the underlying validation error if the checkpoint does not
    /// instantiate its architecture.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, NnError> {
        ckpt.arch()
            .check()
            .map_err(|detail| NnError::BadConfig { detail })?;
        Ok(TinyLm {
            arch: ckpt.arch().clone(),
            params: ParamSet::from_checkpoint(ckpt)?,
            quant: None,
        })
    }

    /// Reconstructs a quantized model from an int8 checkpoint: the f32
    /// parameters come from dequantization (the decode path never reads the
    /// dequantized projections, but norms, the embedding, and the training
    /// oracle do), while the int8 sidecar reuses the checkpoint's stored
    /// codes and scales exactly.
    ///
    /// # Errors
    ///
    /// Returns the underlying validation error if the checkpoint does not
    /// instantiate its architecture, or [`NnError::BadConfig`] if a
    /// projection tensor is missing or not int8.
    pub fn from_quant_checkpoint(qckpt: &QuantCheckpoint) -> Result<Self, NnError> {
        let mut model = TinyLm::from_checkpoint(&qckpt.dequantize()?)?;
        model.quant = Some(QuantParamSet::from_quant_checkpoint(qckpt)?);
        Ok(model)
    }

    /// Attaches (or refreshes) the int8 decode sidecar, quantizing every
    /// projection weight at per-row scale. Idempotent; cheap relative to a
    /// checkpoint load.
    pub fn quantize(&mut self) {
        self.quant = Some(QuantParamSet::quantize(&self.params));
    }

    /// Whether decode runs on the int8 weights.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The dtype decode streams for projection weights: `"int8"` when the
    /// sidecar is attached, `"f32"` otherwise.
    #[must_use]
    pub fn dtype(&self) -> &'static str {
        if self.quant.is_some() {
            "int8"
        } else {
            "f32"
        }
    }

    /// The int8 decode sidecar, if attached.
    #[must_use]
    pub fn quant(&self) -> Option<&QuantParamSet> {
        self.quant.as_ref()
    }

    /// The model's weight footprint in bytes at its decode dtype: int8
    /// projections plus f32 norms and embedding when quantized,
    /// `4 × scalar_count` otherwise.
    #[must_use]
    pub fn weights_bytes(&self) -> u64 {
        match &self.quant {
            Some(q) => {
                let quantized: u64 = q.weights_bytes();
                let f32_rest: u64 = self
                    .params
                    .layers
                    .iter()
                    .map(|l| 4 * (l.norm1.len() + l.norm2.len()) as u64)
                    .sum::<u64>()
                    + 4 * (self.params.embed.len() + self.params.final_norm.len()) as u64;
                quantized + f32_rest
            }
            None => 4 * self.params.scalar_count() as u64,
        }
    }

    /// Exports the weights as a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint validation failures (impossible for a model
    /// constructed through this API).
    pub fn to_checkpoint(&self) -> Result<Checkpoint, ModelError> {
        self.params.to_checkpoint(&self.arch)
    }

    /// Returns a clone of this model keeping only its first `n_layers`
    /// transformer layers (embedding, final norm, and LM head are shared
    /// unchanged). This is the cheapest self-draft for speculative
    /// decoding: the truncated model reads the same vocabulary and often
    /// agrees with the full stack on easy tokens at a fraction of the
    /// per-token cost. If this model carries an int8 sidecar, the truncated
    /// clone is re-quantized so its decode dtype matches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when `n_layers` is zero or exceeds
    /// the model's layer count.
    pub fn truncate_layers(&self, n_layers: usize) -> Result<TinyLm, NnError> {
        if n_layers == 0 || n_layers > self.arch.n_layers {
            return Err(NnError::BadConfig {
                detail: format!(
                    "truncate_layers: n_layers must lie in [1, {}], got {n_layers}",
                    self.arch.n_layers
                ),
            });
        }
        let mut arch = self.arch.clone();
        arch.n_layers = n_layers;
        let mut params = self.params.clone();
        params.layers.truncate(n_layers);
        let mut model = TinyLm {
            arch,
            params,
            quant: None,
        };
        if self.quant.is_some() {
            model.quantize();
        }
        Ok(model)
    }

    /// The model's architecture.
    #[must_use]
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Immutable access to the parameters.
    #[must_use]
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters (used by the optimizer).
    ///
    /// Drops any attached int8 sidecar: once the f32 weights can change,
    /// previously quantized codes would silently go stale. Re-call
    /// [`TinyLm::quantize`] after mutating.
    pub fn params_mut(&mut self) -> &mut ParamSet {
        self.quant = None;
        &mut self.params
    }

    /// Validates a token sequence against vocabulary and context limits.
    fn check_tokens(&self, tokens: &[u32]) -> Result<(), NnError> {
        if tokens.is_empty() {
            return Err(NnError::BadSequence {
                detail: "empty token sequence".into(),
            });
        }
        if tokens.len() > self.arch.max_seq_len {
            return Err(NnError::BadSequence {
                detail: format!(
                    "sequence of {} tokens exceeds max_seq_len {}",
                    tokens.len(),
                    self.arch.max_seq_len
                ),
            });
        }
        for &t in tokens {
            if t as usize >= self.arch.vocab_size {
                return Err(NnError::BadToken {
                    id: t,
                    vocab: self.arch.vocab_size,
                });
            }
        }
        Ok(())
    }

    /// Runs the forward pass, returning `(seq × vocab)` logits and the
    /// activation cache needed for [`TinyLm::backward`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadSequence`]/[`NnError::BadToken`] for invalid
    /// input.
    pub fn forward(&self, tokens: &[u32]) -> Result<(Matrix, ForwardCache), NnError> {
        self.check_tokens(tokens)?;
        let seq = tokens.len();
        let d = self.arch.d_model;
        let n_heads = self.arch.n_heads;
        let head_dim = self.arch.head_dim();

        // Token embedding.
        let mut h = Matrix::zeros(seq, d);
        for (t, &tok) in tokens.iter().enumerate() {
            h.row_mut(t)
                .copy_from_slice(self.params.embed.row(tok as usize));
        }
        let h0 = h.clone();

        let mut layer_caches = Vec::with_capacity(self.arch.n_layers);
        for layer in &self.params.layers {
            let h_in = h.clone();

            // --- attention block ---
            let (h_norm1, norm1_rms) = rmsnorm_forward(&h_in, &layer.norm1);
            let mut q = h_norm1.matmul_bt(&layer.wq)?;
            let mut k = h_norm1.matmul_bt(&layer.wk)?;
            let v = h_norm1.matmul_bt(&layer.wv)?;
            rope_inplace(&mut q, n_heads, head_dim, 1.0);
            rope_inplace(&mut k, n_heads, head_dim, 1.0);

            let mut ctx = Matrix::zeros(seq, d);
            let mut probs_all = Vec::with_capacity(n_heads);
            let scale = 1.0 / (head_dim as f32).sqrt();
            for hh in 0..n_heads {
                let start = hh * head_dim;
                let q_h = col_block(&q, start, head_dim);
                let k_h = col_block(&k, start, head_dim);
                let v_h = col_block(&v, start, head_dim);
                let mut scores = q_h.matmul_bt(&k_h)?;
                scores.scale_inplace(scale);
                apply_causal_mask(&mut scores);
                for r in 0..seq {
                    ops::softmax_inplace(scores.row_mut(r));
                }
                let ctx_h = scores.matmul(&v_h)?;
                set_col_block(&mut ctx, start, &ctx_h);
                probs_all.push(scores);
            }
            let attn_out = ctx.matmul_bt(&layer.wo)?;
            let h_mid = h_in.add(&attn_out)?;

            // --- MLP block ---
            let (h_norm2, norm2_rms) = rmsnorm_forward(&h_mid, &layer.norm2);
            let gate = h_norm2.matmul_bt(&layer.wg)?;
            let up = h_norm2.matmul_bt(&layer.wu)?;
            let act = gate.zip_map(&up, |g, u| ops::silu(g) * u)?;
            let mlp_out = act.matmul_bt(&layer.wd)?;
            h = h_mid.add(&mlp_out)?;

            layer_caches.push(LayerCache {
                h_in,
                norm1_rms,
                h_norm1,
                q_rot: q,
                k_rot: k,
                v,
                probs: probs_all,
                ctx,
                h_mid,
                norm2_rms,
                h_norm2,
                gate,
                up,
                act,
            });
        }

        let h_final_in = h.clone();
        let (h_final, final_rms) = rmsnorm_forward(&h_final_in, &self.params.final_norm);
        let logits = h_final.matmul_bt(&self.params.lm_head)?;

        let cache = ForwardCache {
            tokens: tokens.to_vec(),
            h0,
            layers: layer_caches,
            final_rms,
            h_final_in,
            h_final,
        };
        Ok((logits, cache))
    }

    /// Forward pass without keeping the cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`TinyLm::forward`].
    pub fn logits(&self, tokens: &[u32]) -> Result<Matrix, NnError> {
        self.forward(tokens).map(|(logits, _)| logits)
    }

    /// Backpropagates `dlogits` (gradient of the loss w.r.t. the logits)
    /// through the cached forward pass, returning gradients for every
    /// parameter.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `dlogits` does not match the cached
    /// sequence's `(seq × vocab)` shape.
    pub fn backward(&self, cache: &ForwardCache, dlogits: &Matrix) -> Result<ParamSet, NnError> {
        let seq = cache.tokens.len();
        let n_heads = self.arch.n_heads;
        let head_dim = self.arch.head_dim();
        let mut grads = self.params.zeros_like();

        // LM head.
        grads.lm_head = dlogits.matmul_at_checked(&cache.h_final)?;
        let dh_final = dlogits.matmul(&self.params.lm_head)?;

        // Final RMSNorm.
        let (mut dh, dg_final) = rmsnorm_backward(
            &cache.h_final_in,
            &self.params.final_norm,
            &cache.final_rms,
            &dh_final,
        )?;
        grads.final_norm = dg_final;

        // Layers in reverse.
        for (layer, lcache, lgrads) in
            itertools_rev(&self.params.layers, &cache.layers, &mut grads.layers)
        {
            // --- MLP block backward ---
            // h_out = h_mid + act · Wdᵀ
            let dmlp_out = dh.clone();
            lgrads.wd = dmlp_out.matmul_at_checked(&lcache.act)?;
            let dact = dmlp_out.matmul(&layer.wd)?;
            // act = silu(gate) ⊙ up
            let dup = dact.zip_map(&lcache.gate, |da, g| da * ops::silu(g))?;
            let dgate = dact
                .zip_map(&lcache.up, |da, u| da * u)?
                .zip_map(&lcache.gate, |dau, g| dau * ops::silu_grad(g))?;
            lgrads.wg = dgate.matmul_at_checked(&lcache.h_norm2)?;
            lgrads.wu = dup.matmul_at_checked(&lcache.h_norm2)?;
            let mut dh_norm2 = dgate.matmul(&layer.wg)?;
            dh_norm2.add_assign(&dup.matmul(&layer.wu)?)?;
            // RMSNorm 2.
            let (dh_mid_from_norm, dg2) =
                rmsnorm_backward(&lcache.h_mid, &layer.norm2, &lcache.norm2_rms, &dh_norm2)?;
            lgrads.norm2 = dg2;
            let mut dh_mid = dh; // residual path
            dh_mid.add_assign(&dh_mid_from_norm)?;

            // --- attention block backward ---
            // h_mid = h_in + ctx · Woᵀ
            let dattn_out = dh_mid.clone();
            lgrads.wo = dattn_out.matmul_at_checked(&lcache.ctx)?;
            let dctx = dattn_out.matmul(&layer.wo)?;

            let d = self.arch.d_model;
            let mut dq = Matrix::zeros(seq, d);
            let mut dk = Matrix::zeros(seq, d);
            let mut dv = Matrix::zeros(seq, d);
            let scale = 1.0 / (head_dim as f32).sqrt();
            for hh in 0..n_heads {
                let start = hh * head_dim;
                let dctx_h = col_block(&dctx, start, head_dim);
                let probs = &lcache.probs[hh];
                let q_h = col_block(&lcache.q_rot, start, head_dim);
                let k_h = col_block(&lcache.k_rot, start, head_dim);
                let v_h = col_block(&lcache.v, start, head_dim);

                // ctx_h = probs · v_h
                let dv_h = probs.matmul_at(&dctx_h)?;
                let dprobs = dctx_h.matmul_bt(&v_h)?;
                // softmax backward, row-wise.
                let dscores = softmax_backward_rows(probs, &dprobs);
                // scores = scale · q_h · k_hᵀ
                let mut dq_h = dscores.matmul(&k_h)?;
                dq_h.scale_inplace(scale);
                let mut dk_h = dscores.matmul_at(&q_h)?;
                dk_h.scale_inplace(scale);

                set_col_block(&mut dq, start, &dq_h);
                set_col_block(&mut dk, start, &dk_h);
                set_col_block(&mut dv, start, &dv_h);
            }
            // Undo the rotary rotation (orthogonal, so transpose = -angle).
            rope_inplace(&mut dq, n_heads, head_dim, -1.0);
            rope_inplace(&mut dk, n_heads, head_dim, -1.0);

            lgrads.wq = dq.matmul_at_checked(&lcache.h_norm1)?;
            lgrads.wk = dk.matmul_at_checked(&lcache.h_norm1)?;
            lgrads.wv = dv.matmul_at_checked(&lcache.h_norm1)?;
            let mut dh_norm1 = dq.matmul(&layer.wq)?;
            dh_norm1.add_assign(&dk.matmul(&layer.wk)?)?;
            dh_norm1.add_assign(&dv.matmul(&layer.wv)?)?;

            // RMSNorm 1.
            let (dh_in_from_norm, dg1) =
                rmsnorm_backward(&lcache.h_in, &layer.norm1, &lcache.norm1_rms, &dh_norm1)?;
            lgrads.norm1 = dg1;
            let mut dh_in = dh_mid; // residual path
            dh_in.add_assign(&dh_in_from_norm)?;
            dh = dh_in;
        }

        // Embedding rows.
        for (t, &tok) in cache.tokens.iter().enumerate() {
            let grad_row = dh.row(t).to_vec();
            let dst = grads.embed.row_mut(tok as usize);
            for (g, v) in dst.iter_mut().zip(grad_row) {
                *g += v;
            }
        }
        let _ = &cache.h0; // h0 retained for diagnostics; embedding grad uses token ids.
        Ok(grads)
    }
}

/// Pairs layers, caches, and gradient slots in reverse order.
fn itertools_rev<'a>(
    layers: &'a [LayerParams],
    caches: &'a [LayerCache],
    grads: &'a mut [LayerParams],
) -> impl Iterator<Item = (&'a LayerParams, &'a LayerCache, &'a mut LayerParams)> {
    layers
        .iter()
        .rev()
        .zip(caches.iter().rev())
        .zip(grads.iter_mut().rev())
        .map(|((l, c), g)| (l, c, g))
}

/// RMSNorm forward: `y_t = g ⊙ x_t / rms(x_t)` with
/// `rms = sqrt(mean(x²) + ε)`. Returns the output and per-row rms values.
fn rmsnorm_forward(x: &Matrix, gain: &Matrix) -> (Matrix, Vec<f32>) {
    let (rows, cols) = x.shape();
    let mut y = Matrix::zeros(rows, cols);
    let mut rms_all = Vec::with_capacity(rows);
    let g = gain.data();
    for r in 0..rows {
        let xr = x.row(r);
        let ms = xr.iter().map(|&v| v * v).sum::<f32>() / cols as f32;
        let rms = (ms + RMS_EPS).sqrt();
        let yr = y.row_mut(r);
        for c in 0..cols {
            yr[c] = g[c] * xr[c] / rms;
        }
        rms_all.push(rms);
    }
    (y, rms_all)
}

/// RMSNorm backward. Returns `(dx, dgain)`.
fn rmsnorm_backward(
    x: &Matrix,
    gain: &Matrix,
    rms: &[f32],
    dy: &Matrix,
) -> Result<(Matrix, Matrix), NnError> {
    let (rows, cols) = x.shape();
    let mut dx = Matrix::zeros(rows, cols);
    let mut dgain = Matrix::zeros(1, cols);
    let g = gain.data();
    for r in 0..rows {
        let xr = x.row(r);
        let dyr = dy.row(r);
        let rr = rms[r];
        // S = Σ_i dy_i g_i x_i
        let s: f32 = (0..cols).map(|c| dyr[c] * g[c] * xr[c]).sum();
        let dxr = dx.row_mut(r);
        let factor = s / (cols as f32 * rr * rr * rr);
        for c in 0..cols {
            dxr[c] = g[c] * dyr[c] / rr - xr[c] * factor;
        }
        let dgr = dgain.data_mut();
        for c in 0..cols {
            dgr[c] += dyr[c] * xr[c] / rr;
        }
    }
    Ok((dx, dgain))
}

/// Applies (or inverts, with `sign = -1`) rotary position embeddings to a
/// `(seq × d_model)` activation, head by head, on adjacent element pairs.
fn rope_inplace(m: &mut Matrix, n_heads: usize, head_dim: usize, sign: f32) {
    let rows = m.rows();
    for t in 0..rows {
        let row = m.row_mut(t);
        for hh in 0..n_heads {
            let base = hh * head_dim;
            for i in 0..head_dim / 2 {
                let theta = t as f32 * ROPE_BASE.powf(-2.0 * i as f32 / head_dim as f32);
                let (sin, cos) = (sign * theta).sin_cos();
                let a = row[base + 2 * i];
                let b = row[base + 2 * i + 1];
                row[base + 2 * i] = a * cos - b * sin;
                row[base + 2 * i + 1] = a * sin + b * cos;
            }
        }
    }
}

/// Sets `scores[i][j] = -inf` for all `j > i` (causal attention).
fn apply_causal_mask(scores: &mut Matrix) {
    let rows = scores.rows();
    for r in 0..rows {
        let row = scores.row_mut(r);
        for v in row.iter_mut().skip(r + 1) {
            *v = f32::NEG_INFINITY;
        }
    }
}

/// Row-wise softmax Jacobian-vector product:
/// `ds_ij = p_ij (dp_ij − Σ_k dp_ik p_ik)`.
fn softmax_backward_rows(probs: &Matrix, dprobs: &Matrix) -> Matrix {
    let (rows, cols) = probs.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let p = probs.row(r);
        let dp = dprobs.row(r);
        let inner: f32 = p.iter().zip(dp).map(|(&pi, &di)| pi * di).sum();
        let o = out.row_mut(r);
        for c in 0..cols {
            o[c] = p[c] * (dp[c] - inner);
        }
    }
    out
}

/// Extracts a contiguous block of columns as its own matrix.
fn col_block(m: &Matrix, start: usize, width: usize) -> Matrix {
    let rows = m.rows();
    Matrix::from_fn(rows, width, |r, c| m.row(r)[start + c])
}

/// Writes a column block back into a larger matrix.
fn set_col_block(dst: &mut Matrix, start: usize, src: &Matrix) {
    for r in 0..src.rows() {
        let src_row = src.row(r).to_vec();
        let dst_row = dst.row_mut(r);
        dst_row[start..start + src_row.len()].copy_from_slice(&src_row);
    }
}

/// Extension trait alias: `a.matmul_at_checked(b)` is `aᵀ·b` with the `?`
/// error type of this crate.
trait MatmulAtExt {
    fn matmul_at_checked(&self, other: &Matrix) -> Result<Matrix, NnError>;
}

impl MatmulAtExt for Matrix {
    fn matmul_at_checked(&self, other: &Matrix) -> Result<Matrix, NnError> {
        Ok(self.matmul_at(other)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("model");
        a.vocab_size = 99;
        a
    }

    fn model(seed: u64) -> TinyLm {
        TinyLm::new(&arch(), &mut Pcg32::seed(seed)).expect("valid arch")
    }

    #[test]
    fn forward_shapes() {
        let m = model(1);
        let (logits, cache) = m.forward(&[1, 4, 9, 2]).expect("ok");
        assert_eq!(logits.shape(), (4, 99));
        assert_eq!(cache.layers.len(), 2);
        assert!(logits.all_finite());
    }

    #[test]
    fn quantize_attaches_and_mutation_drops_the_sidecar() {
        let mut m = model(1);
        assert!(!m.is_quantized());
        assert_eq!(m.dtype(), "f32");
        let f32_bytes = m.weights_bytes();
        m.quantize();
        assert!(m.is_quantized());
        assert_eq!(m.dtype(), "int8");
        assert!(
            m.weights_bytes() < f32_bytes,
            "int8 decode must stream fewer bytes than f32"
        );
        // Touching the f32 weights invalidates the quantized codes.
        let _ = m.params_mut();
        assert!(!m.is_quantized());
        assert_eq!(m.weights_bytes(), f32_bytes);
    }

    #[test]
    fn quant_checkpoint_round_trip_preserves_sidecar() {
        let mut m = model(2);
        m.quantize();
        let qckpt = chipalign_model::QuantCheckpoint::quantize(&m.to_checkpoint().expect("valid"));
        let back = TinyLm::from_quant_checkpoint(&qckpt).expect("loads");
        assert!(back.is_quantized());
        // Same f32 source, same quantizer: the sidecars agree exactly.
        assert_eq!(back.quant(), m.quant());
    }

    #[test]
    fn truncate_layers_keeps_prefix_and_revalidates() {
        let mut m = model(3);
        let half = m.truncate_layers(1).expect("ok");
        assert_eq!(half.arch().n_layers, 1);
        assert_eq!(half.arch().vocab_size, m.arch().vocab_size);
        assert_eq!(half.params().layers.len(), 1);
        assert_eq!(half.params().layers[0], m.params().layers[0]);
        assert_eq!(half.params().embed, m.params().embed);
        assert_eq!(half.params().lm_head, m.params().lm_head);
        assert!(!half.is_quantized());
        // The truncated clone still runs a valid forward pass.
        let logits = half.logits(&[1, 4, 9]).expect("ok");
        assert_eq!(logits.shape(), (3, 99));
        assert!(logits.all_finite());
        // Full truncation is the identity (modulo the sidecar).
        let full = m.truncate_layers(2).expect("ok");
        assert_eq!(full.params(), m.params());
        // A quantized source yields a quantized draft.
        m.quantize();
        let qhalf = m.truncate_layers(1).expect("ok");
        assert!(qhalf.is_quantized());
        // Bounds are enforced.
        assert!(matches!(
            m.truncate_layers(0),
            Err(NnError::BadConfig { .. })
        ));
        assert!(matches!(
            m.truncate_layers(3),
            Err(NnError::BadConfig { .. })
        ));
    }

    #[test]
    fn forward_rejects_bad_input() {
        let m = model(1);
        assert!(matches!(m.forward(&[]), Err(NnError::BadSequence { .. })));
        assert!(matches!(m.forward(&[999]), Err(NnError::BadToken { .. })));
        let too_long = vec![1u32; 33];
        assert!(matches!(
            m.forward(&too_long),
            Err(NnError::BadSequence { .. })
        ));
    }

    #[test]
    fn causality_prefix_invariance() {
        // Logits at position t must not depend on tokens after t.
        let m = model(2);
        let full = m.logits(&[5, 6, 7, 8, 9]).expect("ok");
        let prefix = m.logits(&[5, 6, 7]).expect("ok");
        for t in 0..3 {
            for v in 0..99 {
                let a = full.get(t, v).expect("in range");
                let b = prefix.get(t, v).expect("in range");
                assert!(
                    (a - b).abs() < 1e-4,
                    "position {t} vocab {v}: {a} vs {b} — causality violated"
                );
            }
        }
    }

    #[test]
    fn rope_positions_matter() {
        // Without positional information, causal attention over a permuted
        // prefix would mix exactly the same value vectors with the same
        // per-token weights, so the last-position logits for [5,6,7] and
        // [6,5,7] would coincide. RoPE must break that symmetry.
        let m = model(3);
        let a = m.logits(&[5, 6, 7]).expect("ok");
        let b = m.logits(&[6, 5, 7]).expect("ok");
        let last_a: Vec<f32> = a.row(2).to_vec();
        let last_b: Vec<f32> = b.row(2).to_vec();
        let diff: f32 = last_a.iter().zip(&last_b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "prefix order was invisible: RoPE inert");
    }

    #[test]
    fn rope_inverse_restores_input() {
        let mut rng = Pcg32::seed(4);
        let orig = Matrix::randn(6, 16, 1.0, &mut rng);
        let mut m = orig.clone();
        rope_inplace(&mut m, 2, 8, 1.0);
        assert!(!m.approx_eq(&orig, 1e-4), "rotation must change values");
        rope_inplace(&mut m, 2, 8, -1.0);
        assert!(m.approx_eq(&orig, 1e-5), "inverse rotation must restore");
    }

    #[test]
    fn rmsnorm_forward_normalizes() {
        let mut rng = Pcg32::seed(5);
        let x = Matrix::randn(3, 8, 2.0, &mut rng);
        let gain = Matrix::ones(1, 8);
        let (y, rms) = rmsnorm_forward(&x, &gain);
        for r in 0..3 {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} mean-square {ms}");
            assert!(rms[r] > 0.0);
        }
    }

    #[test]
    fn rmsnorm_backward_matches_finite_difference() {
        let mut rng = Pcg32::seed(6);
        let x = Matrix::randn(2, 6, 1.0, &mut rng);
        let gain = Matrix::randn(1, 6, 1.0, &mut rng).map(|v| v + 1.5);
        let dy = Matrix::randn(2, 6, 1.0, &mut rng);
        let (_, rms) = rmsnorm_forward(&x, &gain);
        let (dx, dgain) = rmsnorm_backward(&x, &gain, &rms, &dy).expect("ok");

        let loss = |x: &Matrix, g: &Matrix| -> f32 {
            let (y, _) = rmsnorm_forward(x, g);
            y.frobenius_dot(&dy).expect("same shape") as f32
        };
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..6 {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp.row_mut(r)[c] += h;
                xm.row_mut(r)[c] -= h;
                let fd = (loss(&xp, &gain) - loss(&xm, &gain)) / (2.0 * h);
                let an = dx.get(r, c).expect("in range");
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                    "dx[{r}][{c}]: fd {fd} vs analytic {an}"
                );
            }
        }
        for c in 0..6 {
            let mut gp = gain.clone();
            let mut gm = gain.clone();
            gp.data_mut()[c] += h;
            gm.data_mut()[c] -= h;
            let fd = (loss(&x, &gp) - loss(&x, &gm)) / (2.0 * h);
            let an = dgain.data()[c];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "dgain[{c}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn softmax_backward_rows_matches_finite_difference() {
        let mut rng = Pcg32::seed(7);
        let logits = Matrix::randn(1, 5, 1.0, &mut rng);
        let dprobs = Matrix::randn(1, 5, 1.0, &mut rng);
        let softmax = |m: &Matrix| -> Matrix {
            let mut s = m.clone();
            for r in 0..s.rows() {
                ops::softmax_inplace(s.row_mut(r));
            }
            s
        };
        let probs = softmax(&logits);
        let ds = softmax_backward_rows(&probs, &dprobs);
        let h = 1e-3;
        for c in 0..5 {
            let mut lp = logits.clone();
            let mut lm = logits.clone();
            lp.row_mut(0)[c] += h;
            lm.row_mut(0)[c] -= h;
            let f = |l: &Matrix| softmax(l).frobenius_dot(&dprobs).expect("ok") as f32;
            let fd = (f(&lp) - f(&lm)) / (2.0 * h);
            let an = ds.get(0, c).expect("in range");
            assert!((fd - an).abs() < 1e-2, "ds[{c}]: fd {fd} vs analytic {an}");
        }
    }

    #[test]
    fn col_block_round_trip() {
        let m = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32);
        let block = col_block(&m, 2, 4);
        assert_eq!(block.shape(), (3, 4));
        assert_eq!(block.get(1, 0), Some(10.0));
        let mut dst = Matrix::zeros(3, 8);
        set_col_block(&mut dst, 2, &block);
        assert_eq!(dst.get(1, 2), Some(10.0));
        assert_eq!(dst.get(1, 0), Some(0.0));
    }

    #[test]
    fn checkpoint_round_trip_preserves_logits() {
        let m = model(8);
        let ckpt = m.to_checkpoint().expect("ok");
        let m2 = TinyLm::from_checkpoint(&ckpt).expect("ok");
        let a = m.logits(&[3, 7, 11]).expect("ok");
        let b = m2.logits(&[3, 7, 11]).expect("ok");
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn backward_produces_full_gradients() {
        let m = model(9);
        let tokens = [1u32, 5, 9, 13];
        let (logits, cache) = m.forward(&tokens).expect("ok");
        let mut rng = Pcg32::seed(10);
        let dlogits = Matrix::randn(logits.rows(), logits.cols(), 0.1, &mut rng);
        let grads = m.backward(&cache, &dlogits).expect("ok");
        assert_eq!(grads.scalar_count(), m.params().scalar_count());
        // Every weight matrix the forward pass touches must receive some
        // gradient signal.
        assert!(grads.lm_head.frobenius_norm() > 0.0);
        assert!(grads.final_norm.frobenius_norm() > 0.0);
        for (i, l) in grads.layers.iter().enumerate() {
            for (name, t) in [
                ("wq", &l.wq),
                ("wk", &l.wk),
                ("wv", &l.wv),
                ("wo", &l.wo),
                ("wg", &l.wg),
                ("wu", &l.wu),
                ("wd", &l.wd),
                ("norm1", &l.norm1),
                ("norm2", &l.norm2),
            ] {
                assert!(
                    t.frobenius_norm() > 0.0,
                    "layer {i} {name} received no gradient"
                );
            }
        }
        // Only rows of the embedding for seen tokens get gradients.
        for tok in 0..99usize {
            let row_norm: f32 = grads.embed.row(tok).iter().map(|v| v * v).sum();
            let seen = tokens.contains(&(tok as u32));
            assert_eq!(
                row_norm > 0.0,
                seen,
                "embedding row {tok} gradient presence mismatch"
            );
        }
    }
}

//! The Adam optimizer with global-norm gradient clipping and linear
//! warmup.

use crate::params::ParamSet;
use crate::NnError;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Global-norm clip threshold (0 disables clipping).
    pub clip_norm: f32,
    /// Linear warmup steps from 0 to `lr`.
    pub warmup_steps: usize,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 1.0,
            warmup_steps: 20,
        }
    }
}

/// Adam optimizer state for one [`ParamSet`].
///
/// # Example
///
/// ```
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::{Adam, AdamConfig, ParamSet};
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("demo");
/// arch.vocab_size = 99;
/// let mut params = ParamSet::init(&arch, &mut Pcg32::seed(1));
/// let grads = params.zeros_like();
/// let mut adam = Adam::new(&params, AdamConfig::default())?;
/// adam.step(&mut params, &grads)?; // zero grads -> (almost) no movement
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: ParamSet,
    v: ParamSet,
    t: usize,
}

impl Adam {
    /// Creates optimizer state shaped like `params`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for non-positive learning rate or
    /// betas outside `[0, 1)`.
    pub fn new(params: &ParamSet, cfg: AdamConfig) -> Result<Self, NnError> {
        if !cfg.lr.is_finite() || cfg.lr <= 0.0 {
            return Err(NnError::BadConfig {
                detail: format!("learning rate {} must be positive", cfg.lr),
            });
        }
        for (name, b) in [("beta1", cfg.beta1), ("beta2", cfg.beta2)] {
            if !(0.0..1.0).contains(&b) {
                return Err(NnError::BadConfig {
                    detail: format!("{name} {b} must be in [0, 1)"),
                });
            }
        }
        Ok(Adam {
            cfg,
            m: params.zeros_like(),
            v: params.zeros_like(),
            t: 0,
        })
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.t
    }

    /// The learning rate that will apply to the *next* step (after
    /// warmup scaling).
    #[must_use]
    pub fn current_lr(&self) -> f32 {
        let step = self.t + 1;
        if self.cfg.warmup_steps > 0 && step <= self.cfg.warmup_steps {
            self.cfg.lr * step as f32 / self.cfg.warmup_steps as f32
        } else {
            self.cfg.lr
        }
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grads` does not match the optimizer state.
    pub fn step(&mut self, params: &mut ParamSet, grads: &ParamSet) -> Result<(), NnError> {
        // Global-norm clipping on a scaled copy when needed.
        let gnorm = grads.global_norm();
        let clip_scale = if self.cfg.clip_norm > 0.0 && gnorm > f64::from(self.cfg.clip_norm) {
            (f64::from(self.cfg.clip_norm) / gnorm) as f32
        } else {
            1.0
        };

        let lr = self.current_lr();
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);

        let p_tensors = params.tensors_mut();
        let m_tensors = self.m.tensors_mut();
        let v_tensors = self.v.tensors_mut();
        let g_tensors = grads.tensors();
        if p_tensors.len() != g_tensors.len() {
            return Err(NnError::BadConfig {
                detail: "gradient structure does not match parameters".into(),
            });
        }

        for (((p, g), m), v) in p_tensors
            .into_iter()
            .zip(g_tensors)
            .zip(m_tensors)
            .zip(v_tensors)
        {
            let pd = p.data_mut();
            let gd = g.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            for i in 0..pd.len() {
                let gi = gd[i] * clip_scale;
                md[i] = b1 * md[i] + (1.0 - b1) * gi;
                vd[i] = b2 * vd[i] + (1.0 - b2) * gi * gi;
                let m_hat = md[i] / bias1;
                let v_hat = vd[i] / bias2;
                pd[i] -= lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
            }
        }
        Ok(())
    }
}

/// Adam over a flat list of matrices (used for LoRA adapters, which do not
/// form a [`ParamSet`]).
///
/// Shares the hyperparameter struct and semantics of [`Adam`].
#[derive(Debug, Clone)]
pub struct FlatAdam {
    cfg: AdamConfig,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: usize,
}

use chipalign_tensor::Matrix;

impl FlatAdam {
    /// Creates optimizer state shaped like `params`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Adam::new`].
    pub fn new(params: &[Matrix], cfg: AdamConfig) -> Result<Self, NnError> {
        if !cfg.lr.is_finite() || cfg.lr <= 0.0 {
            return Err(NnError::BadConfig {
                detail: format!("learning rate {} must be positive", cfg.lr),
            });
        }
        let zeros = |ms: &[Matrix]| -> Vec<Matrix> {
            ms.iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect()
        };
        Ok(FlatAdam {
            cfg,
            m: zeros(params),
            v: zeros(params),
            t: 0,
        })
    }

    /// Applies one update.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `params` and `grads` disagree in
    /// structure with the optimizer state.
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) -> Result<(), NnError> {
        if params.len() != grads.len() || params.len() != self.m.len() {
            return Err(NnError::BadConfig {
                detail: "flat gradient structure does not match parameters".into(),
            });
        }
        let gnorm = grads
            .iter()
            .map(|g| {
                let n = f64::from(g.frobenius_norm());
                n * n
            })
            .sum::<f64>()
            .sqrt();
        let clip_scale = if self.cfg.clip_norm > 0.0 && gnorm > f64::from(self.cfg.clip_norm) {
            (f64::from(self.cfg.clip_norm) / gnorm) as f32
        } else {
            1.0
        };
        let step = self.t + 1;
        let lr = if self.cfg.warmup_steps > 0 && step <= self.cfg.warmup_steps {
            self.cfg.lr * step as f32 / self.cfg.warmup_steps as f32
        } else {
            self.cfg.lr
        };
        self.t = step;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bias1 = 1.0 - b1.powi(step as i32);
        let bias2 = 1.0 - b2.powi(step as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            let pd = p.data_mut();
            let gd = g.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            for i in 0..pd.len() {
                let gi = gd[i] * clip_scale;
                md[i] = b1 * md[i] + (1.0 - b1) * gi;
                vd[i] = b2 * vd[i] + (1.0 - b2) * gi * gi;
                pd[i] -= lr * (md[i] / bias1) / ((vd[i] / bias2).sqrt() + self.cfg.eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn params() -> ParamSet {
        let mut arch = ArchSpec::tiny("adam");
        arch.vocab_size = 99;
        ParamSet::init(&arch, &mut Pcg32::seed(1))
    }

    #[test]
    fn rejects_bad_config() {
        let p = params();
        let bad_lr = AdamConfig {
            lr: 0.0,
            ..AdamConfig::default()
        };
        assert!(Adam::new(&p, bad_lr).is_err());
        let bad_beta = AdamConfig {
            beta1: 1.0,
            ..AdamConfig::default()
        };
        assert!(Adam::new(&p, bad_beta).is_err());
    }

    #[test]
    fn step_moves_against_gradient() {
        let mut p = params();
        let mut grads = p.zeros_like();
        // Positive gradient on one weight -> weight must decrease.
        grads.lm_head.data_mut()[0] = 1.0;
        let before = p.lm_head.data()[0];
        let mut adam = Adam::new(&p, AdamConfig::default()).expect("ok");
        // Burn past warmup so lr is the full value.
        for _ in 0..25 {
            adam.step(&mut p, &grads).expect("ok");
        }
        assert!(p.lm_head.data()[0] < before);
    }

    #[test]
    fn warmup_ramps_lr() {
        let p = params();
        let cfg = AdamConfig {
            warmup_steps: 10,
            lr: 1.0,
            ..AdamConfig::default()
        };
        let mut adam = Adam::new(&p, cfg).expect("ok");
        assert!((adam.current_lr() - 0.1).abs() < 1e-6);
        let mut pp = params();
        let g = pp.zeros_like();
        for _ in 0..10 {
            adam.step(&mut pp, &g).expect("ok");
        }
        assert!((adam.current_lr() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut p = params();
        let mut grads = p.zeros_like();
        // Gigantic gradient everywhere.
        for t in grads.tensors_mut() {
            t.map_inplace(|_| 1000.0);
        }
        let cfg = AdamConfig {
            clip_norm: 1.0,
            warmup_steps: 0,
            lr: 0.1,
            ..AdamConfig::default()
        };
        let before = p.clone();
        let mut adam = Adam::new(&p, cfg).expect("ok");
        adam.step(&mut p, &grads).expect("ok");
        // Per-parameter movement bounded by lr / (sqrt(v_hat)...) ~ lr.
        let mut max_move = 0.0f32;
        for (a, b) in p.tensors().iter().zip(before.tensors()) {
            let d = a.sub(b).expect("same shape").max_abs();
            max_move = max_move.max(d);
        }
        assert!(max_move <= 0.11, "update exploded: {max_move}");
    }

    #[test]
    fn zero_gradient_moves_nothing() {
        let mut p = params();
        let before = p.clone();
        let g = p.zeros_like();
        let mut adam = Adam::new(&p, AdamConfig::default()).expect("ok");
        adam.step(&mut p, &g).expect("ok");
        for (a, b) in p.tensors().iter().zip(before.tensors()) {
            assert!(a.approx_eq(b, 1e-7));
        }
    }

    #[test]
    fn steps_counter_advances() {
        let mut p = params();
        let g = p.zeros_like();
        let mut adam = Adam::new(&p, AdamConfig::default()).expect("ok");
        assert_eq!(adam.steps(), 0);
        adam.step(&mut p, &g).expect("ok");
        adam.step(&mut p, &g).expect("ok");
        assert_eq!(adam.steps(), 2);
    }
}

//! Flat parameter containers shared by the model, its gradients, and the
//! optimizer state.
//!
//! [`ParamSet`] holds one matrix per architecture parameter in a fixed
//! order; the same type represents weights, gradients, and Adam moments, so
//! the optimizer can walk all three in lockstep with
//! [`ParamSet::tensors_mut`].

use chipalign_model::{ArchSpec, Checkpoint, ModelError};
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::Matrix;

use crate::NnError;

/// The per-layer weights of a LLaMA-style transformer block.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerParams {
    /// RMSNorm gain before attention (`1 × d_model`).
    pub norm1: Matrix,
    /// Query projection (`d_model × d_model`).
    pub wq: Matrix,
    /// Key projection (`d_model × d_model`).
    pub wk: Matrix,
    /// Value projection (`d_model × d_model`).
    pub wv: Matrix,
    /// Output projection (`d_model × d_model`).
    pub wo: Matrix,
    /// RMSNorm gain before the MLP (`1 × d_model`).
    pub norm2: Matrix,
    /// SwiGLU gate projection (`d_ff × d_model`).
    pub wg: Matrix,
    /// SwiGLU up projection (`d_ff × d_model`).
    pub wu: Matrix,
    /// SwiGLU down projection (`d_model × d_ff`).
    pub wd: Matrix,
}

/// All weights of a [`crate::TinyLm`], in checkpoint order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSet {
    /// Token embedding table (`vocab × d_model`).
    pub embed: Matrix,
    /// Transformer blocks.
    pub layers: Vec<LayerParams>,
    /// Final RMSNorm gain (`1 × d_model`).
    pub final_norm: Matrix,
    /// LM head (`vocab × d_model`).
    pub lm_head: Matrix,
}

impl ParamSet {
    /// Randomly initialises a parameter set for an architecture
    /// (Xavier projections, small-normal embeddings, unit norm gains).
    #[must_use]
    pub fn init(arch: &ArchSpec, rng: &mut Pcg32) -> Self {
        let layers = (0..arch.n_layers)
            .map(|_| LayerParams {
                norm1: Matrix::ones(1, arch.d_model),
                wq: Matrix::xavier(arch.d_model, arch.d_model, rng),
                wk: Matrix::xavier(arch.d_model, arch.d_model, rng),
                wv: Matrix::xavier(arch.d_model, arch.d_model, rng),
                wo: Matrix::xavier(arch.d_model, arch.d_model, rng),
                norm2: Matrix::ones(1, arch.d_model),
                wg: Matrix::xavier(arch.d_ff, arch.d_model, rng),
                wu: Matrix::xavier(arch.d_ff, arch.d_model, rng),
                wd: Matrix::xavier(arch.d_model, arch.d_ff, rng),
            })
            .collect();
        ParamSet {
            embed: Matrix::randn(arch.vocab_size, arch.d_model, 0.02, rng),
            layers,
            final_norm: Matrix::ones(1, arch.d_model),
            lm_head: Matrix::randn(arch.vocab_size, arch.d_model, 0.02, rng),
        }
    }

    /// An all-zero set with the same shapes as `self` (for gradients and
    /// optimizer moments).
    #[must_use]
    pub fn zeros_like(&self) -> Self {
        let z = |m: &Matrix| Matrix::zeros(m.rows(), m.cols());
        ParamSet {
            embed: z(&self.embed),
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams {
                    norm1: z(&l.norm1),
                    wq: z(&l.wq),
                    wk: z(&l.wk),
                    wv: z(&l.wv),
                    wo: z(&l.wo),
                    norm2: z(&l.norm2),
                    wg: z(&l.wg),
                    wu: z(&l.wu),
                    wd: z(&l.wd),
                })
                .collect(),
            final_norm: z(&self.final_norm),
            lm_head: z(&self.lm_head),
        }
    }

    /// All tensors in fixed canonical order.
    #[must_use]
    pub fn tensors(&self) -> Vec<&Matrix> {
        let mut out = vec![&self.embed];
        for l in &self.layers {
            out.extend([
                &l.norm1, &l.wq, &l.wk, &l.wv, &l.wo, &l.norm2, &l.wg, &l.wu, &l.wd,
            ]);
        }
        out.push(&self.final_norm);
        out.push(&self.lm_head);
        out
    }

    /// All tensors, mutably, in the same order as [`ParamSet::tensors`].
    pub fn tensors_mut(&mut self) -> Vec<&mut Matrix> {
        let mut out: Vec<&mut Matrix> = vec![&mut self.embed];
        for l in &mut self.layers {
            out.push(&mut l.norm1);
            out.push(&mut l.wq);
            out.push(&mut l.wk);
            out.push(&mut l.wv);
            out.push(&mut l.wo);
            out.push(&mut l.norm2);
            out.push(&mut l.wg);
            out.push(&mut l.wu);
            out.push(&mut l.wd);
        }
        out.push(&mut self.final_norm);
        out.push(&mut self.lm_head);
        out
    }

    /// Canonical checkpoint names, index-aligned with [`ParamSet::tensors`].
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut out = vec!["model.embed_tokens.weight".to_string()];
        for i in 0..self.layers.len() {
            out.push(format!("model.layers.{i}.input_layernorm.weight"));
            out.push(format!("model.layers.{i}.self_attn.q_proj.weight"));
            out.push(format!("model.layers.{i}.self_attn.k_proj.weight"));
            out.push(format!("model.layers.{i}.self_attn.v_proj.weight"));
            out.push(format!("model.layers.{i}.self_attn.o_proj.weight"));
            out.push(format!("model.layers.{i}.post_attention_layernorm.weight"));
            out.push(format!("model.layers.{i}.mlp.gate_proj.weight"));
            out.push(format!("model.layers.{i}.mlp.up_proj.weight"));
            out.push(format!("model.layers.{i}.mlp.down_proj.weight"));
        }
        out.push("model.norm.weight".to_string());
        out.push("lm_head.weight".to_string());
        out
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn scalar_count(&self) -> usize {
        self.tensors().iter().map(|t| t.len()).sum()
    }

    /// Accumulates `other` scaled by `alpha` into `self` (gradient
    /// accumulation across a batch).
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if the two sets do not match.
    pub fn axpy(&mut self, alpha: f32, other: &ParamSet) -> Result<(), NnError> {
        let others = other.tensors();
        for (mine, theirs) in self.tensors_mut().into_iter().zip(others) {
            mine.axpy(alpha, theirs)?;
        }
        Ok(())
    }

    /// Global L2 norm over all parameters (for gradient clipping).
    #[must_use]
    pub fn global_norm(&self) -> f64 {
        self.tensors()
            .iter()
            .map(|t| {
                let n = f64::from(t.frobenius_norm());
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Multiplies every tensor by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for t in self.tensors_mut() {
            t.scale_inplace(s);
        }
    }

    /// Converts to a checkpoint for the given architecture.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the shapes do not instantiate `arch`.
    pub fn to_checkpoint(&self, arch: &ArchSpec) -> Result<Checkpoint, ModelError> {
        let tensors = self
            .names()
            .into_iter()
            .zip(self.tensors().into_iter().cloned())
            .collect();
        Checkpoint::from_parts(arch.clone(), tensors, Default::default())
    }

    /// Reconstructs a parameter set from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingParam`] if the checkpoint lacks any of
    /// the architecture's parameters.
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, ModelError> {
        ckpt.validate()?;
        let arch = ckpt.arch();
        let grab = |name: &str| -> Result<Matrix, ModelError> {
            ckpt.get(name)
                .cloned()
                .ok_or_else(|| ModelError::MissingParam { name: name.into() })
        };
        let mut layers = Vec::with_capacity(arch.n_layers);
        for i in 0..arch.n_layers {
            layers.push(LayerParams {
                norm1: grab(&format!("model.layers.{i}.input_layernorm.weight"))?,
                wq: grab(&format!("model.layers.{i}.self_attn.q_proj.weight"))?,
                wk: grab(&format!("model.layers.{i}.self_attn.k_proj.weight"))?,
                wv: grab(&format!("model.layers.{i}.self_attn.v_proj.weight"))?,
                wo: grab(&format!("model.layers.{i}.self_attn.o_proj.weight"))?,
                norm2: grab(&format!("model.layers.{i}.post_attention_layernorm.weight"))?,
                wg: grab(&format!("model.layers.{i}.mlp.gate_proj.weight"))?,
                wu: grab(&format!("model.layers.{i}.mlp.up_proj.weight"))?,
                wd: grab(&format!("model.layers.{i}.mlp.down_proj.weight"))?,
            });
        }
        Ok(ParamSet {
            embed: grab("model.embed_tokens.weight")?,
            layers,
            final_norm: grab("model.norm.weight")?,
            lm_head: grab("lm_head.weight")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("params");
        a.vocab_size = 99;
        a
    }

    #[test]
    fn init_matches_arch_scalar_count() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(1));
        assert_eq!(p.scalar_count(), a.scalar_count());
        assert_eq!(p.tensors().len(), a.param_count());
    }

    #[test]
    fn names_align_with_tensors() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(1));
        let names = p.names();
        let tensors = p.tensors();
        assert_eq!(names.len(), tensors.len());
        for (name, tensor) in names.iter().zip(&tensors) {
            assert_eq!(
                a.shape_of(name),
                Some(tensor.shape()),
                "shape mismatch for {name}"
            );
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(2));
        let ckpt = p.to_checkpoint(&a).expect("valid");
        let back = ParamSet::from_checkpoint(&ckpt).expect("round trip");
        assert_eq!(p, back);
    }

    #[test]
    fn zeros_like_matches_shapes() {
        let p = ParamSet::init(&arch(), &mut Pcg32::seed(3));
        let z = p.zeros_like();
        assert_eq!(z.scalar_count(), p.scalar_count());
        assert_eq!(z.global_norm(), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let p = ParamSet::init(&arch(), &mut Pcg32::seed(4));
        let mut acc = p.zeros_like();
        acc.axpy(2.0, &p).expect("same shapes");
        assert!((acc.global_norm() - 2.0 * p.global_norm()).abs() < 1e-3 * p.global_norm());
    }

    #[test]
    fn scale_inplace_scales_norm() {
        let mut p = ParamSet::init(&arch(), &mut Pcg32::seed(5));
        let n0 = p.global_norm();
        p.scale_inplace(0.5);
        assert!((p.global_norm() - 0.5 * n0).abs() < 1e-3 * n0);
    }

    #[test]
    fn tensors_mut_order_matches_tensors() {
        let mut p = ParamSet::init(&arch(), &mut Pcg32::seed(6));
        let shapes: Vec<_> = p.tensors().iter().map(|t| t.shape()).collect();
        let shapes_mut: Vec<_> = p.tensors_mut().iter().map(|t| t.shape()).collect();
        assert_eq!(shapes, shapes_mut);
    }
}

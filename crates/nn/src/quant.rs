//! Int8 decode weights: the quantized twin of [`ParamSet`]'s projections.
//!
//! A [`QuantParamSet`] holds per-row-scaled int8 copies of exactly the
//! tensors the [`should_quantize`](chipalign_model::qformat::should_quantize)
//! policy covers — the seven projection matrices of every layer plus the LM
//! head. Norm gains and the embedding table are *not* duplicated here: the
//! decode path keeps reading those from the f32 [`ParamSet`], because they
//! are either numerically sensitive (norms) or a per-token row lookup that
//! saves no bandwidth when quantized (embedding).
//!
//! The set is attached to a [`crate::TinyLm`] as an optional sidecar;
//! when present, [`crate::KvCache`] decode routes every projection through
//! the int8 kernels while training and the full f32 forward pass stay
//! untouched.

use chipalign_model::qformat::QuantTensor;
use chipalign_model::QuantCheckpoint;
use chipalign_tensor::QuantizedMatrix;

use crate::params::{LayerParams, ParamSet};
use crate::NnError;

/// Int8 projections of one transformer block (same shapes as the
/// corresponding [`LayerParams`] fields).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLayer {
    /// Query projection.
    pub wq: QuantizedMatrix,
    /// Key projection.
    pub wk: QuantizedMatrix,
    /// Value projection.
    pub wv: QuantizedMatrix,
    /// Output projection.
    pub wo: QuantizedMatrix,
    /// SwiGLU gate projection.
    pub wg: QuantizedMatrix,
    /// SwiGLU up projection.
    pub wu: QuantizedMatrix,
    /// SwiGLU down projection.
    pub wd: QuantizedMatrix,
}

impl QuantLayer {
    fn quantize(layer: &LayerParams) -> Self {
        QuantLayer {
            wq: QuantizedMatrix::quantize(&layer.wq),
            wk: QuantizedMatrix::quantize(&layer.wk),
            wv: QuantizedMatrix::quantize(&layer.wv),
            wo: QuantizedMatrix::quantize(&layer.wo),
            wg: QuantizedMatrix::quantize(&layer.wg),
            wu: QuantizedMatrix::quantize(&layer.wu),
            wd: QuantizedMatrix::quantize(&layer.wd),
        }
    }

    fn weights_bytes(&self) -> u64 {
        [
            &self.wq, &self.wk, &self.wv, &self.wo, &self.wg, &self.wu, &self.wd,
        ]
        .iter()
        .map(|q| q.weights_bytes())
        .sum()
    }
}

/// All int8 decode weights of a model: one [`QuantLayer`] per transformer
/// block plus the quantized LM head.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantParamSet {
    /// Per-block int8 projections, index-aligned with [`ParamSet::layers`].
    pub layers: Vec<QuantLayer>,
    /// Quantized LM head (`vocab × d_model`).
    pub lm_head: QuantizedMatrix,
}

impl QuantParamSet {
    /// Quantizes the projection weights of an f32 parameter set.
    #[must_use]
    pub fn quantize(params: &ParamSet) -> Self {
        QuantParamSet {
            layers: params.layers.iter().map(QuantLayer::quantize).collect(),
            lm_head: QuantizedMatrix::quantize(&params.lm_head),
        }
    }

    /// Rebuilds the set from a persisted [`QuantCheckpoint`], reusing the
    /// *stored* codes and scales rather than re-quantizing — the property
    /// that makes a saved int8 artifact decode bit-identically to the model
    /// that produced it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if any projection tensor is missing
    /// or was not stored as int8.
    pub fn from_quant_checkpoint(ckpt: &QuantCheckpoint) -> Result<Self, NnError> {
        let grab = |name: String| -> Result<QuantizedMatrix, NnError> {
            match ckpt.get(&name) {
                Some(QuantTensor::Int8(q)) => Ok(q.clone()),
                Some(QuantTensor::F32(_)) => Err(NnError::BadConfig {
                    detail: format!("projection {name} stored as f32 in quantized checkpoint"),
                }),
                None => Err(NnError::BadConfig {
                    detail: format!("quantized checkpoint missing {name}"),
                }),
            }
        };
        let mut layers = Vec::with_capacity(ckpt.arch().n_layers);
        for i in 0..ckpt.arch().n_layers {
            layers.push(QuantLayer {
                wq: grab(format!("model.layers.{i}.self_attn.q_proj.weight"))?,
                wk: grab(format!("model.layers.{i}.self_attn.k_proj.weight"))?,
                wv: grab(format!("model.layers.{i}.self_attn.v_proj.weight"))?,
                wo: grab(format!("model.layers.{i}.self_attn.o_proj.weight"))?,
                wg: grab(format!("model.layers.{i}.mlp.gate_proj.weight"))?,
                wu: grab(format!("model.layers.{i}.mlp.up_proj.weight"))?,
                wd: grab(format!("model.layers.{i}.mlp.down_proj.weight"))?,
            });
        }
        Ok(QuantParamSet {
            layers,
            lm_head: grab("lm_head.weight".to_string())?,
        })
    }

    /// Bytes the int8 projections stream from memory per decoded token.
    #[must_use]
    pub fn weights_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(QuantLayer::weights_bytes)
            .sum::<u64>()
            + self.lm_head.weights_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::{ArchSpec, Checkpoint};
    use chipalign_tensor::rng::Pcg32;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("quant");
        a.vocab_size = 99;
        a
    }

    #[test]
    fn quantize_covers_every_projection() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(1));
        let q = QuantParamSet::quantize(&p);
        assert_eq!(q.layers.len(), a.n_layers);
        for (ql, fl) in q.layers.iter().zip(&p.layers) {
            assert_eq!(ql.wq.shape(), fl.wq.shape());
            assert_eq!(ql.wd.shape(), fl.wd.shape());
        }
        assert_eq!(q.lm_head.shape(), p.lm_head.shape());
    }

    #[test]
    fn weights_bytes_beat_f32_projections() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(2));
        let q = QuantParamSet::quantize(&p);
        let f32_proj_bytes: u64 = p
            .layers
            .iter()
            .map(|l| {
                4 * [&l.wq, &l.wk, &l.wv, &l.wo, &l.wg, &l.wu, &l.wd]
                    .iter()
                    .map(|m| m.len() as u64)
                    .sum::<u64>()
            })
            .sum::<u64>()
            + 4 * p.lm_head.len() as u64;
        assert!(
            q.weights_bytes() < f32_proj_bytes / 2,
            "int8 projections must stream under half the f32 bytes"
        );
    }

    #[test]
    fn quant_checkpoint_round_trip_preserves_codes() {
        let a = arch();
        let p = ParamSet::init(&a, &mut Pcg32::seed(3));
        let ckpt = p.to_checkpoint(&a).expect("valid");
        let qckpt = QuantCheckpoint::quantize(&ckpt);
        let from_ckpt = QuantParamSet::from_quant_checkpoint(&qckpt).expect("complete");
        let direct = QuantParamSet::quantize(&p);
        // Same f32 source, same quantizer: codes and scales agree exactly.
        assert_eq!(from_ckpt, direct);
    }

    #[test]
    fn from_quant_checkpoint_loads_every_layer() {
        let a = arch();
        let ckpt = Checkpoint::random(&a, &mut Pcg32::seed(4));
        let q = QuantCheckpoint::quantize(&ckpt);
        let set = QuantParamSet::from_quant_checkpoint(&q).expect("complete checkpoint");
        assert_eq!(set.layers.len(), a.n_layers);
        assert_eq!(set.lm_head.shape(), (a.vocab_size, a.d_model));
    }
}

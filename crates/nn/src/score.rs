//! Likelihood scoring for multiple-choice evaluation.
//!
//! The ChipNeMo-style multi-choice chip QA benchmark (paper Figure 7)
//! contains no instructions: the model is scored by which answer option it
//! assigns the highest likelihood. This module computes the (optionally
//! length-normalised) log-probability a model assigns to a continuation
//! given a prompt, and the induced argmax choice.

use chipalign_tensor::ops;

use crate::model::TinyLm;
use crate::NnError;

/// Log-probability that `model` continues `prompt` with `continuation`
/// (natural log, summed over continuation tokens).
///
/// # Errors
///
/// Returns [`NnError::BadSequence`] for empty inputs or a combined sequence
/// longer than the context window, and [`NnError::BadToken`] for
/// out-of-vocabulary ids.
pub fn continuation_logprob(
    model: &TinyLm,
    prompt: &[u32],
    continuation: &[u32],
) -> Result<f64, NnError> {
    if prompt.is_empty() || continuation.is_empty() {
        return Err(NnError::BadSequence {
            detail: "prompt and continuation must be non-empty".into(),
        });
    }
    let mut full = prompt.to_vec();
    full.extend_from_slice(continuation);
    let logits = model.logits(&full)?;
    let mut total = 0.0f64;
    for (i, &tok) in continuation.iter().enumerate() {
        // Position prompt.len()-1+i predicts continuation[i].
        let row = logits.row(prompt.len() - 1 + i);
        let lse = ops::logsumexp(row);
        total += f64::from(row[tok as usize] - lse);
    }
    Ok(total)
}

/// Scores each choice and returns `(best_index, scores)`.
///
/// With `length_normalize`, each score is divided by the choice's token
/// count, removing the bias toward short answers.
///
/// # Errors
///
/// Returns [`NnError::BadSequence`] for an empty choice list and forwards
/// scoring failures.
pub fn choose(
    model: &TinyLm,
    prompt: &[u32],
    choices: &[Vec<u32>],
    length_normalize: bool,
) -> Result<(usize, Vec<f64>), NnError> {
    if choices.is_empty() {
        return Err(NnError::BadSequence {
            detail: "at least one choice is required".into(),
        });
    }
    let mut scores = Vec::with_capacity(choices.len());
    for choice in choices {
        let lp = continuation_logprob(model, prompt, choice)?;
        let score = if length_normalize {
            lp / choice.len() as f64
        } else {
            lp
        };
        scores.push(score);
    }
    let best = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok((best, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, Example, TrainConfig};
    use crate::AdamConfig;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("score");
        a.vocab_size = 99;
        a
    }

    fn model_trained_on(seq: &[u32]) -> TinyLm {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(41)).expect("valid");
        let data = vec![Example::pretrain(seq.to_vec())];
        let cfg = TrainConfig {
            steps: 80,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 8,
        };
        train(&mut model, &data, &cfg).expect("ok");
        model
    }

    #[test]
    fn logprob_is_negative_and_finite() {
        let model = model_trained_on(&[10, 20, 30, 40]);
        let lp = continuation_logprob(&model, &[10, 20], &[30, 40]).expect("ok");
        assert!(lp < 0.0 && lp.is_finite());
    }

    #[test]
    fn memorized_continuation_beats_random() {
        let seq = [10u32, 20, 30, 40, 50, 60];
        let model = model_trained_on(&seq);
        let good = continuation_logprob(&model, &seq[..3], &seq[3..]).expect("ok");
        let bad = continuation_logprob(&model, &seq[..3], &[77, 88, 91]).expect("ok");
        assert!(
            good > bad + 1.0,
            "trained continuation {good} should beat random {bad}"
        );
    }

    #[test]
    fn choose_picks_memorized_answer() {
        let seq = [10u32, 20, 30, 40, 50, 60];
        let model = model_trained_on(&seq);
        let choices = vec![vec![77, 88, 91], seq[3..].to_vec(), vec![5, 6, 7]];
        let (best, scores) = choose(&model, &seq[..3], &choices, true).expect("ok");
        assert_eq!(best, 1, "scores were {scores:?}");
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn length_normalization_changes_scale() {
        let model = model_trained_on(&[10, 20, 30, 40]);
        let (_, raw) = choose(&model, &[10, 20], &[vec![30, 40]], false).expect("ok");
        let (_, norm) = choose(&model, &[10, 20], &[vec![30, 40]], true).expect("ok");
        assert!((raw[0] / 2.0 - norm[0]).abs() < 1e-9);
    }

    #[test]
    fn additivity_of_logprob() {
        // log p(ab | prompt) = log p(a | prompt) + log p(b | prompt+a)
        let model = model_trained_on(&[10, 20, 30, 40, 50]);
        let joint = continuation_logprob(&model, &[10, 20], &[30, 40]).expect("ok");
        let first = continuation_logprob(&model, &[10, 20], &[30]).expect("ok");
        let second = continuation_logprob(&model, &[10, 20, 30], &[40]).expect("ok");
        assert!(
            (joint - (first + second)).abs() < 1e-4,
            "chain rule violated: {joint} vs {}",
            first + second
        );
    }

    #[test]
    fn empty_inputs_rejected() {
        let model = model_trained_on(&[10, 20, 30]);
        assert!(continuation_logprob(&model, &[], &[1]).is_err());
        assert!(continuation_logprob(&model, &[1], &[]).is_err());
        assert!(choose(&model, &[1], &[], true).is_err());
    }
}

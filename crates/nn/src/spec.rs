//! Speculative decoding: a cheap draft model proposes tokens, the target
//! verifies them in one batched forward.
//!
//! [`SpecDecoder`] wraps a target [`StepDecoder`] and a draft
//! [`TinyLm`] — typically another entry of the same merge family (the
//! instruct endpoint drafting for `merge:…@λ`, an `#int8` clone drafting
//! for its f32 base) or a truncated-layer self-draft built with
//! [`TinyLm::truncate_layers`]. Each round:
//!
//! 1. the target commits its own next token `t0` (argmax of its pending
//!    logits — exactly what a plain step would emit);
//! 2. the draft autoregressively proposes up to `k` follow-on tokens
//!    `d1…dm`;
//! 3. the target runs **one** batched forward over `[t0, d1…dm]` through
//!    [`KvCache::verify_chunk`] (the PR 4 skinny-GEMM path), getting the
//!    next-token logits after every position for roughly the price of one
//!    decode step;
//! 4. the longest prefix of drafts agreeing with the target's own argmax
//!    at each position is committed, and the cache rewinds past the first
//!    disagreement with [`KvCache::truncate`].
//!
//! # Byte-identity by construction
//!
//! Every emitted token is the argmax of target logits that are
//! bit-identical to the sequential decode's ([`KvCache::verify_chunk`]
//! pins that), so a greedy speculative transcript **cannot** differ from
//! the plain one — the draft only decides how many target steps are
//! batched together, never what they produce. The verified row after the
//! accepted prefix doubles as the next round's pending logits, so a
//! rejection costs nothing extra: the "bonus" token the target wanted
//! instead is simply next round's `t0`. Rounds are paced with
//! [`KvCache::lossless_run`] so rewinds stay exact on int8-KV pools, and
//! window-slide points land exactly where plain decoding puts them.
//!
//! Sampled sessions (temperature > 0) consume an RNG stream that a
//! multi-token round cannot keep in lockstep, so they transparently
//! degrade to plain stepping.
//!
//! # Fault isolation
//!
//! The draft phase runs under [`std::panic::catch_unwind`]: a panicking
//! draft model permanently disables speculation for the session and the
//! round completes as a plain decode step — the session (and its
//! transcript) survives unchanged. Draft *errors* (e.g. a transient
//! allocation failure) fall back for the round only. A serving layer can
//! inject faults through [`SpecDecoder::set_draft_probe`].

use std::collections::VecDeque;
use std::sync::Arc;

use chipalign_tensor::ops;

use crate::generate::StepDecoder;
use crate::kv::KvCache;
use crate::model::TinyLm;
use crate::{KvDtype, NnError};

/// Largest draft length a [`SpecDecoder`] accepts: the verified chunk is
/// `k + 1` tokens (`t0` plus the drafts) and must stay within the skinny
/// GEMM's bit-identity bound.
pub const SPEC_K_MAX: usize = chipalign_tensor::tune::GEMM_SKINNY_M_MAX - 1;

/// Counters accumulated by a [`SpecDecoder`] since the last
/// [`SpecDecoder::take_stats`] — the per-session feed for the serving
/// metrics (`draft_tokens_proposed`, `accepted_draft_tokens`,
/// `spec_fallbacks`). Acceptance rate is `accepted / proposed`, derived at
/// read time so fleet aggregation can sum the raw counters exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Draft tokens proposed for verification.
    pub proposed: u64,
    /// Draft tokens the target agreed with (emitted without their own
    /// sequential decode step).
    pub accepted: u64,
    /// Rounds that degraded to a plain decode step because the draft
    /// failed or the verification forward could not run.
    pub fallbacks: u64,
    /// Draft panics caught (each also disables speculation for the
    /// session and counts as a fallback).
    pub draft_panics: u64,
}

/// A speculative decoding session: same `step()` contract as
/// [`StepDecoder`] (one token per call, `None` when done), same greedy
/// transcript to the byte, fewer target forwards.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
///
/// use chipalign_model::ArchSpec;
/// use chipalign_nn::generate::{GenerateConfig, StepDecoder};
/// use chipalign_nn::spec::SpecDecoder;
/// use chipalign_nn::TinyLm;
/// use chipalign_tensor::rng::Pcg32;
///
/// # fn main() -> Result<(), chipalign_nn::NnError> {
/// let mut arch = ArchSpec::tiny("spec");
/// arch.vocab_size = 99;
/// let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1))?);
/// let draft = Arc::new(model.truncate_layers(1)?);
/// let cfg = GenerateConfig { max_new_tokens: 4, ..GenerateConfig::default() };
/// let target = StepDecoder::new(&model, &[5, 6, 7], &cfg)?;
/// let mut session = SpecDecoder::new(target, &draft, 4)?;
/// let mut out = Vec::new();
/// while let Some(tok) = session.step()? {
///     out.push(tok);
/// }
/// assert!(out.len() <= 4);
/// # Ok(())
/// # }
/// ```
pub struct SpecDecoder {
    target: StepDecoder,
    /// Contiguous cache over the draft model: truncation is exact at any
    /// position, so draft state can rewind to any accepted prefix.
    draft: KvCache,
    /// Offset of the draft cache's first position into the target's
    /// context. Invariant between rounds: `draft.tokens()` is a slice of
    /// `target.context()[draft_base..]` (re-synced lazily each round).
    draft_base: usize,
    k: usize,
    /// Cleared permanently when the draft panics: the session finishes as
    /// a plain stepper.
    spec_enabled: bool,
    /// Tokens committed by a round but not yet handed out by `step()`, so
    /// callers still receive exactly one token per call.
    burst: VecDeque<u32>,
    stats: SpecStats,
    /// Called at the start of every draft phase, inside the panic
    /// isolation boundary — the serving layer's fault-injection hook.
    draft_probe: Option<Box<dyn FnMut() + Send>>,
}

impl std::fmt::Debug for SpecDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecDecoder")
            .field("target", &self.target)
            .field("draft_base", &self.draft_base)
            .field("k", &self.k)
            .field("spec_enabled", &self.spec_enabled)
            .field("burst", &self.burst)
            .field("stats", &self.stats)
            .field("draft_probe", &self.draft_probe.is_some())
            .finish_non_exhaustive()
    }
}

impl SpecDecoder {
    /// Wraps `target` with speculative drafting by `draft_model`, at most
    /// `k` draft tokens per round.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `k` is 0 or exceeds
    /// [`SPEC_K_MAX`], or if the draft's vocabulary size differs from the
    /// target's (their argmax indices must be comparable).
    pub fn new(
        target: StepDecoder,
        draft_model: &Arc<TinyLm>,
        k: usize,
    ) -> Result<SpecDecoder, NnError> {
        if k == 0 || k > SPEC_K_MAX {
            return Err(NnError::BadConfig {
                detail: format!("spec draft length k must lie in [1, {SPEC_K_MAX}], got {k}"),
            });
        }
        let target_vocab = target.cache().model().arch().vocab_size;
        let draft_vocab = draft_model.arch().vocab_size;
        if target_vocab != draft_vocab {
            return Err(NnError::BadConfig {
                detail: format!(
                    "spec draft vocab ({draft_vocab}) must match the target vocab ({target_vocab})"
                ),
            });
        }
        Ok(SpecDecoder {
            target,
            draft: KvCache::new(draft_model),
            draft_base: 0,
            k,
            spec_enabled: true,
            burst: VecDeque::new(),
            stats: SpecStats::default(),
            draft_probe: None,
        })
    }

    /// Installs a hook called at the start of every draft phase, inside
    /// the panic-isolation boundary. The serving layer uses this to inject
    /// draft faults without the fault machinery leaking into this crate.
    pub fn set_draft_probe(&mut self, probe: Box<dyn FnMut() + Send>) {
        self.draft_probe = Some(probe);
    }

    /// The wrapped target session (prompt bookkeeping, prefill state,
    /// emitted counters — everything a scheduler reads lives there).
    #[must_use]
    pub fn target(&self) -> &StepDecoder {
        &self.target
    }

    /// Mutable access to the wrapped target, for scheduler-driven prefill
    /// draining ([`StepDecoder::prefill_pending`]) and prefix adoption.
    pub fn target_mut(&mut self) -> &mut StepDecoder {
        &mut self.target
    }

    /// Whether speculation is still live (a caught draft panic clears
    /// this permanently; the session then finishes as a plain stepper).
    #[must_use]
    pub fn spec_enabled(&self) -> bool {
        self.spec_enabled
    }

    /// Maximum draft tokens per round.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the session has produced its final token and the burst
    /// buffer is drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.burst.is_empty() && self.target.is_done()
    }

    /// Counters accumulated since the last [`SpecDecoder::take_stats`].
    #[must_use]
    pub fn stats(&self) -> SpecStats {
        self.stats
    }

    /// Drains the accumulated counters (the scheduler harvests these once
    /// per slice and feeds the serving metrics).
    pub fn take_stats(&mut self) -> SpecStats {
        std::mem::take(&mut self.stats)
    }

    /// Produces the next token, or `None` once the session has finished —
    /// the same contract as [`StepDecoder::step`], byte-identical greedy
    /// output included. Internally a call may run a whole speculative
    /// round (several tokens of progress, buffered) or delegate to a plain
    /// step when speculation cannot engage (sampled session, pending
    /// prefill or slide replay, speculation disabled).
    ///
    /// # Errors
    ///
    /// Forwards target forward-pass failures, with [`StepDecoder::step`]'s
    /// poisoned-session semantics. Draft failures never surface here.
    pub fn step(&mut self) -> Result<Option<u32>, NnError> {
        if let Some(tok) = self.burst.pop_front() {
            return Ok(Some(tok));
        }
        if self.target.is_done() {
            return Ok(None);
        }
        if !self.spec_enabled || !self.target.is_greedy() || self.target.is_prefilling() {
            // Plain stepping IS the degraded mode: same code path a
            // non-speculative session runs, so transcripts stay identical.
            return self.target.step();
        }
        self.spec_round()?;
        Ok(self.burst.pop_front())
    }

    /// One speculative round. Precondition (checked by `step`): target is
    /// live, greedy, and fully prefilled, so its pending logits are
    /// current. Always commits at least `t0` into the burst buffer.
    fn spec_round(&mut self) -> Result<(), NnError> {
        // The target's own next token — exactly what a plain step emits.
        let t0 = self.target.spec_choose_next();
        self.target.spec_commit(t0);
        self.burst.push_back(t0);
        if self.target.is_done() {
            // Plain step never feeds the final token; neither do we.
            return Ok(());
        }
        let max_ctx = self.target.spec_max_ctx();
        if self.target.spec_cache_mut().len() >= max_ctx {
            // Same slide point a plain step takes after committing t0.
            self.target.spec_begin_slide();
            return Ok(());
        }

        // How many drafts this round can use. `room`: a plain decoder
        // slides rather than feed once the cache holds `max_ctx - 1`
        // positions past the commit, so draft positions must stop there.
        // `seal_room`: on an int8-KV pool only the seal-free run *after*
        // t0's position may be rewound exactly ([`KvCache::truncate`]);
        // t0 itself is never rewound, so it may seal freely.
        let cache = self.target.spec_cache_mut();
        let base = cache.len();
        let room = max_ctx - base - 1;
        let seal_room = match cache.pool() {
            Some(pool) if pool.dtype() == KvDtype::Int8 => {
                let bt = pool.block_tokens();
                bt - 1 - ((base + 1) % bt)
            }
            _ => usize::MAX,
        };
        let budget = self.target.spec_budget_left();
        let m = self.k.min(budget).min(room).min(seal_room);
        if m == 0 {
            // Nothing to speculate on this round (window edge, seal
            // boundary, or final budget token): plain decode of t0.
            let logits = self.target.spec_cache_mut().decode_step(t0)?;
            self.target.spec_set_last_logits(logits);
            return Ok(());
        }

        // Draft phase, panic-isolated: a dying draft must cancel only
        // speculation, never the session.
        let (drafts, draft_failed, draft_panicked) = {
            let ctx: &[u32] = self.target.context();
            let draft = &mut self.draft;
            let draft_base = &mut self.draft_base;
            let probe = &mut self.draft_probe;
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                if let Some(p) = probe.as_mut() {
                    p();
                }
                draft_propose(draft, draft_base, ctx, m)
            })) {
                Ok(Ok(drafts)) => (drafts, false, false),
                Ok(Err(_)) => (Vec::new(), true, false),
                Err(_) => (Vec::new(), true, true),
            }
        };
        if draft_panicked {
            self.spec_enabled = false;
            self.stats.draft_panics += 1;
        }
        if draft_failed {
            // The draft may be mid-mutation; a reset forces a clean
            // re-sync if speculation ever runs again.
            self.draft.reset();
            self.draft_base = 0;
        }
        if drafts.is_empty() {
            self.stats.fallbacks += 1;
            let logits = self.target.spec_cache_mut().decode_step(t0)?;
            self.target.spec_set_last_logits(logits);
            return Ok(());
        }

        // Verification: one batched target forward over t0 + drafts. Row
        // i holds the logits after the first i + 1 chunk tokens — each row
        // bit-identical to the sequential decode's.
        let mut chunk = Vec::with_capacity(1 + drafts.len());
        chunk.push(t0);
        chunk.extend_from_slice(&drafts);
        let mut rows = match self.target.spec_cache_mut().verify_chunk(&chunk) {
            Ok(rows) => rows,
            Err(_) => {
                // E.g. the pool can back one position but not the chunk:
                // exactly the round a plain decoder could still run.
                self.stats.fallbacks += 1;
                let logits = self.target.spec_cache_mut().decode_step(t0)?;
                self.target.spec_set_last_logits(logits);
                return Ok(());
            }
        };

        // Accept the longest prefix where the target's own argmax agrees
        // with the draft — each acceptance is the token a plain step would
        // have chosen from bit-identical logits.
        let mut accepted = 0usize;
        for (i, &d) in drafts.iter().enumerate() {
            if self.target.is_done() {
                break;
            }
            let choice = ops::argmax(&rows[i]).expect("vocab is non-empty") as u32;
            if choice != d {
                break;
            }
            self.target.spec_commit(d);
            self.burst.push_back(d);
            accepted += 1;
        }
        self.stats.proposed += drafts.len() as u64;
        self.stats.accepted += accepted as u64;

        // Rewind the cache to what a plain decoder would have fed: every
        // committed token except — when the session just finished — the
        // final one, which a plain step never feeds.
        let fed = if self.target.is_done() {
            base + accepted
        } else {
            base + 1 + accepted
        };
        self.target.spec_cache_mut().truncate(fed)?;
        if !self.target.is_done() {
            // The verified row after the accepted prefix is exactly the
            // pending logits a plain decoder would hold now; on a
            // rejection its argmax becomes next round's t0 — the bonus
            // token, for free.
            self.target.spec_set_last_logits(rows.swap_remove(accepted));
        }
        Ok(())
    }
}

/// Re-syncs the draft cache to the target context and greedily proposes up
/// to `m` tokens. Free function (not a method) so the panic-isolated
/// closure borrows only the fields it needs.
///
/// Sync keeps the longest run of draft positions still matching
/// `ctx[draft_base..]`, truncates any divergence (contiguous caches rewind
/// exactly anywhere), and feeds the missing tail. When the draft's own
/// context window cannot hold the tail plus a round of proposals, the
/// draft restarts on a recent window — draft state influences only the
/// acceptance rate, never an output byte, so any window policy is sound.
fn draft_propose(
    draft: &mut KvCache,
    draft_base: &mut usize,
    ctx: &[u32],
    m: usize,
) -> Result<Vec<u32>, NnError> {
    let draft_max = draft.model().arch().max_seq_len;
    let kept = draft.tokens();
    let mut keep = 0usize;
    while keep < kept.len()
        && *draft_base + keep < ctx.len()
        && kept[keep] == ctx[*draft_base + keep]
    {
        keep += 1;
    }
    draft.truncate(keep)?;
    let missing = ctx.len() - (*draft_base + keep);
    let mut last = if keep + missing + m > draft_max {
        // Restart on the most recent window, leaving room to feed this
        // round's proposals.
        let w = draft_max.saturating_sub(m).max(1).min(ctx.len());
        draft.reset();
        *draft_base = ctx.len() - w;
        draft.prefill_chunk(&ctx[*draft_base..])?
    } else {
        draft.prefill_chunk(&ctx[*draft_base + keep..])?
    };
    let mut drafts = Vec::with_capacity(m);
    loop {
        let d = ops::argmax(&last).expect("vocab is non-empty") as u32;
        drafts.push(d);
        if drafts.len() == m || draft.len() >= draft_max {
            return Ok(drafts);
        }
        last = draft.decode_step(d)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenerateConfig};
    use crate::train::{train, Example, TrainConfig};
    use crate::{AdamConfig, KvPool, KvPoolConfig};
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("spec");
        a.vocab_size = 99;
        a
    }

    fn trained_on(seq: &[u32]) -> Arc<TinyLm> {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(31)).expect("valid");
        let data = vec![Example::pretrain(seq.to_vec())];
        let cfg = TrainConfig {
            steps: 80,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 4,
        };
        train(&mut model, &data, &cfg).expect("ok");
        Arc::new(model)
    }

    fn drain_spec(mut s: SpecDecoder) -> (Vec<u32>, SpecStats) {
        let mut out = Vec::new();
        while let Some(tok) = s.step().expect("ok") {
            out.push(tok);
        }
        assert!(s.is_done());
        assert!(s.step().expect("ok").is_none(), "done stays done");
        (out, s.stats())
    }

    fn drain_plain(mut s: StepDecoder) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(tok) = s.step().expect("ok") {
            out.push(tok);
        }
        out
    }

    #[test]
    fn identical_draft_accepts_every_token_and_matches_plain() {
        // Drafting with the *same* model: every proposal is the target's
        // own argmax, so acceptance is total and the transcript must be
        // byte-identical to plain decoding.
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 12,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let expected = drain_plain(StepDecoder::new(&model, &[5, 6], &cfg).expect("ok"));
        let target = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let spec = SpecDecoder::new(target, &model, 4).expect("ok");
        let (out, stats) = drain_spec(spec);
        assert_eq!(out, expected, "speculative transcript drifted");
        assert!(stats.proposed > 0, "rounds must actually speculate");
        assert_eq!(
            stats.accepted, stats.proposed,
            "an identical draft must be fully accepted"
        );
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.draft_panics, 0);
    }

    #[test]
    fn truncated_draft_matches_plain_across_window_slides() {
        // A 1-layer self-draft disagrees regularly (exercising rejection,
        // rewind, and the free bonus token) and 64 tokens on a 32-position
        // window forces two slides — output must still match to the byte.
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let draft = Arc::new(model.truncate_layers(1).expect("ok"));
        let cfg = GenerateConfig {
            max_new_tokens: 64,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        for k in [1usize, 2, 4, 7] {
            let expected = drain_plain(StepDecoder::new(&model, &[5, 6], &cfg).expect("ok"));
            let target = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
            let (out, stats) = drain_spec(SpecDecoder::new(target, &draft, k).expect("ok"));
            assert_eq!(out, expected, "k={k}: speculative transcript drifted");
            assert!(stats.proposed > 0, "k={k}: no speculation happened");
            assert!(
                stats.accepted <= stats.proposed,
                "k={k}: acceptance bookkeeping broke"
            );
        }
    }

    #[test]
    fn spec_matches_plain_on_every_kv_layout() {
        // Paged f32, paged int8-KV (4-token blocks: seal boundaries every
        // 4 positions), and int8 *weights* — the speculative transcript
        // must equal the plain transcript over the same storage.
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let draft = Arc::new(model.truncate_layers(1).expect("ok"));
        let cfg = GenerateConfig {
            max_new_tokens: 48,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let pool_cfg = |dtype| KvPoolConfig {
            block_tokens: 4,
            max_blocks: 256,
            dtype,
        };
        for dtype in [KvDtype::F32, KvDtype::Int8] {
            let mk = || {
                let pool = KvPool::new(pool_cfg(dtype)).expect("ok");
                let mut s =
                    StepDecoder::new_chunked_pooled(&model, &[5, 6], &cfg, &pool).expect("ok");
                s.prefill_pending(usize::MAX).expect("ok");
                s
            };
            let expected = drain_plain(mk());
            let (out, stats) = drain_spec(SpecDecoder::new(mk(), &draft, 4).expect("ok"));
            assert_eq!(out, expected, "{dtype:?}: speculative transcript drifted");
            assert!(stats.proposed > 0, "{dtype:?}: no speculation happened");
        }

        let mut q = (*model).clone();
        q.quantize();
        let q = Arc::new(q);
        let expected = drain_plain(StepDecoder::new(&q, &[5, 6], &cfg).expect("ok"));
        let target = StepDecoder::new(&q, &[5, 6], &cfg).expect("ok");
        let (out, stats) = drain_spec(SpecDecoder::new(target, &draft, 4).expect("ok"));
        assert_eq!(out, expected, "int8-weight speculative transcript drifted");
        assert!(stats.proposed > 0);
    }

    #[test]
    fn sampled_sessions_degrade_to_plain_stepping() {
        // Temperature > 0 consumes an RNG stream speculation cannot keep
        // in lockstep: the decoder must transparently delegate, keeping
        // the sampled transcript identical and speculating on nothing.
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let draft = Arc::new(model.truncate_layers(1).expect("ok"));
        let cfg = GenerateConfig {
            max_new_tokens: 16,
            temperature: 1.2,
            top_k: 8,
            top_p: 0.9,
            stop_at_eos: false,
            seed: 13,
        };
        let expected = drain_plain(StepDecoder::new(&model, &[5, 6], &cfg).expect("ok"));
        let target = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let (out, stats) = drain_spec(SpecDecoder::new(target, &draft, 4).expect("ok"));
        assert_eq!(out, expected, "sampled transcript drifted");
        assert_eq!(stats, SpecStats::default(), "sampling must not speculate");
    }

    #[test]
    fn draft_panic_disables_speculation_but_not_the_session() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let draft = Arc::new(model.truncate_layers(1).expect("ok"));
        let cfg = GenerateConfig {
            max_new_tokens: 12,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let expected = drain_plain(StepDecoder::new(&model, &[5, 6], &cfg).expect("ok"));
        let target = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let mut spec = SpecDecoder::new(target, &draft, 4).expect("ok");
        spec.set_draft_probe(Box::new(|| panic!("injected draft fault")));
        assert!(spec.spec_enabled());
        let mut out = Vec::new();
        while let Some(tok) = spec.step().expect("ok") {
            out.push(tok);
        }
        let stats = spec.stats();
        assert_eq!(out, expected, "degraded transcript drifted from plain");
        assert!(
            !spec.spec_enabled(),
            "a draft panic must disable speculation"
        );
        assert_eq!(stats.draft_panics, 1, "exactly one panic (then disabled)");
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.proposed, 0);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn take_stats_drains_counters() {
        let model = trained_on(&[5, 6, 7, 8, 9]);
        let cfg = GenerateConfig {
            max_new_tokens: 8,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let target = StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        let mut spec = SpecDecoder::new(target, &model, 4).expect("ok");
        while spec.step().expect("ok").is_some() {}
        let first = spec.take_stats();
        assert!(first.proposed > 0);
        assert_eq!(spec.take_stats(), SpecStats::default(), "take must drain");
    }

    #[test]
    fn constructor_validates_k_and_vocab() {
        let model = trained_on(&[5, 6, 7]);
        let cfg = GenerateConfig::default();
        let mk = || StepDecoder::new(&model, &[5, 6], &cfg).expect("ok");
        assert!(matches!(
            SpecDecoder::new(mk(), &model, 0),
            Err(NnError::BadConfig { .. })
        ));
        assert!(matches!(
            SpecDecoder::new(mk(), &model, SPEC_K_MAX + 1),
            Err(NnError::BadConfig { .. })
        ));
        let mut other_arch = arch();
        other_arch.vocab_size = 98;
        let other = Arc::new(TinyLm::new(&other_arch, &mut Pcg32::seed(1)).expect("valid"));
        assert!(matches!(
            SpecDecoder::new(mk(), &other, 2),
            Err(NnError::BadConfig { .. })
        ));
        assert!(SpecDecoder::new(mk(), &model, SPEC_K_MAX).is_ok());
    }

    #[test]
    fn spec_decoder_is_byte_identical_to_generate() {
        // End-to-end against the free-function reference driver.
        let model = trained_on(&[10, 20, 30, 40, 50, 60]);
        let draft = Arc::new(model.truncate_layers(1).expect("ok"));
        let cfg = GenerateConfig {
            max_new_tokens: 24,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let expected = generate(&model, &[10, 20], &cfg).expect("ok");
        let target = StepDecoder::new(&model, &[10, 20], &cfg).expect("ok");
        let (out, _) = drain_spec(SpecDecoder::new(target, &draft, 6).expect("ok"));
        assert_eq!(out, expected);
    }
}

//! Character-level tokenizer.
//!
//! The reproduction operates on synthetic English/EDA text, so a printable
//! ASCII character vocabulary is lossless for the corpora involved while
//! keeping the embedding table tiny. Vocabulary layout:
//!
//! | id      | token                 |
//! |---------|-----------------------|
//! | 0       | `<pad>`               |
//! | 1       | `<bos>`               |
//! | 2       | `<eos>`               |
//! | 3       | `<unk>`               |
//! | 4..=98  | ASCII `' '` .. `'~'`  |

/// A deterministic character-level tokenizer over printable ASCII.
///
/// # Example
///
/// ```
/// use chipalign_nn::CharTokenizer;
///
/// let tok = CharTokenizer::new();
/// let ids = tok.encode("Hi!");
/// assert_eq!(tok.decode(&ids), "Hi!");
/// assert_eq!(tok.vocab_size(), 99);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CharTokenizer {
    _private: (),
}

/// Padding token id.
pub const PAD: u32 = 0;
/// Beginning-of-sequence token id.
pub const BOS: u32 = 1;
/// End-of-sequence token id.
pub const EOS: u32 = 2;
/// Unknown-character token id.
pub const UNK: u32 = 3;

const FIRST_CHAR: u8 = b' ';
const LAST_CHAR: u8 = b'~';
const CHAR_BASE: u32 = 4;

impl CharTokenizer {
    /// Creates the tokenizer.
    #[must_use]
    pub fn new() -> Self {
        CharTokenizer { _private: () }
    }

    /// Total vocabulary size (specials + printable ASCII).
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        CHAR_BASE as usize + usize::from(LAST_CHAR - FIRST_CHAR) + 1
    }

    /// Encodes text, mapping characters outside printable ASCII to `<unk>`.
    ///
    /// No `<bos>`/`<eos>` markers are added; callers that need them use
    /// [`CharTokenizer::encode_with_specials`].
    #[must_use]
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.chars().map(|c| self.char_to_id(c)).collect()
    }

    /// Encodes text wrapped in `<bos> ... <eos>`.
    #[must_use]
    pub fn encode_with_specials(&self, text: &str) -> Vec<u32> {
        let mut ids = Vec::with_capacity(text.len() + 2);
        ids.push(BOS);
        ids.extend(self.encode(text));
        ids.push(EOS);
        ids
    }

    /// Decodes ids back to text. Special tokens decode to nothing except
    /// `<unk>`, which becomes `\u{FFFD}` so information loss stays visible.
    #[must_use]
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter().filter_map(|&id| self.id_to_char(id)).collect()
    }

    /// Maps one character to its token id.
    #[must_use]
    pub fn char_to_id(&self, c: char) -> u32 {
        if c.is_ascii() {
            let b = c as u8;
            if (FIRST_CHAR..=LAST_CHAR).contains(&b) {
                return CHAR_BASE + u32::from(b - FIRST_CHAR);
            }
            if c == '\n' || c == '\t' {
                // Whitespace folds to space rather than <unk>: the corpora
                // use newlines as soft separators.
                return CHAR_BASE;
            }
        }
        UNK
    }

    /// Maps a token id back to its character, or `None` for pure-control
    /// specials.
    #[must_use]
    pub fn id_to_char(&self, id: u32) -> Option<char> {
        match id {
            PAD | BOS | EOS => None,
            UNK => Some('\u{FFFD}'),
            _ => {
                let offset = id.checked_sub(CHAR_BASE)?;
                let b = FIRST_CHAR.checked_add(u8::try_from(offset).ok()?)?;
                (b <= LAST_CHAR).then(|| char::from(b))
            }
        }
    }

    /// `true` if the id is inside the vocabulary.
    #[must_use]
    pub fn is_valid(&self, id: u32) -> bool {
        (id as usize) < self.vocab_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_printable_ascii() {
        let tok = CharTokenizer::new();
        let text = "The ZZZ -build XXX command! @#$ 0..9";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn vocab_size_is_99() {
        assert_eq!(CharTokenizer::new().vocab_size(), 99);
    }

    #[test]
    fn specials_wrap_sequence() {
        let tok = CharTokenizer::new();
        let ids = tok.encode_with_specials("ab");
        assert_eq!(ids.first(), Some(&BOS));
        assert_eq!(ids.last(), Some(&EOS));
        assert_eq!(tok.decode(&ids), "ab");
    }

    #[test]
    fn non_ascii_becomes_unk() {
        let tok = CharTokenizer::new();
        let ids = tok.encode("αβ");
        assert_eq!(ids, vec![UNK, UNK]);
        assert_eq!(tok.decode(&ids), "\u{FFFD}\u{FFFD}");
    }

    #[test]
    fn newline_and_tab_fold_to_space() {
        let tok = CharTokenizer::new();
        assert_eq!(tok.decode(&tok.encode("a\nb\tc")), "a b c");
    }

    #[test]
    fn every_id_round_trips_or_is_special() {
        let tok = CharTokenizer::new();
        for id in 0..tok.vocab_size() as u32 {
            if let Some(c) = tok.id_to_char(id) {
                if c != '\u{FFFD}' {
                    assert_eq!(tok.char_to_id(c), id, "char {c:?} should map back");
                }
            }
        }
    }

    #[test]
    fn out_of_range_ids_decode_to_nothing() {
        let tok = CharTokenizer::new();
        assert_eq!(tok.id_to_char(999), None);
        assert!(!tok.is_valid(999));
        assert!(tok.is_valid(98));
    }
}

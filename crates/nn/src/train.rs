//! Full-parameter training loops: pretraining (DAPT) and supervised
//! finetuning (DAFT).
//!
//! One training *step* samples `batch_size` examples, computes
//! prompt-masked cross-entropy gradients for each in parallel, averages
//! them, and applies one Adam update. The whole loop is deterministic given
//! the config seed.

use chipalign_tensor::rng::Pcg32;
use rayon::prelude::*;

use crate::model::TinyLm;
use crate::optim::{Adam, AdamConfig};
use crate::{loss, NnError};

/// One training example: a token sequence plus its target mask.
///
/// `mask[t]` marks token `t` as a *target*: position `t−1` is trained to
/// predict it. Pretraining examples mask everything on; SFT examples mask
/// only the completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// The full token sequence (prompt + completion for SFT).
    pub tokens: Vec<u32>,
    /// Target mask, same length as `tokens`.
    pub mask: Vec<bool>,
}

impl Example {
    /// A pretraining example: every position is a target.
    #[must_use]
    pub fn pretrain(tokens: Vec<u32>) -> Self {
        let mask = vec![true; tokens.len()];
        Example { tokens, mask }
    }

    /// An SFT example: only completion tokens are targets.
    #[must_use]
    pub fn sft(prompt: Vec<u32>, completion: Vec<u32>) -> Self {
        let mut tokens = prompt.clone();
        tokens.extend_from_slice(&completion);
        let mut mask = vec![false; prompt.len()];
        mask.extend(std::iter::repeat(true).take(completion.len()));
        Example { tokens, mask }
    }

    /// Length of the full sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of optimizer steps.
    pub steps: usize,
    /// Examples per step.
    pub batch_size: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Seed for batch sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 100,
            batch_size: 8,
            adam: AdamConfig::default(),
            seed: 0,
        }
    }
}

/// Trains `model` in place; returns per-step mean losses.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for an empty dataset or zero steps/batch,
/// and forwards forward/backward failures (e.g. an example longer than the
/// context window).
pub fn train(model: &mut TinyLm, data: &[Example], cfg: &TrainConfig) -> Result<Vec<f32>, NnError> {
    if data.is_empty() {
        return Err(NnError::BadConfig {
            detail: "training requires a non-empty dataset".into(),
        });
    }
    if cfg.steps == 0 || cfg.batch_size == 0 {
        return Err(NnError::BadConfig {
            detail: "steps and batch_size must be positive".into(),
        });
    }
    let mut rng = Pcg32::seed(cfg.seed);
    let mut adam = Adam::new(model.params(), cfg.adam)?;
    let mut losses = Vec::with_capacity(cfg.steps);

    for _ in 0..cfg.steps {
        let batch: Vec<&Example> = (0..cfg.batch_size)
            .map(|_| &data[rng.below(data.len())])
            .collect();
        // Per-example losses and gradients in parallel.
        let results: Vec<Result<(f32, crate::ParamSet), NnError>> = batch
            .par_iter()
            .map(|ex| {
                let (logits, cache) = model.forward(&ex.tokens)?;
                let result = loss::masked_cross_entropy(&logits, &ex.tokens, &ex.mask)?;
                let grads = model.backward(&cache, &result.dlogits)?;
                Ok((result.loss, grads))
            })
            .collect();

        let mut total_loss = 0.0f32;
        let mut grad_acc = model.params().zeros_like();
        let inv = 1.0 / cfg.batch_size as f32;
        for r in results {
            let (l, g) = r?;
            total_loss += l;
            grad_acc.axpy(inv, &g)?;
        }
        adam.step(model.params_mut(), &grad_acc)?;
        losses.push(total_loss * inv);
    }
    Ok(losses)
}

/// Mean masked cross-entropy of `model` over a dataset (no gradient).
///
/// # Errors
///
/// Forwards evaluation failures; an empty dataset is a
/// [`NnError::BadConfig`].
pub fn evaluate_loss(model: &TinyLm, data: &[Example]) -> Result<f32, NnError> {
    if data.is_empty() {
        return Err(NnError::BadConfig {
            detail: "evaluation requires a non-empty dataset".into(),
        });
    }
    let results: Vec<Result<f32, NnError>> = data
        .par_iter()
        .map(|ex| {
            let logits = model.logits(&ex.tokens)?;
            Ok(loss::masked_cross_entropy(&logits, &ex.tokens, &ex.mask)?.loss)
        })
        .collect();
    let mut total = 0.0f32;
    for r in &results {
        match r {
            Ok(l) => total += l,
            Err(_) => {
                return Err(NnError::BadConfig {
                    detail: "an evaluation example failed the forward pass".into(),
                })
            }
        }
    }
    Ok(total / data.len() as f32)
}

/// Perplexity of `model` over a dataset: `exp(mean masked cross-entropy)`.
///
/// # Errors
///
/// Same contract as [`evaluate_loss`].
pub fn perplexity(model: &TinyLm, data: &[Example]) -> Result<f32, NnError> {
    Ok(evaluate_loss(model, data)?.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;

    fn arch() -> ArchSpec {
        let mut a = ArchSpec::tiny("train");
        a.vocab_size = 99;
        a
    }

    #[test]
    fn sft_example_masks_prompt() {
        let ex = Example::sft(vec![1, 2, 3], vec![4, 5]);
        assert_eq!(ex.tokens, vec![1, 2, 3, 4, 5]);
        assert_eq!(ex.mask, vec![false, false, false, true, true]);
        assert_eq!(ex.len(), 5);
        assert!(!ex.is_empty());
    }

    #[test]
    fn training_memorizes_a_sequence() {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(21)).expect("valid");
        let seq: Vec<u32> = vec![10, 20, 30, 40, 50, 60, 70, 80];
        let data = vec![Example::pretrain(seq.clone())];
        let cfg = TrainConfig {
            steps: 80,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 1,
        };
        let losses = train(&mut model, &data, &cfg).expect("ok");
        assert!(
            losses.last().copied().expect("non-empty") < losses[0] * 0.3,
            "loss failed to drop: {} -> {}",
            losses[0],
            losses.last().copied().expect("non-empty")
        );
        // Greedy next-token prediction should now reproduce the sequence.
        let logits = model.logits(&seq).expect("ok");
        let mut correct = 0;
        for t in 0..seq.len() - 1 {
            let pred = chipalign_tensor::ops::argmax(logits.row(t)).expect("non-empty");
            if pred as u32 == seq[t + 1] {
                correct += 1;
            }
        }
        assert!(
            correct >= seq.len() - 2,
            "memorization failed: {correct}/{} next-token predictions",
            seq.len() - 1
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = vec![
            Example::pretrain(vec![5, 6, 7, 8]),
            Example::pretrain(vec![9, 10, 11, 12]),
        ];
        let cfg = TrainConfig {
            steps: 10,
            batch_size: 2,
            adam: AdamConfig::default(),
            seed: 7,
        };
        let mut m1 = TinyLm::new(&arch(), &mut Pcg32::seed(1)).expect("valid");
        let mut m2 = TinyLm::new(&arch(), &mut Pcg32::seed(1)).expect("valid");
        let l1 = train(&mut m1, &data, &cfg).expect("ok");
        let l2 = train(&mut m2, &data, &cfg).expect("ok");
        assert_eq!(l1, l2);
        assert!(m1
            .to_checkpoint()
            .expect("ok")
            .approx_eq(&m2.to_checkpoint().expect("ok"), 0.0));
    }

    #[test]
    fn empty_dataset_and_bad_config_rejected() {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(1)).expect("valid");
        assert!(train(&mut model, &[], &TrainConfig::default()).is_err());
        let cfg = TrainConfig {
            steps: 0,
            ..TrainConfig::default()
        };
        let data = vec![Example::pretrain(vec![1, 2])];
        assert!(train(&mut model, &data, &cfg).is_err());
        assert!(evaluate_loss(&model, &[]).is_err());
    }

    #[test]
    fn perplexity_of_uniform_model_is_near_vocab_size() {
        // A fresh model with near-zero logits is near-uniform over 99
        // tokens, so perplexity should be within a factor of ~2 of 99.
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(77)).expect("valid");
        let data = vec![Example::pretrain(vec![10, 20, 30, 40, 50, 60, 70, 80])];
        let ppl = perplexity(&model, &data).expect("ok");
        assert!(
            (40.0..200.0).contains(&ppl),
            "uniform-ish perplexity expected near 99, got {ppl}"
        );
    }

    #[test]
    fn evaluate_loss_drops_after_training() {
        let mut model = TinyLm::new(&arch(), &mut Pcg32::seed(5)).expect("valid");
        let data = vec![
            Example::pretrain(vec![11, 12, 13, 14, 15]),
            Example::pretrain(vec![21, 22, 23, 24, 25]),
        ];
        let before = evaluate_loss(&model, &data).expect("ok");
        let cfg = TrainConfig {
            steps: 60,
            batch_size: 2,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: 2,
        };
        train(&mut model, &data, &cfg).expect("ok");
        let after = evaluate_loss(&model, &data).expect("ok");
        assert!(after < before * 0.5, "eval loss {before} -> {after}");
    }
}

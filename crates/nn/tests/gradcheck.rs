//! End-to-end gradient verification for the manual backward pass.
//!
//! The entire reproduction rests on these gradients being right: if
//! backprop is subtly wrong, the specialists won't train and every
//! downstream table is noise. This test perturbs a sample of individual
//! weights in every parameter tensor and compares the finite-difference
//! loss slope against the analytic gradient.

use chipalign_model::ArchSpec;
use chipalign_nn::{loss, TinyLm};
use chipalign_tensor::rng::Pcg32;

fn test_arch() -> ArchSpec {
    ArchSpec {
        name: "gradcheck".into(),
        vocab_size: 24,
        d_model: 8,
        n_layers: 2,
        n_heads: 2,
        d_ff: 12,
        max_seq_len: 16,
    }
}

/// Loss of `model` on a fixed token sequence.
fn loss_of(model: &TinyLm, tokens: &[u32]) -> f32 {
    let logits = model.logits(tokens).expect("forward succeeds");
    loss::cross_entropy(&logits, tokens)
        .expect("loss succeeds")
        .loss
}

#[test]
fn analytic_gradients_match_finite_differences_everywhere() {
    let arch = test_arch();
    let model = TinyLm::new(&arch, &mut Pcg32::seed(99)).expect("valid arch");
    let tokens: Vec<u32> = vec![1, 5, 9, 13, 17, 21, 2];

    let (logits, cache) = model.forward(&tokens).expect("forward succeeds");
    let result = loss::cross_entropy(&logits, &tokens).expect("loss succeeds");
    let grads = model
        .backward(&cache, &result.dlogits)
        .expect("backward succeeds");

    let names = model.params().names();
    let grad_tensors = grads.tensors();
    let mut rng = Pcg32::seed(7);
    // Embeddings have ~0.02-scale entries and RMSNorm is strongly curved at
    // that scale, so the step must be small relative to it; f32 round-off
    // noise at this h is still two orders below the gradients checked.
    let h = 4e-4f32;
    let mut checked = 0usize;

    for (t_idx, name) in names.iter().enumerate() {
        let tensor = grad_tensors[t_idx];
        let len = tensor.len();
        // Sample up to 6 coordinates per tensor; always include the largest
        // gradient coordinate (most informative).
        let mut coords: Vec<usize> = (0..6.min(len)).map(|_| rng.below(len)).collect();
        let max_idx = tensor
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, _)| i)
            .expect("non-empty tensor");
        coords.push(max_idx);

        // Embedding rows for unseen tokens have zero gradient; restrict
        // embedding checks to coordinates with signal or verify the zero.
        for &coord in &coords {
            let analytic = tensor.data()[coord];
            let mut plus = model.clone();
            let mut minus = model.clone();
            plus.params_mut().tensors_mut()[t_idx].data_mut()[coord] += h;
            minus.params_mut().tensors_mut()[t_idx].data_mut()[coord] -= h;
            let fd = (loss_of(&plus, &tokens) - loss_of(&minus, &tokens)) / (2.0 * h);
            let tol = 2e-2 * (1.0 + fd.abs().max(analytic.abs()));
            assert!(
                (fd - analytic).abs() < tol,
                "{name}[{coord}]: finite difference {fd} vs analytic {analytic}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 7 * names.len(), "checked {checked} coordinates");
}

#[test]
fn gradient_descent_direction_reduces_loss() {
    // One explicit steepest-descent step (no Adam) must reduce the loss —
    // the most direct functional statement that the gradient points uphill.
    let arch = test_arch();
    let model = TinyLm::new(&arch, &mut Pcg32::seed(3)).expect("valid arch");
    let tokens: Vec<u32> = vec![2, 6, 10, 14, 18];
    let (logits, cache) = model.forward(&tokens).expect("forward succeeds");
    let result = loss::cross_entropy(&logits, &tokens).expect("loss succeeds");
    let grads = model
        .backward(&cache, &result.dlogits)
        .expect("backward succeeds");

    let before = loss_of(&model, &tokens);
    let mut stepped = model.clone();
    let gts = grads.tensors();
    for (i, p) in stepped.params_mut().tensors_mut().into_iter().enumerate() {
        p.axpy(-0.05, gts[i]).expect("same shapes");
    }
    let after = loss_of(&stepped, &tokens);
    assert!(
        after < before,
        "descent step increased loss: {before} -> {after}"
    );
}

#[test]
fn batch_gradient_is_mean_of_example_gradients() {
    // The trainer averages per-example gradients; verify linearity of the
    // backward pass over dlogits by splitting a two-target loss.
    let arch = test_arch();
    let model = TinyLm::new(&arch, &mut Pcg32::seed(4)).expect("valid arch");
    let tokens: Vec<u32> = vec![3, 7, 11, 15];

    let (logits, cache) = model.forward(&tokens).expect("forward succeeds");
    let full = loss::cross_entropy(&logits, &tokens).expect("ok");
    let g_full = model.backward(&cache, &full.dlogits).expect("ok");

    // Mask-split: first target only, then remaining targets.
    let m1 = vec![false, true, false, false];
    let m2 = vec![false, false, true, true];
    let l1 = loss::masked_cross_entropy(&logits, &tokens, &m1).expect("ok");
    let l2 = loss::masked_cross_entropy(&logits, &tokens, &m2).expect("ok");
    let g1 = model.backward(&cache, &l1.dlogits).expect("ok");
    let g2 = model.backward(&cache, &l2.dlogits).expect("ok");

    // full = (1*l1 + 2*l2)/3 in both loss and gradient.
    let w1 = l1.target_count as f32 / full.target_count as f32;
    let w2 = l2.target_count as f32 / full.target_count as f32;
    assert!((full.loss - (w1 * l1.loss + w2 * l2.loss)).abs() < 1e-5);
    for ((gf, ga), gb) in g_full.tensors().iter().zip(g1.tensors()).zip(g2.tensors()) {
        let combined = ga.scale(w1).add(&gb.scale(w2)).expect("same shapes");
        assert!(
            gf.approx_eq(&combined, 1e-5),
            "gradient is not linear over masked splits"
        );
    }
}

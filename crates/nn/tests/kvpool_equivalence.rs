//! Differential proptests: paged KV storage vs the contiguous oracle.
//!
//! Every f32 test drives a paged cache (or decoder) and a contiguous twin
//! through the *same* operations and asserts bitwise-equal outputs (`==`,
//! never a tolerance). The contiguous path is the reference
//! implementation; the paged path adds block tables, refcounted aliasing,
//! and copy-on-write — none of which may change a single output bit.
//!
//! The dtype axis relaxes exactly one thing: int8-KV pools are pinned
//! within [`KV8_LOGIT_TOL`] of the same contiguous-f32 oracle (with
//! margin-gated argmax agreement) instead of bitwise, since sealed blocks
//! round K/V rows to per-head-scaled i8 codes.

use std::sync::Arc;

use chipalign_model::ArchSpec;
use chipalign_nn::generate::{GenerateConfig, StepDecoder};
use chipalign_nn::{KvCache, KvDtype, KvPool, KvPoolConfig, TinyLm, KV8_LOGIT_TOL};
use chipalign_tensor::{ops, rng::Pcg32};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn arch() -> ArchSpec {
    ArchSpec {
        name: "kvpool-prop".into(),
        vocab_size: 32,
        d_model: 8,
        n_layers: 2,
        n_heads: 2,
        d_ff: 16,
        max_seq_len: 16,
    }
}

fn pool(block_tokens: usize) -> Arc<KvPool> {
    pool_with(block_tokens, KvDtype::F32)
}

fn pool_with(block_tokens: usize, dtype: KvDtype) -> Arc<KvPool> {
    KvPool::new(KvPoolConfig {
        block_tokens,
        max_blocks: 4096,
        dtype,
    })
    .expect("valid pool config")
}

/// One logit row against the oracle: bitwise for f32 pools, within
/// `KV8_LOGIT_TOL` plus margin-gated argmax agreement for int8 pools.
fn check_row(oracle: &[f32], got: &[f32], int8: bool, what: &str) -> Result<(), TestCaseError> {
    if !int8 {
        prop_assert_eq!(oracle, got, "{} drifted bitwise", what);
        return Ok(());
    }
    let max_diff = oracle
        .iter()
        .zip(got)
        .fold(0.0f32, |acc, (a, b)| acc.max((a - b).abs()));
    prop_assert!(
        max_diff <= KV8_LOGIT_TOL,
        "{what}: int8-KV drifted {max_diff} (> {KV8_LOGIT_TOL}) from the f32 oracle"
    );
    let am = ops::argmax(oracle).expect("non-empty");
    let runner_up = oracle
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != am)
        .fold(f32::NEG_INFINITY, |acc, (_, &v)| acc.max(v));
    if oracle[am] - runner_up > 2.0 * KV8_LOGIT_TOL {
        prop_assert_eq!(
            ops::argmax(got).expect("non-empty"),
            am,
            "{}: argmax flipped despite a wide margin",
            what
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_decoder_transcripts_match_contiguous_across_slides(
        seed in 0u64..30,
        prompt in proptest::collection::vec(0u32..32, 2..24),
        chunk in 1usize..6,
        bt in 1usize..6,
        budget in 4usize..16,
    ) {
        // Chunked prefill × window slide × paged storage, at every block
        // size: the pooled decoder must emit the same bytes as the
        // contiguous one. Prompts up to 24 tokens against a 16-slot
        // window plus 4..16 decode steps force slide re-prefills, which
        // replay through the paged path too.
        let model = Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let mut flat = StepDecoder::new_chunked(&model, &prompt, &cfg).unwrap();
        let p = pool(bt);
        let mut paged = StepDecoder::new_chunked_pooled(&model, &prompt, &cfg, &p).unwrap();
        loop {
            while flat.is_prefilling() {
                flat.prefill_pending(chunk).unwrap();
            }
            while paged.is_prefilling() {
                paged.prefill_pending(chunk).unwrap();
            }
            let x = flat.step().unwrap();
            let y = paged.step().unwrap();
            prop_assert_eq!(x, y, "pooled transcript drifted from contiguous");
            if x.is_none() {
                break;
            }
        }
        drop(paged);
        prop_assert_eq!(p.blocks_in_use(), 0, "dropping the session must free its blocks");
    }

    #[test]
    fn fork_then_diverge_both_branches_matches_contiguous_twins(
        seed in 0u64..30,
        prompt in proptest::collection::vec(0u32..32, 2..12),
        p_seed in 0usize..64,
        bt in 1usize..6,
        donor_toks in proptest::collection::vec(0u32..32, 1..4),
        fork_toks in proptest::collection::vec(0u32..32, 1..4),
    ) {
        // The copy-on-write pin: fork a paged donor at an arbitrary point
        // (block-aligned or not), then advance donor and fork in an
        // interleaved order. Neither branch may corrupt the other — both
        // must stay bitwise equal to independent contiguous twins.
        let model = Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let p = pool(bt);
        let mut donor = KvCache::new_paged(&model, &p);
        donor.prefill(&prompt).unwrap();
        let mut flat_donor = KvCache::new(&model);
        flat_donor.prefill(&prompt).unwrap();

        let fork_at = p_seed % (prompt.len() + 1);
        let blocks_before = p.blocks_in_use();
        let mut fork = donor.fork_from(fork_at).unwrap();
        prop_assert_eq!(p.blocks_in_use(), blocks_before, "fork must allocate zero blocks");
        let mut flat_fork = flat_donor.fork_from(fork_at).unwrap();

        let rounds = donor_toks.len().max(fork_toks.len());
        for i in 0..rounds {
            if let Some(&t) = donor_toks.get(i) {
                prop_assert_eq!(
                    donor.decode_step(t).unwrap(),
                    flat_donor.decode_step(t).unwrap(),
                    "donor drifted after fork divergence"
                );
            }
            if let Some(&t) = fork_toks.get(i) {
                prop_assert_eq!(
                    fork.decode_step(t).unwrap(),
                    flat_fork.decode_step(t).unwrap(),
                    "fork drifted after divergence"
                );
            }
        }
        prop_assert_eq!(donor.tokens(), flat_donor.tokens());
        prop_assert_eq!(fork.tokens(), flat_fork.tokens());
    }

    #[test]
    fn random_op_interleavings_stay_bitwise_identical(
        seed in 0u64..20,
        bt in 1usize..6,
        ops in proptest::collection::vec((0u8..4, 0u32..32, 1usize..5), 1..24),
    ) {
        // The interleaving sweep: chunked prefill, single-token decode,
        // zero-copy fork (kept live and stepped alongside its donor), and
        // window-slide-style reset+replay, in arbitrary order. The paged
        // cache and its contiguous twin must agree on every logit vector,
        // and the block table must track `ceil(len / block_tokens)`
        // exactly.
        let model = Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let max_ctx = arch().max_seq_len;
        let p = pool(bt);
        let mut paged = KvCache::new_paged(&model, &p);
        let mut flat = KvCache::new(&model);
        let mut forks: Option<(KvCache, KvCache)> = None;
        for &(op, tok, k) in &ops {
            match op {
                0 => {
                    if paged.len() < max_ctx {
                        prop_assert_eq!(
                            paged.decode_step(tok).unwrap(),
                            flat.decode_step(tok).unwrap(),
                            "decode_step drifted"
                        );
                    }
                }
                1 => {
                    let room = max_ctx - paged.len();
                    let n = k.min(room);
                    let chunk: Vec<u32> = (0..n).map(|i| (tok + i as u32) % 32).collect();
                    prop_assert_eq!(
                        paged.prefill_chunk(&chunk).unwrap(),
                        flat.prefill_chunk(&chunk).unwrap(),
                        "prefill_chunk drifted"
                    );
                }
                2 => {
                    let at = k.min(paged.len());
                    forks = Some((
                        paged.fork_from(at).unwrap(),
                        flat.fork_from(at).unwrap(),
                    ));
                }
                3 => {
                    // Window-slide shape: reset, replay a recent suffix.
                    let hist: Vec<u32> = paged.tokens().to_vec();
                    let start = hist.len().saturating_sub(k);
                    paged.reset();
                    flat.reset();
                    prop_assert_eq!(
                        paged.prefill_chunk(&hist[start..]).unwrap(),
                        flat.prefill_chunk(&hist[start..]).unwrap(),
                        "slide replay drifted"
                    );
                }
                _ => unreachable!("op strategy is 0..4"),
            }
            // Advance any live fork pair too, so donor/fork copy-on-write
            // interleaves with every other operation.
            if let Some((pf, ff)) = forks.as_mut() {
                if pf.len() < max_ctx {
                    prop_assert_eq!(
                        pf.decode_step(tok).unwrap(),
                        ff.decode_step(tok).unwrap(),
                        "live fork drifted"
                    );
                }
            }
            prop_assert_eq!(paged.len(), flat.len());
            prop_assert_eq!(paged.tokens(), flat.tokens());
            prop_assert_eq!(paged.block_count(), p.blocks_for(paged.len()));
        }
        drop(paged);
        drop(forks);
        prop_assert_eq!(p.blocks_in_use(), 0, "all blocks return to the pool");
    }

    #[test]
    fn random_op_interleavings_across_dtypes_track_the_oracle(
        seed in 0u64..20,
        bt in 1usize..6,
        int8 in any::<bool>(),
        ops in proptest::collection::vec((0u8..4, 0u32..32, 1usize..5), 1..24),
    ) {
        // The dtype axis over the interleaving sweep: the same random mix
        // of chunked prefill, decode, zero-copy fork (kept live and
        // stepped alongside its donor, exercising CoW and — on int8 pools
        // with unaligned fork points — the sealed-block unseal path), and
        // window-slide reset+replay, against the contiguous-f32 oracle.
        // f32 pools must agree bitwise; int8 pools within KV8_LOGIT_TOL
        // with margin-gated argmax agreement.
        let model = Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let max_ctx = arch().max_seq_len;
        let dtype = if int8 { KvDtype::Int8 } else { KvDtype::F32 };
        let p = pool_with(bt, dtype);
        let mut paged = KvCache::new_paged(&model, &p);
        let mut flat = KvCache::new(&model);
        let mut forks: Option<(KvCache, KvCache)> = None;
        for &(op, tok, k) in &ops {
            match op {
                0 => {
                    if paged.len() < max_ctx {
                        check_row(
                            &flat.decode_step(tok).unwrap(),
                            &paged.decode_step(tok).unwrap(),
                            int8,
                            "decode_step",
                        )?;
                    }
                }
                1 => {
                    let room = max_ctx - paged.len();
                    let n = k.min(room);
                    let chunk: Vec<u32> = (0..n).map(|i| (tok + i as u32) % 32).collect();
                    let oracle = flat.prefill_chunk(&chunk).unwrap();
                    let got = paged.prefill_chunk(&chunk).unwrap();
                    check_row(&oracle, &got, int8, "prefill_chunk")?;
                }
                2 => {
                    let at = k.min(paged.len());
                    forks = Some((
                        paged.fork_from(at).unwrap(),
                        flat.fork_from(at).unwrap(),
                    ));
                }
                3 => {
                    let hist: Vec<u32> = paged.tokens().to_vec();
                    let start = hist.len().saturating_sub(k);
                    paged.reset();
                    flat.reset();
                    let oracle = flat.prefill_chunk(&hist[start..]).unwrap();
                    let got = paged.prefill_chunk(&hist[start..]).unwrap();
                    check_row(&oracle, &got, int8, "slide replay")?;
                }
                _ => unreachable!("op strategy is 0..4"),
            }
            if let Some((pf, ff)) = forks.as_mut() {
                if pf.len() < max_ctx {
                    check_row(
                        &ff.decode_step(tok).unwrap(),
                        &pf.decode_step(tok).unwrap(),
                        int8,
                        "live fork",
                    )?;
                }
            }
            prop_assert_eq!(paged.len(), flat.len());
            prop_assert_eq!(paged.tokens(), flat.tokens());
            prop_assert_eq!(paged.block_count(), p.blocks_for(paged.len()));
        }
        drop(paged);
        drop(forks);
        prop_assert_eq!(p.blocks_in_use(), 0, "all blocks return to the pool");
        prop_assert_eq!(p.bytes_in_use(), 0, "all bytes return with them");
    }
}

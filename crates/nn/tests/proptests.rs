//! Property-based tests for the transformer substrate.

use chipalign_model::ArchSpec;
use chipalign_nn::generate::{generate, GenerateConfig};
use chipalign_nn::{loss, score, TinyLm};
use chipalign_tensor::rng::Pcg32;
use proptest::prelude::*;

fn arch() -> ArchSpec {
    ArchSpec {
        name: "prop".into(),
        vocab_size: 32,
        d_model: 8,
        n_layers: 2,
        n_heads: 2,
        d_ff: 16,
        max_seq_len: 16,
    }
}

fn tokens_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..32, 2..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forward_is_finite_and_deterministic(seed in 0u64..200, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let a = model.logits(&tokens).unwrap();
        let b = model.logits(&tokens).unwrap();
        prop_assert!(a.all_finite());
        prop_assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn loss_is_positive_and_finite(seed in 0u64..200, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let logits = model.logits(&tokens).unwrap();
        let result = loss::cross_entropy(&logits, &tokens).unwrap();
        prop_assert!(result.loss.is_finite());
        prop_assert!(result.loss > 0.0);
        prop_assert!(result.dlogits.all_finite());
    }

    #[test]
    fn causality_holds_for_random_models(seed in 0u64..100, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let full = model.logits(&tokens).unwrap();
        let cut = tokens.len() / 2 + 1;
        let prefix = model.logits(&tokens[..cut]).unwrap();
        for t in 0..cut {
            for v in 0..32 {
                let a = full.get(t, v).unwrap();
                let b = prefix.get(t, v).unwrap();
                prop_assert!((a - b).abs() < 1e-3, "causality violated at ({t},{v})");
            }
        }
    }

    #[test]
    fn generation_respects_budget(seed in 0u64..100, budget in 1usize..24) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &[1, 2, 3], &cfg).unwrap();
        prop_assert_eq!(out.len(), budget);
        prop_assert!(out.iter().all(|&t| (t as usize) < 32));
    }

    #[test]
    fn choice_scores_are_valid_logprobs(seed in 0u64..100) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let choices = vec![vec![4u32, 5], vec![6u32], vec![7u32, 8, 9]];
        let (best, scores) = score::choose(&model, &[1, 2], &choices, true).unwrap();
        prop_assert!(best < choices.len());
        for s in &scores {
            prop_assert!(s.is_finite());
            prop_assert!(*s <= 0.0, "length-normalised logprob must be <= 0");
        }
    }

    #[test]
    fn checkpoint_round_trip_is_lossless(seed in 0u64..100, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let ckpt = model.to_checkpoint().unwrap();
        let restored = TinyLm::from_checkpoint(&ckpt).unwrap();
        let a = model.logits(&tokens).unwrap();
        let b = restored.logits(&tokens).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
    }
}

//! Property-based tests for the transformer substrate.

use chipalign_model::ArchSpec;
use chipalign_nn::generate::{generate, GenerateConfig, StepDecoder};
use chipalign_nn::{loss, score, KvCache, TinyLm};
use chipalign_tensor::{ops, rng::Pcg32};
use proptest::prelude::*;

fn arch() -> ArchSpec {
    ArchSpec {
        name: "prop".into(),
        vocab_size: 32,
        d_model: 8,
        n_layers: 2,
        n_heads: 2,
        d_ff: 16,
        max_seq_len: 16,
    }
}

fn tokens_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..32, 2..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forward_is_finite_and_deterministic(seed in 0u64..200, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let a = model.logits(&tokens).unwrap();
        let b = model.logits(&tokens).unwrap();
        prop_assert!(a.all_finite());
        prop_assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn loss_is_positive_and_finite(seed in 0u64..200, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let logits = model.logits(&tokens).unwrap();
        let result = loss::cross_entropy(&logits, &tokens).unwrap();
        prop_assert!(result.loss.is_finite());
        prop_assert!(result.loss > 0.0);
        prop_assert!(result.dlogits.all_finite());
    }

    #[test]
    fn causality_holds_for_random_models(seed in 0u64..100, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let full = model.logits(&tokens).unwrap();
        let cut = tokens.len() / 2 + 1;
        let prefix = model.logits(&tokens[..cut]).unwrap();
        for t in 0..cut {
            for v in 0..32 {
                let a = full.get(t, v).unwrap();
                let b = prefix.get(t, v).unwrap();
                prop_assert!((a - b).abs() < 1e-3, "causality violated at ({t},{v})");
            }
        }
    }

    #[test]
    fn generation_respects_budget(seed in 0u64..100, budget in 1usize..24) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let out = generate(&model, &[1, 2, 3], &cfg).unwrap();
        prop_assert_eq!(out.len(), budget);
        prop_assert!(out.iter().all(|&t| (t as usize) < 32));
    }

    #[test]
    fn choice_scores_are_valid_logprobs(seed in 0u64..100) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let choices = vec![vec![4u32, 5], vec![6u32], vec![7u32, 8, 9]];
        let (best, scores) = score::choose(&model, &[1, 2], &choices, true).unwrap();
        prop_assert!(best < choices.len());
        for s in &scores {
            prop_assert!(s.is_finite());
            prop_assert!(*s <= 0.0, "length-normalised logprob must be <= 0");
        }
    }

    #[test]
    fn decode_batch_bitwise_matches_sequential_on_random_histories(
        seed in 0u64..40,
        histories in proptest::collection::vec(
            proptest::collection::vec(0u32..32, 1..12),
            2..8,
        ),
        steps in proptest::collection::vec(0u32..32, 1..4),
    ) {
        // Arbitrary ragged prefill histories, arbitrary batch width 2..8,
        // several batched rounds: logits and cache lengths must equal the
        // one-session-at-a-time path exactly (==, not a tolerance).
        let model = std::sync::Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let mk = |h: &Vec<u32>| {
            let mut c = KvCache::new(&model);
            c.prefill(h).unwrap();
            c
        };
        let mut seq: Vec<KvCache> = histories.iter().map(mk).collect();
        let mut bat: Vec<KvCache> = histories.iter().map(mk).collect();
        for &tok in &steps {
            if seq.iter().any(|c| c.len() >= arch().max_seq_len) {
                break; // next round would overflow some window
            }
            let toks = vec![tok; seq.len()];
            let expected: Vec<Vec<f32>> = seq
                .iter_mut()
                .map(|c| c.decode_step(tok).unwrap())
                .collect();
            let mut refs: Vec<&mut KvCache> = bat.iter_mut().collect();
            let got = KvCache::decode_batch(&mut refs, &toks).unwrap();
            prop_assert_eq!(got, expected);
        }
        for (a, b) in seq.iter().zip(&bat) {
            prop_assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn kv_cache_matches_full_forward_across_window_slides(
        seed in 0u64..40,
        // max_seq_len is 16, so prompts of 12..24 tokens cover "almost
        // full", "exactly full", and "longer than the window" prefills.
        prompt in proptest::collection::vec(0u32..32, 12..24),
        extra in 8usize..20,
    ) {
        let model = std::sync::Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let max_ctx = arch().max_seq_len;
        let mut context = prompt.clone();

        // Mirror `generate()`'s windowing exactly: prefill the most recent
        // window (leaving one free slot), decode step-by-step, and when the
        // cache fills, slide and re-prefill. At every position the cached
        // logits must match a full uncached forward pass over the cache's
        // exact window — including immediately after a slide re-prefill.
        let mut win_start = context.len().saturating_sub(max_ctx - 1);
        let mut cache = KvCache::new(&model);
        let mut last = cache.prefill(&context[win_start..]).unwrap();
        let mut slides = 0usize;
        for _ in 0..extra {
            prop_assert!(cache.len() <= max_ctx, "cache may never exceed the window");
            let full = model.logits(&context[win_start..]).unwrap();
            let t = context.len() - win_start - 1;
            for v in 0..32 {
                let reference = full.get(t, v).unwrap();
                prop_assert!(
                    (reference - last[v]).abs() < 2e-3,
                    "cached/full mismatch at window pos {} vocab {}: {} vs {}",
                    t, v, reference, last[v],
                );
            }
            let next = ops::argmax(&last).unwrap() as u32;
            context.push(next);
            if cache.len() >= max_ctx {
                win_start = context.len() - (max_ctx - 1);
                cache.reset();
                last = cache.prefill(&context[win_start..]).unwrap();
                slides += 1;
            } else {
                last = cache.decode_step(next).unwrap();
            }
        }
        // With >= 12 prompt tokens, a 16-slot window, and >= 8 decode steps
        // the slide path must have triggered at least once.
        prop_assert!(slides >= 1, "window slide path was not exercised");
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_to_one_shot(
        seed in 0u64..40,
        prompt in proptest::collection::vec(0u32..32, 2..15),
        chunk in 1usize..8,
    ) {
        // Feeding a prompt in arbitrary chunk sizes must reproduce the
        // one-shot prefill exactly (==): same final logits, same cache
        // length, same token history — and both must agree with a full
        // uncached forward pass over the same tokens.
        let model = std::sync::Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let mut one_shot = KvCache::new(&model);
        let reference = one_shot.prefill(&prompt).unwrap();

        let mut chunked = KvCache::new(&model);
        let mut last = Vec::new();
        for piece in prompt.chunks(chunk) {
            last = chunked.prefill_chunk(piece).unwrap();
        }
        prop_assert_eq!(&last, &reference, "chunked logits must match one-shot exactly");
        prop_assert_eq!(chunked.len(), one_shot.len());
        prop_assert_eq!(chunked.tokens(), one_shot.tokens());

        let full = model.logits(&prompt).unwrap();
        let t = prompt.len() - 1;
        for v in 0..32 {
            let f = full.get(t, v).unwrap();
            prop_assert!(
                (f - last[v]).abs() < 2e-3,
                "chunked/full mismatch at vocab {}: {} vs {}", v, f, last[v],
            );
        }
    }

    #[test]
    fn chunked_decode_transcripts_match_generate_across_slides(
        seed in 0u64..30,
        prompt in proptest::collection::vec(0u32..32, 2..24),
        chunk in 1usize..6,
        budget in 4usize..16,
    ) {
        // Driving a StepDecoder with bounded prefill chunks — including
        // the chunked replay of every deferred window slide — must emit
        // the same tokens as the plain generate() loop, byte for byte.
        let model = std::sync::Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let reference = generate(&model, &prompt, &cfg).unwrap();
        let mut dec = StepDecoder::new_chunked(&model, &prompt, &cfg).unwrap();
        let mut out = Vec::new();
        loop {
            while dec.is_prefilling() {
                dec.prefill_pending(chunk).unwrap();
            }
            match dec.step().unwrap() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn adopted_prefix_transcripts_match_cold_prefill(
        seed in 0u64..30,
        prompt in proptest::collection::vec(0u32..32, 2..24),
        p_seed in 0usize..64,
        budget in 4usize..16,
    ) {
        // A session seeded with a forked KV prefix of any length must
        // decode the same transcript as one that prefilled from scratch.
        let model = std::sync::Arc::new(TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap());
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let reference = generate(&model, &prompt, &cfg).unwrap();
        let mut dec = StepDecoder::new_chunked(&model, &prompt, &cfg).unwrap();
        let window = dec.pending_prefill().to_vec();
        if window.len() >= 2 {
            let mut donor = KvCache::new(&model);
            donor.prefill(&window).unwrap();
            let p = 1 + p_seed % (window.len() - 1);
            let fork = donor.fork_from(p).unwrap();
            let adopted = dec.adopt_prefix(fork).unwrap();
            prop_assert_eq!(adopted, p);
        }
        let mut out = Vec::new();
        while let Some(t) = dec.step().unwrap() {
            out.push(t);
        }
        prop_assert_eq!(out, reference);
    }

    #[test]
    fn checkpoint_round_trip_is_lossless(seed in 0u64..100, tokens in tokens_strategy()) {
        let model = TinyLm::new(&arch(), &mut Pcg32::seed(seed)).unwrap();
        let ckpt = model.to_checkpoint().unwrap();
        let restored = TinyLm::from_checkpoint(&ckpt).unwrap();
        let a = model.logits(&tokens).unwrap();
        let b = restored.logits(&tokens).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
    }
}

use std::error::Error;
use std::fmt;

use chipalign_merge::MergeError;
use chipalign_model::ModelError;
use chipalign_nn::NnError;

/// Errors produced by the experiment pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A checkpoint operation failed.
    Model(ModelError),
    /// A merge failed.
    Merge(MergeError),
    /// Filesystem trouble with the zoo cache.
    Io(std::io::Error),
    /// An experiment was configured inconsistently.
    BadConfig {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Nn(e) => write!(f, "nn error: {e}"),
            PipelineError::Model(e) => write!(f, "model error: {e}"),
            PipelineError::Merge(e) => write!(f, "merge error: {e}"),
            PipelineError::Io(e) => write!(f, "zoo cache i/o error: {e}"),
            PipelineError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Nn(e) => Some(e),
            PipelineError::Model(e) => Some(e),
            PipelineError::Merge(e) => Some(e),
            PipelineError::Io(e) => Some(e),
            PipelineError::BadConfig { .. } => None,
        }
    }
}

impl From<NnError> for PipelineError {
    fn from(e: NnError) -> Self {
        PipelineError::Nn(e)
    }
}

impl From<ModelError> for PipelineError {
    fn from(e: ModelError) -> Self {
        PipelineError::Model(e)
    }
}

impl From<MergeError> for PipelineError {
    fn from(e: MergeError) -> Self {
        PipelineError::Merge(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: PipelineError = NnError::BadConfig {
            detail: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("nn error"));
        assert!(e.source().is_some());
        let b = PipelineError::BadConfig {
            detail: "oops".into(),
        };
        assert!(b.to_string().contains("oops"));
        assert!(b.source().is_none());
    }
}

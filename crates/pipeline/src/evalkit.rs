//! Shared inference and scoring helpers used by every experiment runner.

use chipalign_data::prompt::extract_answer;
use chipalign_nn::generate::{generate, GenerateConfig};
use chipalign_nn::{score, CharTokenizer, TinyLm};

use crate::PipelineError;

/// Token id prepended to every sequence (matches training encoding).
const BOS: u32 = 1;

/// Maximum tokens a benchmark response may have.
const MAX_NEW_TOKENS: usize = 72;

/// Generates a temperature-0 response to a benchmark prompt and extracts
/// the answer text (everything before the grammar's turn separator).
///
/// All paper evaluations run at temperature 0 "for reproducibility"; the
/// same convention applies here.
///
/// # Errors
///
/// Propagates generation failures (over-long prompts and the like).
pub fn respond(model: &TinyLm, prompt: &str) -> Result<String, PipelineError> {
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode(prompt));
    // Leave room for the response inside the context window.
    let max_prompt = model.arch().max_seq_len.saturating_sub(MAX_NEW_TOKENS);
    if ids.len() > max_prompt {
        let cut = ids.len() - max_prompt;
        ids.drain(1..1 + cut);
    }
    let cfg = GenerateConfig {
        max_new_tokens: MAX_NEW_TOKENS,
        temperature: 0.0,
        top_k: 0,
        top_p: 1.0,
        stop_at_eos: true,
        seed: 0,
    };
    let new_tokens = generate(model, &ids, &cfg)?;
    Ok(extract_answer(&tok.decode(&new_tokens)))
}

/// Scores a multiple-choice item by length-normalised answer
/// log-likelihood and returns the chosen index.
///
/// # Errors
///
/// Propagates scoring failures.
pub fn choose_option(
    model: &TinyLm,
    prompt: &str,
    choices: &[String],
) -> Result<usize, PipelineError> {
    let tok = CharTokenizer::new();
    let mut prompt_ids = vec![BOS];
    prompt_ids.extend(tok.encode(prompt));
    let choice_ids: Vec<Vec<u32>> = choices.iter().map(|c| tok.encode(c)).collect();
    let (best, _) = score::choose(model, &prompt_ids, &choice_ids, true)?;
    Ok(best)
}

/// Mean of a slice of `f64` (0 for empty input).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn model() -> TinyLm {
        let mut arch = ArchSpec::tiny("evalkit");
        arch.vocab_size = 99;
        arch.max_seq_len = 128;
        TinyLm::new(&arch, &mut Pcg32::seed(1)).expect("valid")
    }

    #[test]
    fn respond_returns_printable_text() {
        let m = model();
        let out = respond(&m, "Q:hello?;A:").expect("ok");
        assert!(out.len() <= MAX_NEW_TOKENS);
        assert!(!out.contains(';'), "answer extraction must cut at ';'");
    }

    #[test]
    fn respond_truncates_over_long_prompts() {
        let m = model(); // max_seq_len 128
        let long_prompt = "x".repeat(400);
        let out = respond(&m, &long_prompt);
        assert!(out.is_ok(), "long prompts must be window-trimmed: {out:?}");
    }

    #[test]
    fn respond_is_deterministic() {
        let m = model();
        let a = respond(&m, "Q:abc?;A:").expect("ok");
        let b = respond(&m, "Q:abc?;A:").expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn choose_option_returns_valid_index() {
        let m = model();
        let choices = vec!["first".to_string(), "second".to_string()];
        let idx = choose_option(&m, "Q:pick?;A:", &choices).expect("ok");
        assert!(idx < 2);
    }

    #[test]
    fn mean_math() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

//! Table 3: IFEval-style instruction-following accuracy.

use chipalign_data::ifeval_bench::{generate as gen_prompts, IfEvalPrompt};
use chipalign_eval::ifeval::{aggregate, IfEvalReport, PromptVerdict};
use chipalign_nn::TinyLm;

use crate::evalkit::respond;
use crate::report::TextTable;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// Evaluates one model over a prompt subset.
///
/// # Errors
///
/// Propagates generation failures.
pub fn eval_subset(
    model: &TinyLm,
    prompts: &[IfEvalPrompt],
) -> Result<IfEvalReport, PipelineError> {
    let mut verdicts = Vec::with_capacity(prompts.len());
    for p in prompts {
        let response = respond(model, &p.prompt)?;
        verdicts.push(PromptVerdict::of(&p.instructions, &response));
    }
    Ok(aggregate(&verdicts))
}

/// Regenerates Table 3 for the paper's six models.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn table3(zoo: &Zoo, bench_seed: u64) -> Result<TextTable, PipelineError> {
    let prompts = gen_prompts(bench_seed);
    let mut table = TextTable::new(
        "Table 3: instruction-following accuracy (%) on the IFEval-style benchmark",
        &["P-Strict", "P-Loose", "I-Strict", "I-Loose"],
        1,
    );

    // Row order matches the paper: the 8B group, then the 70B group.
    let llama_merged = super::merged_variants(zoo, Backbone::LlamaTiny)?;
    let llama_chipalign = llama_merged
        .into_iter()
        .find(|(name, _)| name.ends_with("ChipAlign"))
        .expect("merged variants include ChipAlign");

    let rows: Vec<(String, TinyLm)> = vec![
        (
            ZooModel::Instruct(Backbone::LlamaTiny).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaTiny))?,
        ),
        (
            ZooModel::Eda(Backbone::LlamaTiny).paper_name(),
            zoo.model(ZooModel::Eda(Backbone::LlamaTiny))?,
        ),
        (llama_chipalign.0, llama_chipalign.1),
        (
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?,
        ),
        (
            ZooModel::ChipNemo.paper_name(),
            zoo.model(ZooModel::ChipNemo)?,
        ),
        (
            "LLaMA2-70B-ChipAlign".to_string(),
            super::chipalign_large(zoo)?,
        ),
    ];

    for (label, model) in rows {
        eprintln!("[table3] evaluating {label}...");
        let report = eval_subset(&model, &prompts)?;
        table.push_row(
            &label,
            vec![
                report.prompt_strict * 100.0,
                report.prompt_loose * 100.0,
                report.instruction_strict * 100.0,
                report.instruction_loose * 100.0,
            ],
        );
    }
    Ok(table)
}

//! Table 2: graded industrial chip QA, single and multi turn.

use chipalign_data::facts::IndustrialCategory;
use chipalign_data::industrial::{IndustrialBenchmark, IndustrialQuestion};
use chipalign_eval::grader::{Grade, Rubric};
use chipalign_eval::ifeval::Instruction;
use chipalign_nn::TinyLm;

use crate::evalkit::{mean, respond};
use crate::report::TextTable;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// Scores for one model on the benchmark: per category and overall, for
/// each turn setting.
#[derive(Debug, Clone, PartialEq)]
pub struct IndustrialScores {
    /// Mean grade per category, single turn, in Table 2 column order.
    pub single: Vec<f64>,
    /// "All" column, single turn.
    pub single_all: f64,
    /// Mean grade per category, multi turn (the follow-up answer).
    pub multi: Vec<f64>,
    /// "All" column, multi turn.
    pub multi_all: f64,
}

/// Evaluates one model over a question subset.
///
/// Single turn: the model answers the tagged question; the rubric grades
/// content vs golden, grounding vs context, and tag compliance. Multi turn:
/// the model's own first answer is replayed as history and the follow-up is
/// graded the same way (no tags on follow-ups).
///
/// # Errors
///
/// Propagates generation failures.
pub fn eval_subset(
    model: &TinyLm,
    questions: &[IndustrialQuestion],
) -> Result<IndustrialScores, PipelineError> {
    let rubric = Rubric::default();
    let mut single: std::collections::HashMap<IndustrialCategory, Vec<f64>> =
        Default::default();
    let mut multi: std::collections::HashMap<IndustrialCategory, Vec<f64>> =
        Default::default();
    let mut single_all = Vec::new();
    let mut multi_all = Vec::new();

    for q in questions {
        let instructions: Vec<Instruction> =
            q.tags.iter().map(|t| t.instruction()).collect();
        let first_answer = respond(model, &q.prompt())?;
        let g1: Grade = rubric.grade(&first_answer, &q.golden, &q.context, &instructions);
        single
            .entry(q.category)
            .or_default()
            .push(f64::from(g1.score));
        single_all.push(f64::from(g1.score));

        let follow_prompt = q.followup_prompt(&first_answer);
        let follow_answer = respond(model, &follow_prompt)?;
        let g2 = rubric.grade(&follow_answer, &q.followup_golden, &q.context, &[]);
        multi
            .entry(q.category)
            .or_default()
            .push(f64::from(g2.score));
        multi_all.push(f64::from(g2.score));
    }

    let row = |map: &std::collections::HashMap<IndustrialCategory, Vec<f64>>| {
        IndustrialCategory::ALL
            .iter()
            .map(|c| mean(map.get(c).map_or(&[][..], Vec::as_slice)))
            .collect::<Vec<f64>>()
    };
    Ok(IndustrialScores {
        single: row(&single),
        single_all: mean(&single_all),
        multi: row(&multi),
        multi_all: mean(&multi_all),
    })
}

/// Regenerates Table 2 for the large trio: Chat, ChipNeMo, ChipAlign.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn table2(zoo: &Zoo, bench_seed: u64) -> Result<TextTable, PipelineError> {
    let bench = IndustrialBenchmark::generate(bench_seed);
    let mut table = TextTable::new(
        "Table 2: graded scores on the industrial chip QA benchmark (single | multi turn)",
        &[
            "S-ARCH", "S-BUILD", "S-LSF", "S-TESTGEN", "S-All", "M-ARCH", "M-BUILD",
            "M-LSF", "M-TESTGEN", "M-All",
        ],
        2,
    );
    let rows: Vec<(String, TinyLm)> = vec![
        (
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?,
        ),
        (
            ZooModel::ChipNemo.paper_name(),
            zoo.model(ZooModel::ChipNemo)?,
        ),
        (
            "LLaMA2-70B-ChipAlign".to_string(),
            super::chipalign_large(zoo)?,
        ),
    ];
    for (label, model) in rows {
        eprintln!("[table2] evaluating {label}...");
        let scores = eval_subset(&model, &bench.questions)?;
        let mut values = scores.single.clone();
        values.push(scores.single_all);
        values.extend(scores.multi.clone());
        values.push(scores.multi_all);
        table.push_row(&label, values);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_row_shapes() {
        let s = IndustrialScores {
            single: vec![1.0; 4],
            single_all: 1.0,
            multi: vec![0.5; 4],
            multi_all: 0.5,
        };
        assert_eq!(s.single.len(), IndustrialCategory::ALL.len());
    }
}

//! One runner per paper experiment.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`openroad`] | Table 1 (ROUGE-L on OpenROAD QA) and Figure 8 (λ sensitivity) |
//! | [`industrial`] | Table 2 (graded industrial chip QA, single + multi turn) |
//! | [`ifeval`] | Table 3 (instruction-following accuracy) |
//! | [`multichoice`] | Figure 7 (multi-choice chip QA accuracy) |
//! | [`radar`] | Figure 2 (normalized capability overview) |
//! | [`qualitative`] | Figures 5 and 6 (side-by-side responses) |

pub mod ifeval;
pub mod industrial;
pub mod multichoice;
pub mod openroad;
pub mod qualitative;
pub mod radar;

use chipalign_merge::{Della, GeodesicMerge, Merger, ModelSoup, TaskArithmetic, Ties};
use chipalign_nn::TinyLm;

use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// The paper's recommended interpolation coefficient.
pub const PAPER_LAMBDA: f32 = 0.6;

/// Builds every merged variant of one tiny backbone, in the row order of
/// Table 1: TA, TIES, DELLA, ModelSoup, ChipAlign.
///
/// The EDA model plays the "chip" role and the instruct model the
/// "instruct" role. The task-vector methods (TA/TIES/DELLA) additionally
/// need the common ancestor both specialists descend from — the
/// *pretrained base* — as their reference point; using the instruct model
/// itself would make TA degenerate to exactly ModelSoup.
///
/// # Errors
///
/// Propagates zoo training and merge failures.
pub fn merged_variants(
    zoo: &Zoo,
    backbone: Backbone,
) -> Result<Vec<(String, TinyLm)>, PipelineError> {
    let base = zoo.model(ZooModel::Base(backbone))?;
    let instruct = zoo.model(ZooModel::Instruct(backbone))?;
    let eda = zoo.model(ZooModel::Eda(backbone))?;
    let base_ckpt = base.to_checkpoint()?;
    let chip_ckpt = eda.to_checkpoint()?;
    let instruct_ckpt = instruct.to_checkpoint()?;
    let name = backbone.paper_name();

    let mergers: Vec<(String, Box<dyn Merger>)> = vec![
        (
            format!("{name}-TA"),
            // Scale < 1: at exactly 1.0, averaging two task vectors onto
            // the base is algebraically identical to ModelSoup. The task-
            // arithmetic literature recommends per-task coefficients below
            // 0.5; 0.8 total (0.4 per task vector) is in that range.
            Box::new(TaskArithmetic::new(base_ckpt.clone(), 0.8)?),
        ),
        (
            format!("{name}-TIES"),
            Box::new(Ties::recommended(base_ckpt.clone())?),
        ),
        (
            format!("{name}-DELLA"),
            Box::new(Della::recommended(base_ckpt, 7)?),
        ),
        (format!("{name}-ModelSoup"), Box::new(ModelSoup::new())),
        (
            format!("{name}-ChipAlign"),
            Box::new(GeodesicMerge::new(PAPER_LAMBDA)?),
        ),
    ];

    let mut out = Vec::with_capacity(mergers.len());
    for (label, merger) in mergers {
        let merged_ckpt = merger.merge_pair(&chip_ckpt, &instruct_ckpt)?;
        out.push((label, TinyLm::from_checkpoint(&merged_ckpt)?));
    }
    Ok(out)
}

/// Builds the large-model ChipAlign merge (ChipNeMo ⊕ Chat at λ = 0.6).
///
/// # Errors
///
/// Propagates zoo training and merge failures.
pub fn chipalign_large(zoo: &Zoo) -> Result<TinyLm, PipelineError> {
    let chat = zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?;
    let chipnemo = zoo.model(ZooModel::ChipNemo)?;
    let merged = GeodesicMerge::new(PAPER_LAMBDA)?
        .merge_pair(&chipnemo.to_checkpoint()?, &chat.to_checkpoint()?)?;
    Ok(TinyLm::from_checkpoint(&merged)?)
}

//! Figure 7: multi-choice chip QA accuracy (EDA scripts / bugs / circuits).

use chipalign_data::facts::Domain;
use chipalign_data::multichoice::{generate as gen_items, MultiChoiceItem, DOMAINS};
use chipalign_nn::TinyLm;

use crate::evalkit::choose_option;
use crate::report::TextTable;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// Per-domain accuracy for one model, in Figure 7 order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiChoiceScores {
    /// Accuracy per domain (EDA scripts, bugs, circuits).
    pub per_domain: Vec<f64>,
    /// Mean accuracy over all items.
    pub mean: f64,
}

/// Evaluates one model over an item subset.
///
/// # Errors
///
/// Propagates scoring failures.
pub fn eval_subset(
    model: &TinyLm,
    items: &[MultiChoiceItem],
) -> Result<MultiChoiceScores, PipelineError> {
    let mut per: std::collections::HashMap<Domain, (usize, usize)> = Default::default();
    let mut correct_total = 0usize;
    for item in items {
        let picked = choose_option(model, &item.prompt, &item.choices)?;
        let entry = per.entry(item.domain).or_insert((0, 0));
        entry.1 += 1;
        if picked == item.correct {
            entry.0 += 1;
            correct_total += 1;
        }
    }
    let per_domain = DOMAINS
        .iter()
        .map(|d| {
            let (c, n) = per.get(d).copied().unwrap_or((0, 0));
            if n == 0 {
                0.0
            } else {
                c as f64 / n as f64
            }
        })
        .collect();
    Ok(MultiChoiceScores {
        per_domain,
        mean: if items.is_empty() {
            0.0
        } else {
            correct_total as f64 / items.len() as f64
        },
    })
}

/// Regenerates Figure 7 for the large trio.
///
/// # Errors
///
/// Propagates zoo, merge, and scoring failures.
pub fn fig7(zoo: &Zoo, bench_seed: u64) -> Result<TextTable, PipelineError> {
    let items = gen_items(bench_seed);
    let mut table = TextTable::new(
        "Figure 7: multi-choice chip QA accuracy",
        &["EDA Scripts", "Bugs", "Circuits", "Mean"],
        3,
    );
    let rows: Vec<(String, TinyLm)> = vec![
        (
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?,
        ),
        (
            ZooModel::ChipNemo.paper_name(),
            zoo.model(ZooModel::ChipNemo)?,
        ),
        (
            "LLaMA2-70B-ChipAlign".to_string(),
            super::chipalign_large(zoo)?,
        ),
    ];
    for (label, model) in rows {
        eprintln!("[fig7] evaluating {label}...");
        let scores = eval_subset(&model, &items)?;
        let mut values = scores.per_domain.clone();
        values.push(scores.mean);
        table.push_row(&label, values);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_items_give_zero_scores() {
        use chipalign_model::ArchSpec;
        use chipalign_tensor::rng::Pcg32;
        let mut arch = ArchSpec::tiny("mc");
        arch.vocab_size = 99;
        let model = TinyLm::new(&arch, &mut Pcg32::seed(1)).expect("valid");
        let scores = eval_subset(&model, &[]).expect("ok");
        assert_eq!(scores.mean, 0.0);
        assert_eq!(scores.per_domain, vec![0.0; 3]);
    }
}

//! Table 1 (OpenROAD QA ROUGE-L) and Figure 8 (λ sensitivity).

use chipalign_data::openroad::{OpenRoadBenchmark, QaTriplet};
use chipalign_eval::rouge::rouge_l;
use chipalign_merge::{sweep, GeodesicMerge, Merger};
use chipalign_nn::TinyLm;
use chipalign_rag::{Chunker, Retriever};

use crate::evalkit::{mean, respond};
use crate::report::TextTable;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// Which context each prompt carries (the two column groups of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextMode {
    /// The triplet's own grounding sentence.
    Golden,
    /// Whatever the retrieval pipeline returns for the question.
    Rag,
}

/// Per-category mean ROUGE-L F1 scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryScores {
    /// "Functionality" column.
    pub functionality: f64,
    /// "VLSI Flow" column.
    pub vlsi_flow: f64,
    /// "GUI & Install & Test" column.
    pub gui: f64,
    /// "All" column (mean over all triplets).
    pub all: f64,
}

impl CategoryScores {
    /// The four columns in the paper's order.
    #[must_use]
    pub fn as_row(&self) -> Vec<f64> {
        vec![self.functionality, self.vlsi_flow, self.gui, self.all]
    }
}

/// The shared evaluation state for Table 1 and Figure 8.
#[derive(Debug)]
pub struct OpenRoadEval {
    bench: OpenRoadBenchmark,
    retriever: Retriever,
    /// How many chunks the RAG mode stuffs into the context.
    rag_top_k: usize,
}

impl OpenRoadEval {
    /// Builds the benchmark and its retrieval pipeline.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let bench = OpenRoadBenchmark::generate(seed);
        let docs = OpenRoadBenchmark::corpus_documents();
        let retriever = Retriever::build(Chunker::default().chunk_all(&docs));
        OpenRoadEval {
            bench,
            retriever,
            rag_top_k: 2,
        }
    }

    /// The benchmark triplets.
    #[must_use]
    pub fn triplets(&self) -> &[QaTriplet] {
        &self.bench.triplets
    }

    /// Evaluates one model over a triplet subset.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn eval_subset(
        &self,
        model: &TinyLm,
        triplets: &[QaTriplet],
        mode: ContextMode,
    ) -> Result<CategoryScores, PipelineError> {
        let mut per_cat: std::collections::HashMap<&str, Vec<f64>> = Default::default();
        let mut all = Vec::with_capacity(triplets.len());
        for t in triplets {
            let prompt = match mode {
                ContextMode::Golden => t.prompt(),
                ContextMode::Rag => {
                    let ctx = self.retriever.retrieve_context(&t.question, self.rag_top_k);
                    t.prompt_with_context(&ctx)
                }
            };
            let response = respond(model, &prompt)?;
            let f1 = rouge_l(&response, &t.golden).f1;
            per_cat.entry(t.category).or_default().push(f1);
            all.push(f1);
        }
        let cat = |name: &str| mean(per_cat.get(name).map_or(&[][..], Vec::as_slice));
        Ok(CategoryScores {
            functionality: cat("Functionality"),
            vlsi_flow: cat("VLSI Flow"),
            gui: cat("GUI & Install & Test"),
            all: mean(&all),
        })
    }

    /// Evaluates one model over the full benchmark.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn eval_model(
        &self,
        model: &TinyLm,
        mode: ContextMode,
    ) -> Result<CategoryScores, PipelineError> {
        self.eval_subset(model, &self.bench.triplets, mode)
    }

    /// Per-item ROUGE-L F1 scores over a triplet subset, in triplet order —
    /// the input shape paired significance tests need.
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn eval_items(
        &self,
        model: &TinyLm,
        triplets: &[QaTriplet],
        mode: ContextMode,
    ) -> Result<Vec<f64>, PipelineError> {
        let mut items = Vec::with_capacity(triplets.len());
        for t in triplets {
            let prompt = match mode {
                ContextMode::Golden => t.prompt(),
                ContextMode::Rag => {
                    let ctx = self.retriever.retrieve_context(&t.question, self.rag_top_k);
                    t.prompt_with_context(&ctx)
                }
            };
            let response = respond(model, &prompt)?;
            items.push(rouge_l(&response, &t.golden).f1);
        }
        Ok(items)
    }
}

/// Paired-bootstrap comparison of ChipAlign against ModelSoup (the
/// strongest merging baseline) on the golden-context benchmark.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn chipalign_vs_soup_significance(
    zoo: &Zoo,
    backbone: Backbone,
    bench_seed: u64,
) -> Result<chipalign_eval::significance::BootstrapResult, PipelineError> {
    use chipalign_eval::significance::paired_bootstrap;

    let eval = OpenRoadEval::new(bench_seed);
    let variants = super::merged_variants(zoo, backbone)?;
    let find = |suffix: &str| {
        variants
            .iter()
            .find(|(n, _)| n.ends_with(suffix))
            .expect("variant exists")
    };
    let chipalign = &find("ChipAlign").1;
    let soup = &find("ModelSoup").1;
    let a = eval.eval_items(chipalign, eval.triplets(), ContextMode::Golden)?;
    let b = eval.eval_items(soup, eval.triplets(), ContextMode::Golden)?;
    paired_bootstrap(&a, &b, 2000, bench_seed).ok_or_else(|| PipelineError::BadConfig {
        detail: "bootstrap over empty benchmark".into(),
    })
}

/// Regenerates Table 1: every method row for both backbones, golden and
/// RAG context columns.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn table1(zoo: &Zoo, bench_seed: u64) -> Result<TextTable, PipelineError> {
    let eval = OpenRoadEval::new(bench_seed);
    let mut table = TextTable::new(
        "Table 1: ROUGE-L on the OpenROAD QA benchmark (golden | RAG context)",
        &[
            "G-Func", "G-VLSI", "G-GUI", "G-All", "R-Func", "R-VLSI", "R-GUI", "R-All",
        ],
        3,
    );

    let mut rows: Vec<(String, TinyLm)> = vec![
        (
            ZooModel::GeneralStrong.paper_name(),
            zoo.model(ZooModel::GeneralStrong)?,
        ),
        (ZooModel::RagEda.paper_name(), zoo.model(ZooModel::RagEda)?),
    ];
    for backbone in [Backbone::QwenTiny, Backbone::LlamaTiny] {
        rows.push((
            ZooModel::Instruct(backbone).paper_name(),
            zoo.model(ZooModel::Instruct(backbone))?,
        ));
        rows.push((
            ZooModel::Eda(backbone).paper_name(),
            zoo.model(ZooModel::Eda(backbone))?,
        ));
        rows.extend(merged_rows(zoo, backbone)?);
    }

    for (label, model) in rows {
        eprintln!("[table1] evaluating {label}...");
        let golden = eval.eval_model(&model, ContextMode::Golden)?;
        let rag = eval.eval_model(&model, ContextMode::Rag)?;
        let mut values = golden.as_row();
        values.extend(rag.as_row());
        table.push_row(&label, values);
    }
    Ok(table)
}

fn merged_rows(
    zoo: &Zoo,
    backbone: Backbone,
) -> Result<Vec<(String, TinyLm)>, PipelineError> {
    super::merged_variants(zoo, backbone)
}

/// Regenerates Figure 8: ROUGE-L ("All", golden context) as a function of
/// λ for both backbones.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn fig8(zoo: &Zoo, bench_seed: u64, steps: usize) -> Result<TextTable, PipelineError> {
    let eval = OpenRoadEval::new(bench_seed);
    let lambdas = sweep::lambda_grid(steps);
    let mut table = TextTable::new(
        "Figure 8: ROUGE-L (All, golden context) vs lambda",
        &["Qwen1.5-14B", "LLaMA3-8B"],
        3,
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for backbone in [Backbone::QwenTiny, Backbone::LlamaTiny] {
        let instruct = zoo.model(ZooModel::Instruct(backbone))?.to_checkpoint()?;
        let eda = zoo.model(ZooModel::Eda(backbone))?.to_checkpoint()?;
        let mut scores = Vec::with_capacity(lambdas.len());
        for &lambda in &lambdas {
            eprintln!(
                "[fig8] {} lambda={lambda:.1}...",
                backbone.paper_name()
            );
            let merged = GeodesicMerge::new(lambda)?.merge_pair(&eda, &instruct)?;
            let model = TinyLm::from_checkpoint(&merged)?;
            let s = eval.eval_model(&model, ContextMode::Golden)?;
            scores.push(s.all);
        }
        columns.push(scores);
    }
    for (i, &lambda) in lambdas.iter().enumerate() {
        table.push_row(
            &format!("lambda={lambda:.1}"),
            vec![columns[0][i], columns[1][i]],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_row_order_matches_paper() {
        let s = CategoryScores {
            functionality: 0.1,
            vlsi_flow: 0.2,
            gui: 0.3,
            all: 0.4,
        };
        assert_eq!(s.as_row(), vec![0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn eval_state_builds() {
        let eval = OpenRoadEval::new(42);
        assert_eq!(eval.triplets().len(), 90);
        assert!(!eval.retriever.chunks().is_empty());
    }

    #[test]
    fn eval_items_align_with_subset_mean() {
        use chipalign_model::ArchSpec;
        use chipalign_tensor::rng::Pcg32;

        let mut arch = ArchSpec::tiny("openroad-test");
        arch.vocab_size = 99;
        arch.max_seq_len = 320;
        let model = TinyLm::new(&arch, &mut Pcg32::seed(5)).expect("valid");
        let eval = OpenRoadEval::new(42);
        let subset = &eval.triplets()[..5];
        let items = eval
            .eval_items(&model, subset, ContextMode::Golden)
            .expect("runs");
        let scores = eval
            .eval_subset(&model, subset, ContextMode::Golden)
            .expect("runs");
        assert_eq!(items.len(), 5);
        let mean_items = items.iter().sum::<f64>() / items.len() as f64;
        assert!(
            (mean_items - scores.all).abs() < 1e-12,
            "per-item scores must aggregate to the subset mean"
        );
        for i in &items {
            assert!((0.0..=1.0).contains(i));
        }
    }
}

//! Figures 5 and 6: qualitative side-by-side model responses.

use chipalign_data::industrial::IndustrialBenchmark;
use chipalign_data::openroad::OpenRoadBenchmark;
use chipalign_eval::grader::Rubric;
use chipalign_eval::ifeval::Instruction;
use chipalign_eval::rouge::rouge_l;
use chipalign_nn::TinyLm;

use crate::evalkit::respond;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

/// One model's response with its scores.
#[derive(Debug, Clone, PartialEq)]
pub struct QualitativeResponse {
    /// Model label.
    pub model: String,
    /// The raw response text.
    pub response: String,
    /// ROUGE-L F1 vs the golden answer.
    pub rouge_f1: f64,
    /// Rubric grade (the Figure-6 style evaluation score).
    pub grade: u8,
    /// Whether every directive in the prompt was strictly followed.
    pub follows_instructions: bool,
}

/// A rendered qualitative comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The full prompt shown to every model.
    pub prompt: String,
    /// The golden answer.
    pub golden: String,
    /// One entry per model.
    pub responses: Vec<QualitativeResponse>,
}

impl Comparison {
    /// Renders the comparison as display text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("PROMPT : {}\n", self.prompt));
        out.push_str(&format!("GOLDEN : {}\n", self.golden));
        for r in &self.responses {
            out.push_str(&format!(
                "{:<22} rouge={:.3} grade={:>3} follows={}\n    -> {}\n",
                r.model, r.rouge_f1, r.grade, r.follows_instructions, r.response
            ));
        }
        out
    }
}

fn compare(
    models: &[(String, TinyLm)],
    prompt: &str,
    golden: &str,
    context: &str,
    instructions: &[Instruction],
) -> Result<Comparison, PipelineError> {
    let rubric = Rubric::default();
    let mut responses = Vec::with_capacity(models.len());
    for (label, model) in models {
        let response = respond(model, prompt)?;
        let grade = rubric.grade(&response, golden, context, instructions);
        responses.push(QualitativeResponse {
            model: label.clone(),
            rouge_f1: rouge_l(&response, golden).f1,
            grade: grade.score,
            follows_instructions: instructions
                .iter()
                .all(|i| i.check_strict(&response)),
            response,
        });
    }
    Ok(Comparison {
        prompt: prompt.to_string(),
        golden: golden.to_string(),
        responses,
    })
}

/// Figure 5: an OpenROAD QA triplet answered by the instruct, EDA, and
/// ChipAlign models of one backbone.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn fig5(zoo: &Zoo, bench_seed: u64) -> Result<Comparison, PipelineError> {
    let bench = OpenRoadBenchmark::generate(bench_seed);
    // Pick a GUI-category triplet, as the paper's example is a GUI question.
    let triplet = bench
        .triplets
        .iter()
        .find(|t| t.category == "GUI & Install & Test")
        .unwrap_or(&bench.triplets[0]);
    let backbone = Backbone::LlamaTiny;
    let merged = super::merged_variants(zoo, backbone)?;
    let chipalign = merged
        .into_iter()
        .find(|(n, _)| n.ends_with("ChipAlign"))
        .expect("ChipAlign variant exists");
    let models = vec![
        (
            ZooModel::Instruct(backbone).paper_name(),
            zoo.model(ZooModel::Instruct(backbone))?,
        ),
        (
            ZooModel::Eda(backbone).paper_name(),
            zoo.model(ZooModel::Eda(backbone))?,
        ),
        chipalign,
    ];
    let instructions: Vec<Instruction> =
        triplet.tags.iter().map(|t| t.instruction()).collect();
    compare(
        &models,
        &triplet.prompt(),
        &triplet.golden,
        &triplet.context,
        &instructions,
    )
}

/// Figure 6: a BUILD-category industrial question answered by Chat,
/// ChipNeMo, and ChipAlign.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn fig6(zoo: &Zoo, bench_seed: u64) -> Result<Comparison, PipelineError> {
    let bench = IndustrialBenchmark::generate(bench_seed);
    let question = bench
        .questions
        .iter()
        .find(|q| q.category == chipalign_data::facts::IndustrialCategory::Build)
        .expect("benchmark has BUILD questions");
    let models = vec![
        (
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?,
        ),
        (
            ZooModel::ChipNemo.paper_name(),
            zoo.model(ZooModel::ChipNemo)?,
        ),
        (
            "LLaMA2-70B-ChipAlign".to_string(),
            super::chipalign_large(zoo)?,
        ),
    ];
    let instructions: Vec<Instruction> =
        question.tags.iter().map(|t| t.instruction()).collect();
    compare(
        &models,
        &question.prompt(),
        &question.golden,
        &question.context,
        &instructions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_all_fields() {
        let c = Comparison {
            prompt: "P".into(),
            golden: "G".into(),
            responses: vec![QualitativeResponse {
                model: "M".into(),
                response: "R".into(),
                rouge_f1: 0.5,
                grade: 75,
                follows_instructions: true,
            }],
        };
        let text = c.render();
        assert!(text.contains("PROMPT : P"));
        assert!(text.contains("grade= 75"));
        assert!(text.contains("-> R"));
    }
}

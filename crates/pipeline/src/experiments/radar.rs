//! Figure 2: the normalized capability radar for the large trio
//! (Chat vs ChipNeMo vs ChipAlign).
//!
//! The paper normalizes each benchmark axis to `[0, 1]` (per its ref.\ 12) so the
//! three models can be overlaid; here each axis is normalized by the
//! maximum across the three models, which preserves the figure's reading —
//! who dominates which axis.

use chipalign_data::ifeval_bench::generate as gen_ifeval;
use chipalign_data::industrial::IndustrialBenchmark;
use chipalign_data::multichoice::generate as gen_multichoice;
use chipalign_nn::TinyLm;

use crate::report::TextTable;
use crate::zoo::{Backbone, Zoo, ZooModel};
use crate::PipelineError;

use super::{ifeval, industrial, multichoice};

/// The radar's axes, in display order.
pub const AXES: [&str; 5] = [
    "IFEval (strict)",
    "Industrial QA (single)",
    "Industrial QA (multi)",
    "Multi-choice chip QA",
    "Chip grounding",
];

/// Regenerates the Figure 2 data: one row per model, one normalized column
/// per axis.
///
/// # Errors
///
/// Propagates zoo, merge, and generation failures.
pub fn fig2(zoo: &Zoo, bench_seed: u64) -> Result<TextTable, PipelineError> {
    let ifeval_prompts = gen_ifeval(bench_seed);
    let industrial_bench = IndustrialBenchmark::generate(bench_seed);
    let mc_items = gen_multichoice(bench_seed);

    let rows: Vec<(String, TinyLm)> = vec![
        (
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            zoo.model(ZooModel::Instruct(Backbone::LlamaLarge))?,
        ),
        (
            ZooModel::ChipNemo.paper_name(),
            zoo.model(ZooModel::ChipNemo)?,
        ),
        (
            "LLaMA2-70B-ChipAlign".to_string(),
            super::chipalign_large(zoo)?,
        ),
    ];

    let mut raw: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, model) in rows {
        eprintln!("[fig2] evaluating {label}...");
        let ife = ifeval::eval_subset(&model, &ifeval_prompts)?;
        let ind = industrial::eval_subset(&model, &industrial_bench.questions)?;
        let mc = multichoice::eval_subset(&model, &mc_items)?;
        // "Chip grounding": how well single-turn answers stay inside the
        // provided context — proxied by the single-turn TESTGEN+BUILD mean
        // (the categories Figure 6 illustrates).
        let grounding = (ind.single[1] + ind.single[3]) / 2.0;
        raw.push((
            label,
            vec![
                ife.prompt_strict,
                ind.single_all / 100.0,
                ind.multi_all / 100.0,
                mc.mean,
                grounding / 100.0,
            ],
        ));
    }

    // Normalize each axis by the max across models.
    let n_axes = AXES.len();
    let mut maxima = vec![0.0f64; n_axes];
    for (_, values) in &raw {
        for (m, v) in maxima.iter_mut().zip(values) {
            *m = m.max(*v);
        }
    }
    let mut table = TextTable::new(
        "Figure 2: normalized capability overview (1.0 = best model on the axis)",
        &AXES,
        3,
    );
    for (label, values) in raw {
        let normalized = values
            .iter()
            .zip(&maxima)
            .map(|(v, m)| if *m > 0.0 { v / m } else { 0.0 })
            .collect();
        table.push_row(&label, normalized);
    }
    Ok(table)
}

//! Experiment pipeline: the model zoo and one runner per paper table and
//! figure.
//!
//! This crate glues the substrates together the way Figure 4 of the paper
//! describes:
//!
//! 1. [`zoo`] trains (and caches) every model the experiments need — bases,
//!    instruction specialists, EDA specialists (LoRA DAFT), the
//!    ChipNeMo-style large model (DAPT + DAFT), and the general-strong /
//!    customized baselines standing in for GPT-4 Turbo and RAG-EDA.
//! 2. [`evalkit`] provides the shared inference helpers: tokenize a
//!    benchmark prompt, decode a response at temperature 0, and score it.
//! 3. [`experiments`] contains one runner per experiment: Table 1
//!    (OpenROAD QA), Table 2 (industrial chip QA), Table 3 (IFEval),
//!    Figure 2 (radar overview), Figure 7 (multi-choice chip QA), Figure 8
//!    (λ sensitivity), and the qualitative Figures 5/6.
//! 4. [`report`] renders paper-style text tables and JSON artifacts.
//!
//! # Example
//!
//! ```no_run
//! use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig, ZooModel, Backbone};
//!
//! # fn main() -> Result<(), chipalign_pipeline::PipelineError> {
//! let zoo = Zoo::new(ZooConfig { quality: Quality::Smoke, seed: 1, cache_dir: None })?;
//! let instruct = zoo.model(ZooModel::Instruct(Backbone::LlamaTiny))?;
//! assert!(instruct.arch().d_model > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod evalkit;
pub mod experiments;
pub mod report;
pub mod zoo;

pub use error::PipelineError;

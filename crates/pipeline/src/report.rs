//! Paper-style text tables and JSON artifacts.

use std::fmt::Write as _;
use std::path::Path;

use serde::Serialize;

use crate::PipelineError;

/// A simple fixed-precision text table matching the paper's layout
/// (method rows × metric columns).
#[derive(Debug, Clone, Serialize)]
pub struct TextTable {
    /// Table caption.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Decimal places to print.
    pub precision: usize,
}

impl TextTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, columns: &[&str], precision: usize) -> Self {
        TextTable {
            title: title.to_string(),
            columns: columns.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            precision,
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: &str, values: Vec<f64>) {
        self.rows.push((label.to_string(), values));
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once("Method".len()))
            .max()
            .unwrap_or(6)
            + 2;
        let col_width = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(self.precision + 4)
            + 2;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<label_width$}", "Method");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        let _ = writeln!(out);
        let total = label_width + col_width * self.columns.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:<label_width$}");
            for v in values {
                let _ = write!(out, "{v:>col_width$.prec$}", prec = self.precision);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the table (and arbitrary extra payload) as JSON next to the
    /// text rendering.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] on write failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| {
            PipelineError::BadConfig {
                detail: format!("json serialization failed: {e}"),
            }
        })?;
        std::fs::write(path, json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = TextTable::new("Table X", &["All", "Sub"], 3);
        t.push_row("ChipAlign", vec![0.369, 0.314]);
        t.push_row("ModelSoup", vec![0.345, 0.306]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("ChipAlign"));
        assert!(s.contains("0.369"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title + header + rule + 2 rows");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("Empty", &["A"], 2);
        let s = t.render();
        assert!(s.contains("Empty"));
        assert!(s.contains("Method"));
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("chipalign-report-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.json");
        let mut t = TextTable::new("T", &["A"], 2);
        t.push_row("r", vec![1.5]);
        t.save_json(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"title\": \"T\""));
        std::fs::remove_file(&path).ok();
    }
}

//! The model zoo: every LLM the paper's experiments need, trained from
//! scratch with deterministic recipes and cached on disk.
//!
//! Mapping to the paper's models:
//!
//! | Zoo id | Stands in for | Recipe |
//! |--------|---------------|--------|
//! | `Base(QwenTiny)` / `Base(LlamaTiny)` | Qwen1.5-14B / LLaMA3-8B pretrained bases | causal LM on the general corpus |
//! | `Instruct(QwenTiny)` / `Instruct(LlamaTiny)` | Qwen1.5-14B-Chat / LLaMA3-8B-Instruct | instruction SFT (format-tagged general data) |
//! | `Eda(…)` | Qwen1.5-14B-EDA / LLaMA3-8B-EDA | retrieval-augmented DAFT via LoRA (r=8, α=16) on untagged chip triplets, from the instruct model |
//! | `Base(LlamaLarge)` | LLaMA2-70B-Base | general pretraining |
//! | `Instruct(LlamaLarge)` | LLaMA2-70B-Chat | instruction SFT |
//! | `ChipNemo` | LLaMA2-70B-ChipNeMo | DAPT on chip docs + DAFT blend (industrial triplets, closed-book chip QA, a slice of tagged data — the OASST/SteerLM component the paper credits ChipNeMo's residual alignment to) |
//! | `GeneralStrong` | GPT-4 Turbo | heavier instruction SFT + light chip exposure |
//! | `RagEda` | RAG-EDA | full-parameter chip DAFT from the Qwen instruct model ("highly customized") |
//!
//! The merged models (ChipAlign and baselines) are *not* in the zoo: they
//! are produced on demand by `chipalign-merge` from these ingredients.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use chipalign_data::corpus::{chip_corpus, general_corpus};
use chipalign_data::facts::{industrial_facts, openroad_facts, Fact};
use chipalign_data::prompt::format_prompt;
use chipalign_data::sft::{chip_sft, chip_sft_closed_book, instruct_sft, SftPair};
use chipalign_model::{format, ArchSpec};
use chipalign_nn::train::{train, Example, TrainConfig};
use chipalign_nn::{AdamConfig, CharTokenizer, LoraConfig, LoraModel, TinyLm};
use chipalign_tensor::rng::Pcg32;

use crate::PipelineError;

/// Token id appended to every completion.
const EOS: u32 = 2;
/// Token id prepended to every sequence.
const BOS: u32 = 1;

/// Training scale: smoke-test sizes or the full paper-table sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Tiny models and few steps — for unit/integration tests (seconds).
    Smoke,
    /// The sizes used to regenerate the paper's tables (minutes per model
    /// on one core; all models are cached after the first run).
    Paper,
}

impl Quality {
    fn tag(self) -> &'static str {
        match self {
            Quality::Smoke => "smoke",
            Quality::Paper => "paper",
        }
    }
}

/// The three simulated backbones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backbone {
    /// Stand-in for Qwen1.5-14B.
    QwenTiny,
    /// Stand-in for LLaMA3-8B.
    LlamaTiny,
    /// Stand-in for LLaMA2-70B.
    LlamaLarge,
}

impl Backbone {
    /// The paper's name for this backbone.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            Backbone::QwenTiny => "Qwen1.5-14B",
            Backbone::LlamaTiny => "LLaMA3-8B",
            Backbone::LlamaLarge => "LLaMA2-70B",
        }
    }

    fn slug(self) -> &'static str {
        match self {
            Backbone::QwenTiny => "qwen",
            Backbone::LlamaTiny => "llama",
            Backbone::LlamaLarge => "large",
        }
    }

    /// The architecture at a given quality.
    #[must_use]
    pub fn arch(self, quality: Quality) -> ArchSpec {
        let tok = CharTokenizer::new();
        // Copy/extraction fidelity (the substrate of every benchmark)
        // emerges robustly at d_model = 64, n_layers = 3 with this recipe;
        // widths of 72/80 destabilised pretraining under the same LR
        // schedule. The backbones therefore share the proven width and
        // differ in feed-forward capacity (and, through their recipes and
        // seeds, in everything else that matters to the experiments).
        let (d_model, n_layers, d_ff) = match (quality, self) {
            (Quality::Smoke, _) => (32, 2, 64),
            (Quality::Paper, Backbone::LlamaTiny) => (64, 3, 128),
            (Quality::Paper, Backbone::QwenTiny) => (64, 3, 160),
            (Quality::Paper, Backbone::LlamaLarge) => (64, 3, 192),
        };
        ArchSpec {
            name: format!("{}-{}", self.slug(), quality.tag()),
            vocab_size: tok.vocab_size(),
            d_model,
            n_layers,
            n_heads: 4,
            d_ff,
            // Large enough that a multi-turn prompt (~230 chars) plus the
            // response budget fits without truncating the context away.
            max_seq_len: 320,
        }
    }
}

/// Identifiers for the trainable zoo members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooModel {
    /// Pretrained base for a backbone.
    Base(Backbone),
    /// Instruction-aligned model for a backbone (the paper's publicly
    /// available chat/instruct models).
    Instruct(Backbone),
    /// The EDA specialist (LoRA DAFT from the instruct model). Only the
    /// tiny backbones have one.
    Eda(Backbone),
    /// The ChipNeMo-style large chip model (DAPT + DAFT from the large
    /// base).
    ChipNemo,
    /// The GPT-4-Turbo stand-in.
    GeneralStrong,
    /// The RAG-EDA stand-in.
    RagEda,
}

impl ZooModel {
    /// Stable cache-file slug.
    #[must_use]
    pub fn slug(self) -> String {
        match self {
            ZooModel::Base(b) => format!("base-{}", b.slug()),
            ZooModel::Instruct(b) => format!("instruct-{}", b.slug()),
            ZooModel::Eda(b) => format!("eda-{}", b.slug()),
            ZooModel::ChipNemo => "chipnemo".to_string(),
            ZooModel::GeneralStrong => "general-strong".to_string(),
            ZooModel::RagEda => "rag-eda".to_string(),
        }
    }

    /// The name the paper's tables use for this model.
    #[must_use]
    pub fn paper_name(self) -> String {
        match self {
            ZooModel::Base(b) => format!("{}-Base", b.paper_name()),
            ZooModel::Instruct(Backbone::QwenTiny) => "Qwen1.5-14B-Chat".to_string(),
            ZooModel::Instruct(Backbone::LlamaTiny) => "LLaMA3-8B-Instruct".to_string(),
            ZooModel::Instruct(Backbone::LlamaLarge) => "LLaMA2-70B-Chat".to_string(),
            ZooModel::Eda(b) => format!("{}-EDA", b.paper_name()),
            ZooModel::ChipNemo => "LLaMA2-70B-ChipNeMo".to_string(),
            ZooModel::GeneralStrong => "GPT-4 Turbo".to_string(),
            ZooModel::RagEda => "RAG-EDA".to_string(),
        }
    }
}

/// Zoo configuration.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Training scale.
    pub quality: Quality,
    /// Master seed; all recipes derive from it.
    pub seed: u64,
    /// On-disk cache directory (`None` disables persistence; models are
    /// still memoized in memory).
    pub cache_dir: Option<PathBuf>,
}

/// Step counts for one quality level.
#[derive(Debug, Clone, Copy)]
struct Recipe {
    batch: usize,
    pretrain_steps: usize,
    sft_steps: usize,
    lora_steps: usize,
    dapt_steps: usize,
    daft_steps: usize,
    corpus_docs: usize,
    sft_pairs: usize,
}

impl Recipe {
    fn for_quality(q: Quality) -> Recipe {
        match q {
            Quality::Smoke => Recipe {
                batch: 4,
                pretrain_steps: 120,
                sft_steps: 120,
                lora_steps: 100,
                dapt_steps: 60,
                daft_steps: 120,
                corpus_docs: 400,
                sft_pairs: 300,
            },
            Quality::Paper => Recipe {
                batch: 8,
                pretrain_steps: 3000,
                sft_steps: 800,
                lora_steps: 600,
                dapt_steps: 500,
                daft_steps: 900,
                corpus_docs: 5000,
                sft_pairs: 2000,
            },
        }
    }
}

/// The zoo: trains on demand, memoizes in memory, persists to disk.
pub struct Zoo {
    cfg: ZooConfig,
    recipe: Recipe,
    cache: Mutex<HashMap<String, TinyLm>>,
}

impl fmt::Debug for Zoo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zoo({:?}, seed {})", self.cfg.quality, self.cfg.seed)
    }
}

impl Zoo {
    /// Creates the zoo, creating the cache directory if configured.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Io`] if the cache directory cannot be
    /// created.
    pub fn new(cfg: ZooConfig) -> Result<Self, PipelineError> {
        if let Some(dir) = &cfg.cache_dir {
            std::fs::create_dir_all(dir)?;
        }
        let recipe = Recipe::for_quality(cfg.quality);
        Ok(Zoo {
            cfg,
            recipe,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The configured quality level.
    #[must_use]
    pub fn quality(&self) -> Quality {
        self.cfg.quality
    }

    /// Fetches (or trains) a model.
    ///
    /// # Errors
    ///
    /// Propagates training, checkpoint, and cache-I/O failures.
    pub fn model(&self, which: ZooModel) -> Result<TinyLm, PipelineError> {
        let key = which.slug();
        if let Some(m) = self.cache.lock().expect("zoo lock").get(&key) {
            return Ok(m.clone());
        }
        if let Some(model) = self.load_from_disk(&key)? {
            self.cache
                .lock()
                .expect("zoo lock")
                .insert(key, model.clone());
            return Ok(model);
        }
        eprintln!("[zoo] training {key} ({:?})...", self.cfg.quality);
        let started = std::time::Instant::now();
        let model = self.train_model(which)?;
        eprintln!(
            "[zoo] {key} ready in {:.1}s",
            started.elapsed().as_secs_f32()
        );
        self.save_to_disk(&key, &model)?;
        self.cache
            .lock()
            .expect("zoo lock")
            .insert(key, model.clone());
        Ok(model)
    }

    fn cache_path(&self, key: &str) -> Option<PathBuf> {
        self.cfg.cache_dir.as_ref().map(|d| {
            d.join(format!(
                "{key}-{}-s{}.calt",
                self.cfg.quality.tag(),
                self.cfg.seed
            ))
        })
    }

    fn load_from_disk(&self, key: &str) -> Result<Option<TinyLm>, PipelineError> {
        let Some(path) = self.cache_path(key) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        let ckpt = format::load(&path)?;
        Ok(Some(TinyLm::from_checkpoint(&ckpt)?))
    }

    fn save_to_disk(&self, key: &str, model: &TinyLm) -> Result<(), PipelineError> {
        if let Some(path) = self.cache_path(key) {
            let mut ckpt = model.to_checkpoint()?;
            ckpt.set_metadata("zoo.model", key);
            ckpt.set_metadata("zoo.seed", &self.cfg.seed.to_string());
            format::save(&ckpt, &path)?;
        }
        Ok(())
    }

    fn rng_for(&self, label: u64) -> Pcg32 {
        Pcg32::seed(self.cfg.seed).derive(label)
    }

    fn train_model(&self, which: ZooModel) -> Result<TinyLm, PipelineError> {
        match which {
            ZooModel::Base(b) => self.train_base(b),
            ZooModel::Instruct(b) => self.train_instruct(b),
            ZooModel::Eda(b) => self.train_eda(b),
            ZooModel::ChipNemo => self.train_chipnemo(),
            ZooModel::GeneralStrong => self.train_general_strong(),
            ZooModel::RagEda => self.train_rag_eda(),
        }
    }

    /// Pretraining (the base LLM stage).
    fn train_base(&self, backbone: Backbone) -> Result<TinyLm, PipelineError> {
        let arch = backbone.arch(self.cfg.quality);
        let mut init_rng = self.rng_for(backbone as u64 + 1);
        let mut model = TinyLm::new(&arch, &mut init_rng)?;
        let mut data_rng = self.rng_for(backbone as u64 + 100);
        let docs = general_corpus(self.recipe.corpus_docs, &mut data_rng);
        let examples: Vec<Example> = docs.iter().map(|d| pretrain_example(d)).collect();
        let cfg = TrainConfig {
            steps: self.recipe.pretrain_steps,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xA0 ^ backbone as u64,
        };
        train(&mut model, &examples, &cfg)?;
        Ok(model)
    }

    /// Instruction SFT (produces the paper's chat/instruct models).
    fn train_instruct(&self, backbone: Backbone) -> Result<TinyLm, PipelineError> {
        let mut model = self.model(ZooModel::Base(backbone))?;
        let mut rng = self.rng_for(backbone as u64 + 200);
        let pairs = instruct_sft(self.recipe.sft_pairs, &mut rng);
        let examples: Vec<Example> = pairs.iter().map(sft_example).collect();
        // LR balances two pressures: strong enough to instill reliable
        // tag-following, small enough that the instruct model stays in the
        // base's basin for weight-space interpolation. The large backbone
        // is merged against a *full-parameter* chip finetune (ChipNeMo)
        // rather than a LoRA one, so both of its specialists must stay
        // closer to the base than the tiny chains need to.
        let (steps, lr) = if backbone == Backbone::LlamaLarge {
            (self.recipe.sft_steps * 5 / 8, 7e-4)
        } else {
            (self.recipe.sft_steps, 1e-3)
        };
        let cfg = TrainConfig {
            steps,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xB0 ^ backbone as u64,
        };
        train(&mut model, &examples, &cfg)?;
        Ok(model)
    }

    /// Retrieval-augmented DAFT with LoRA — the paper's EDA specialists.
    fn train_eda(&self, backbone: Backbone) -> Result<TinyLm, PipelineError> {
        if backbone == Backbone::LlamaLarge {
            return Err(PipelineError::BadConfig {
                detail: "the paper has no 70B EDA model; use ChipNemo".into(),
            });
        }
        let instruct = self.model(ZooModel::Instruct(backbone))?;
        let mut rng = self.rng_for(backbone as u64 + 300);
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let pairs = chip_sft(&refs, self.recipe.sft_pairs, 0.0, &mut rng);
        let examples: Vec<Example> = pairs.iter().map(sft_example).collect();
        let mut lora = LoraModel::new(instruct, LoraConfig::default(), &mut rng)?;
        let cfg = TrainConfig {
            steps: self.recipe.lora_steps,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 5e-3,
                warmup_steps: 10,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xC0 ^ backbone as u64,
        };
        lora.train(&examples, &cfg)?;
        Ok(lora.merged_model()?)
    }

    /// DAPT + DAFT from the large base — the ChipNeMo stand-in.
    fn train_chipnemo(&self) -> Result<TinyLm, PipelineError> {
        let mut model = self.model(ZooModel::Base(Backbone::LlamaLarge))?;
        let mut rng = self.rng_for(400);

        // DAPT on the chip documentation corpus.
        let docs = chip_corpus(&mut rng);
        let dapt_examples: Vec<Example> = docs.iter().map(|d| pretrain_example(d)).collect();
        // DAPT/DAFT learning rates are deliberately conservative: ChipNeMo
        // is later merged with the chat model, and a full-parameter finetune
        // that strays far from the shared base leaves no usable geodesic
        // between them (DESIGN.md §6.3).
        let dapt_cfg = TrainConfig {
            steps: self.recipe.dapt_steps * 3 / 5,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 3e-4,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xD0,
        };
        train(&mut model, &dapt_examples, &dapt_cfg)?;

        // DAFT blend: grounded industrial QA + closed-book chip QA + a
        // slice of tagged instruction data (the OASST/SteerLM component).
        let industrial = industrial_facts();
        let openroad = openroad_facts();
        let openroad_refs: Vec<&Fact> = openroad.iter().collect();
        let n = self.recipe.sft_pairs;
        let mut pairs: Vec<SftPair> = Vec::new();
        for f in &industrial {
            // Grounded and closed-book forms of every industrial fact.
            pairs.push(SftPair {
                prompt: format_prompt(&f.doc, &f.question, &[]),
                completion: f.answer.clone(),
            });
            pairs.push(SftPair {
                prompt: format_prompt("", &f.question, &[]),
                completion: f.answer.clone(),
            });
            pairs.push(SftPair {
                prompt: format_prompt(&f.doc, &f.followup.0, &[]),
                completion: f.followup.1.clone(),
            });
        }
        pairs.extend(chip_sft_closed_book(&openroad_refs, n / 3, &mut rng));
        pairs.extend(chip_sft(&openroad_refs, n / 4, 0.0, &mut rng));
        let tagged = instruct_sft(n / 4, &mut rng);
        pairs.extend(tagged);
        let examples: Vec<Example> = pairs.iter().map(sft_example).collect();
        let daft_cfg = TrainConfig {
            steps: self.recipe.daft_steps * 2 / 3,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 5e-4,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xD1,
        };
        train(&mut model, &examples, &daft_cfg)?;
        Ok(model)
    }

    /// The GPT-4-Turbo stand-in: strong general instruction following,
    /// light chip exposure.
    fn train_general_strong(&self) -> Result<TinyLm, PipelineError> {
        let mut model = self.model(ZooModel::Instruct(Backbone::QwenTiny))?;
        let mut rng = self.rng_for(500);
        let openroad = openroad_facts();
        let refs: Vec<&Fact> = openroad.iter().collect();
        let mut pairs = instruct_sft(self.recipe.sft_pairs / 2, &mut rng);
        pairs.extend(chip_sft_closed_book(
            &refs,
            self.recipe.sft_pairs / 20,
            &mut rng,
        ));
        let examples: Vec<Example> = pairs.iter().map(sft_example).collect();
        let cfg = TrainConfig {
            steps: self.recipe.sft_steps / 2,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 5e-4,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xE0,
        };
        train(&mut model, &examples, &cfg)?;
        Ok(model)
    }

    /// The RAG-EDA stand-in: full-parameter chip DAFT from the Qwen
    /// instruct model.
    fn train_rag_eda(&self) -> Result<TinyLm, PipelineError> {
        let mut model = self.model(ZooModel::Instruct(Backbone::QwenTiny))?;
        let mut rng = self.rng_for(600);
        let facts = openroad_facts();
        let refs: Vec<&Fact> = facts.iter().collect();
        let pairs = chip_sft(&refs, self.recipe.sft_pairs, 0.1, &mut rng);
        let examples: Vec<Example> = pairs.iter().map(sft_example).collect();
        let cfg = TrainConfig {
            steps: self.recipe.sft_steps,
            batch_size: self.recipe.batch,
            adam: AdamConfig {
                lr: 5e-4,
                ..AdamConfig::default()
            },
            seed: self.cfg.seed ^ 0xF0,
        };
        train(&mut model, &examples, &cfg)?;
        Ok(model)
    }
}

/// Encodes a raw document as a pretraining example
/// (`<bos> text <eos>`, all positions trained).
#[must_use]
pub fn pretrain_example(text: &str) -> Example {
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode(text));
    ids.push(EOS);
    ids.truncate(256);
    Example::pretrain(ids)
}

/// Encodes an SFT pair (`<bos> prompt` masked, `completion <eos>` trained).
#[must_use]
pub fn sft_example(pair: &SftPair) -> Example {
    let tok = CharTokenizer::new();
    let mut prompt_ids = vec![BOS];
    prompt_ids.extend(tok.encode(&pair.prompt));
    let mut completion_ids = tok.encode(&pair.completion);
    completion_ids.push(EOS);
    Example::sft(prompt_ids, completion_ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_sizes_are_valid_and_distinct() {
        for q in [Quality::Smoke, Quality::Paper] {
            for b in [Backbone::QwenTiny, Backbone::LlamaTiny, Backbone::LlamaLarge] {
                let arch = b.arch(q);
                arch.check().expect("zoo arch must be valid");
                assert_eq!(arch.vocab_size, 99);
            }
        }
        // At paper quality the backbones differ in capacity (via the
        // feed-forward width; see the stability note in `Backbone::arch`).
        let q = Backbone::QwenTiny.arch(Quality::Paper);
        let l = Backbone::LlamaTiny.arch(Quality::Paper);
        let g = Backbone::LlamaLarge.arch(Quality::Paper);
        assert!(q.d_ff > l.d_ff);
        assert!(g.d_ff > q.d_ff);
    }

    #[test]
    fn slugs_and_names_are_stable() {
        assert_eq!(ZooModel::Eda(Backbone::QwenTiny).slug(), "eda-qwen");
        assert_eq!(
            ZooModel::Instruct(Backbone::LlamaLarge).paper_name(),
            "LLaMA2-70B-Chat"
        );
        assert_eq!(ZooModel::ChipNemo.paper_name(), "LLaMA2-70B-ChipNeMo");
    }

    #[test]
    fn pretrain_example_encoding() {
        let ex = pretrain_example("ab");
        assert_eq!(ex.tokens.first(), Some(&BOS));
        assert_eq!(ex.tokens.last(), Some(&EOS));
        assert!(ex.mask.iter().all(|&m| m));
    }

    #[test]
    fn sft_example_masks_prompt_only() {
        let pair = SftPair {
            prompt: "Q:x;A:".to_string(),
            completion: "y".to_string(),
        };
        let ex = sft_example(&pair);
        let prompt_len = 1 + "Q:x;A:".len();
        assert!(!ex.mask[..prompt_len].iter().any(|&m| m));
        assert!(ex.mask[prompt_len..].iter().all(|&m| m));
        assert_eq!(ex.tokens.last(), Some(&EOS));
    }

    #[test]
    fn eda_for_large_backbone_is_rejected() {
        let zoo = Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 1,
            cache_dir: None,
        })
        .expect("ok");
        assert!(matches!(
            zoo.model(ZooModel::Eda(Backbone::LlamaLarge)),
            Err(PipelineError::BadConfig { .. })
        ));
    }
}

//! Okapi BM25 lexical retrieval.

use std::collections::HashMap;

use chipalign_eval::text::tokenize;

use crate::chunk::DocumentChunk;

const K1: f64 = 1.2;
const B: f64 = 0.75;

/// An inverted-index BM25 scorer over a fixed chunk set.
///
/// # Example
///
/// ```
/// use chipalign_rag::{Bm25Index, Document, Chunker};
///
/// let docs = vec![
///     Document::new(0, "a", "global placement optimizes wirelength"),
///     Document::new(1, "b", "clock tree synthesis balances skew"),
/// ];
/// let chunks = Chunker::default().chunk_all(&docs);
/// let index = Bm25Index::build(&chunks);
/// let hits = index.query("what balances clock skew?", 1);
/// assert_eq!(chunks[hits[0].0].doc_id, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Bm25Index {
    /// term -> (chunk index, term frequency) postings.
    postings: HashMap<String, Vec<(usize, usize)>>,
    /// Words per chunk.
    doc_lens: Vec<usize>,
    avg_len: f64,
}

impl Bm25Index {
    /// Builds the index over a chunk corpus.
    #[must_use]
    pub fn build(chunks: &[DocumentChunk]) -> Self {
        let mut postings: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        let mut doc_lens = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let tokens = tokenize(&chunk.text);
            doc_lens.push(tokens.len());
            let mut tf: HashMap<String, usize> = HashMap::new();
            for t in tokens {
                *tf.entry(t).or_insert(0) += 1;
            }
            for (term, count) in tf {
                postings.entry(term).or_default().push((i, count));
            }
        }
        let avg_len = if doc_lens.is_empty() {
            0.0
        } else {
            doc_lens.iter().sum::<usize>() as f64 / doc_lens.len() as f64
        };
        Bm25Index {
            postings,
            doc_lens,
            avg_len,
        }
    }

    /// Number of indexed chunks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_lens.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// Scores all chunks against a query and returns the `top_k` as
    /// `(chunk_index, score)` in descending score order (ties broken by
    /// index for determinism). Chunks with zero score are omitted.
    #[must_use]
    pub fn query(&self, query: &str, top_k: usize) -> Vec<(usize, f64)> {
        let n = self.doc_lens.len();
        if n == 0 || top_k == 0 {
            return Vec::new();
        }
        let mut scores = vec![0.0f64; n];
        for term in tokenize(query) {
            let Some(posting) = self.postings.get(&term) else {
                continue;
            };
            let df = posting.len() as f64;
            // BM25+-style floor keeps idf positive for very common terms.
            let idf = (((n as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln();
            for &(chunk_idx, tf) in posting {
                let tf = tf as f64;
                let len_norm = 1.0 - B + B * self.doc_lens[chunk_idx] as f64 / self.avg_len;
                scores[chunk_idx] += idf * tf * (K1 + 1.0) / (tf + K1 * len_norm);
            }
        }
        let mut ranked: Vec<(usize, f64)> = scores
            .into_iter()
            .enumerate()
            .filter(|(_, s)| *s > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top_k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(doc_id: usize, text: &str) -> DocumentChunk {
        DocumentChunk {
            doc_id,
            title: format!("doc{doc_id}"),
            text: text.to_string(),
        }
    }

    fn corpus() -> Vec<DocumentChunk> {
        vec![
            chunk(0, "global placement optimizes the wirelength of standard cells"),
            chunk(1, "clock tree synthesis balances skew across the clock network"),
            chunk(2, "detailed routing resolves design rule violations after track assignment"),
            chunk(3, "the timing report window shows setup and hold slack per path"),
        ]
    }

    #[test]
    fn finds_relevant_chunk() {
        let chunks = corpus();
        let index = Bm25Index::build(&chunks);
        let hits = index.query("how is clock skew balanced?", 2);
        assert_eq!(hits[0].0, 1);
        let hits = index.query("setup and hold slack", 2);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        // "the" occurs in both documents (df = 2, low idf); "wirelength"
        // only in the second (df = 1, high idf).
        let chunks = vec![
            chunk(0, "the the the the common words"),
            chunk(1, "the wirelength optimization"),
        ];
        let index = Bm25Index::build(&chunks);
        let hits = index.query("the wirelength", 2);
        assert_eq!(hits[0].0, 1, "idf must favour the rare term");
    }

    #[test]
    fn no_match_returns_empty() {
        let index = Bm25Index::build(&corpus());
        assert!(index.query("zebra xylophone", 5).is_empty());
        assert!(index.query("clock", 0).is_empty());
    }

    #[test]
    fn empty_index_is_safe() {
        let index = Bm25Index::build(&[]);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert!(index.query("anything", 3).is_empty());
    }

    #[test]
    fn scores_descend_and_truncate() {
        let index = Bm25Index::build(&corpus());
        let hits = index.query("the clock timing report", 3);
        assert!(hits.len() <= 3);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_tiebreak() {
        let chunks = vec![chunk(0, "same words here"), chunk(1, "same words here")];
        let index = Bm25Index::build(&chunks);
        let hits = index.query("same words", 2);
        assert_eq!(hits[0].0, 0, "ties break toward the lower index");
    }
}

//! Documents and chunking.

/// A source document (a section of the synthetic EDA documentation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable document id.
    pub id: usize,
    /// Short title (used in chunk provenance).
    pub title: String,
    /// Full text.
    pub text: String,
}

impl Document {
    /// Creates a document.
    #[must_use]
    pub fn new(id: usize, title: &str, text: &str) -> Self {
        Document {
            id,
            title: title.to_string(),
            text: text.to_string(),
        }
    }
}

/// A retrievable chunk of a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentChunk {
    /// Id of the source document.
    pub doc_id: usize,
    /// Title of the source document.
    pub title: String,
    /// Chunk text.
    pub text: String,
}

/// Overlapping word-window chunker.
///
/// # Example
///
/// ```
/// use chipalign_rag::{Chunker, Document};
///
/// let doc = Document::new(0, "t", "one two three four five six seven eight");
/// let chunks = Chunker { max_words: 4, overlap: 1 }.chunk(&doc);
/// assert_eq!(chunks.len(), 3);
/// assert!(chunks[0].text.starts_with("one"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunker {
    /// Maximum words per chunk.
    pub max_words: usize,
    /// Words of overlap between consecutive chunks.
    pub overlap: usize,
}

impl Default for Chunker {
    fn default() -> Self {
        Chunker {
            max_words: 48,
            overlap: 8,
        }
    }
}

impl Chunker {
    /// Splits one document into chunks.
    ///
    /// # Panics
    ///
    /// Panics if `overlap >= max_words` (the window would not advance).
    #[must_use]
    pub fn chunk(&self, doc: &Document) -> Vec<DocumentChunk> {
        assert!(
            self.overlap < self.max_words,
            "chunk overlap must be smaller than the window"
        );
        let words: Vec<&str> = doc.text.split_whitespace().collect();
        if words.is_empty() {
            return Vec::new();
        }
        let stride = self.max_words - self.overlap;
        let mut chunks = Vec::new();
        let mut start = 0usize;
        loop {
            let end = (start + self.max_words).min(words.len());
            chunks.push(DocumentChunk {
                doc_id: doc.id,
                title: doc.title.clone(),
                text: words[start..end].join(" "),
            });
            if end == words.len() {
                break;
            }
            start += stride;
        }
        chunks
    }

    /// Chunks a whole corpus, preserving document order.
    #[must_use]
    pub fn chunk_all(&self, docs: &[Document]) -> Vec<DocumentChunk> {
        docs.iter().flat_map(|d| self.chunk(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_document_is_one_chunk() {
        let doc = Document::new(3, "t", "just a few words");
        let chunks = Chunker::default().chunk(&doc);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].doc_id, 3);
        assert_eq!(chunks[0].text, "just a few words");
    }

    #[test]
    fn empty_document_yields_nothing() {
        let doc = Document::new(0, "t", "   ");
        assert!(Chunker::default().chunk(&doc).is_empty());
    }

    #[test]
    fn chunks_overlap_and_cover() {
        let words: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let doc = Document::new(0, "t", &words.join(" "));
        let chunker = Chunker {
            max_words: 8,
            overlap: 2,
        };
        let chunks = chunker.chunk(&doc);
        // Every word appears in some chunk.
        for w in &words {
            assert!(
                chunks.iter().any(|c| c.text.split_whitespace().any(|x| x == w)),
                "word {w} lost"
            );
        }
        // Consecutive chunks share the overlap words.
        let first: Vec<&str> = chunks[0].text.split_whitespace().collect();
        let second: Vec<&str> = chunks[1].text.split_whitespace().collect();
        assert_eq!(&first[first.len() - 2..], &second[..2]);
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn degenerate_overlap_panics() {
        let doc = Document::new(0, "t", "a b c");
        let _ = Chunker {
            max_words: 4,
            overlap: 4,
        }
        .chunk(&doc);
    }

    #[test]
    fn chunk_all_concatenates() {
        let docs = vec![
            Document::new(0, "a", "first doc"),
            Document::new(1, "b", "second doc"),
        ];
        let chunks = Chunker::default().chunk_all(&docs);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].title, "b");
    }
}

//! Hashed TF-IDF embeddings with cosine retrieval — the deterministic
//! stand-in for the paper's *bge-large-en-v1.5* dense encoder.
//!
//! Each token hashes (FNV-1a) to one of `DIM` buckets with a ±1 sign bit,
//! weighted by `tf · idf`; vectors are L2-normalised so dot product equals
//! cosine similarity. This is the classic "hashing trick" encoder: far
//! weaker than a learned model, but monotone in lexical-semantic overlap on
//! the synthetic corpus, which is what the golden-vs-RAG-context comparison
//! needs.

use std::collections::HashMap;

use chipalign_eval::text::tokenize;

use crate::chunk::DocumentChunk;

/// Embedding dimensionality.
const DIM: usize = 256;

/// A cosine-similarity index over hashed TF-IDF chunk embeddings.
///
/// # Example
///
/// ```
/// use chipalign_rag::{Chunker, Document, EmbeddingIndex};
///
/// let docs = vec![
///     Document::new(0, "a", "the timing report shows slack"),
///     Document::new(1, "b", "power analysis measures switching"),
/// ];
/// let chunks = Chunker::default().chunk_all(&docs);
/// let index = EmbeddingIndex::build(&chunks);
/// let hits = index.query("where can I see slack?", 1);
/// assert_eq!(chunks[hits[0].0].doc_id, 0);
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingIndex {
    vectors: Vec<[f32; DIM]>,
    idf: HashMap<String, f64>,
    n_docs: usize,
}

impl EmbeddingIndex {
    /// Builds the index over a chunk corpus.
    #[must_use]
    pub fn build(chunks: &[DocumentChunk]) -> Self {
        let n_docs = chunks.len();
        let mut df: HashMap<String, usize> = HashMap::new();
        let tokenized: Vec<Vec<String>> =
            chunks.iter().map(|c| tokenize(&c.text)).collect();
        for tokens in &tokenized {
            let mut seen: Vec<&String> = tokens.iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let idf: HashMap<String, f64> = df
            .into_iter()
            .map(|(t, d)| {
                let idf = ((n_docs as f64 + 1.0) / (d as f64 + 1.0)).ln() + 1.0;
                (t, idf)
            })
            .collect();
        let vectors = tokenized
            .iter()
            .map(|tokens| embed_tokens(tokens, &idf))
            .collect();
        EmbeddingIndex {
            vectors,
            idf,
            n_docs,
        }
    }

    /// Number of indexed chunks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Embeds arbitrary text with the corpus IDF table.
    #[must_use]
    pub fn embed(&self, text: &str) -> [f32; DIM] {
        embed_tokens(&tokenize(text), &self.idf)
    }

    /// Returns the `top_k` chunks by cosine similarity as
    /// `(chunk_index, similarity)`, descending, ties toward lower index.
    /// Zero-similarity chunks are omitted.
    #[must_use]
    pub fn query(&self, query: &str, top_k: usize) -> Vec<(usize, f64)> {
        if top_k == 0 {
            return Vec::new();
        }
        let q = self.embed(query);
        let mut ranked: Vec<(usize, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let dot: f32 = q.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
                (i, f64::from(dot))
            })
            .filter(|(_, s)| *s > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top_k);
        ranked
    }
}

/// Hash a token to `(bucket, sign)`.
fn hash_token(token: &str) -> (usize, f32) {
    let mut hash = 0xcbf29ce484222325u64;
    for b in token.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    let bucket = (hash % DIM as u64) as usize;
    let sign = if (hash >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    (bucket, sign)
}

fn embed_tokens(tokens: &[String], idf: &HashMap<String, f64>) -> [f32; DIM] {
    let mut v = [0.0f32; DIM];
    let mut tf: HashMap<&String, usize> = HashMap::new();
    for t in tokens {
        *tf.entry(t).or_insert(0) += 1;
    }
    for (t, count) in tf {
        let (bucket, sign) = hash_token(t);
        let weight = idf.get(t).copied().unwrap_or(1.0);
        v[bucket] += sign * (count as f64 * weight) as f32;
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(doc_id: usize, text: &str) -> DocumentChunk {
        DocumentChunk {
            doc_id,
            title: format!("doc{doc_id}"),
            text: text.to_string(),
        }
    }

    #[test]
    fn identical_text_has_cosine_one() {
        let chunks = vec![chunk(0, "timing report setup slack")];
        let index = EmbeddingIndex::build(&chunks);
        let hits = index.query("timing report setup slack", 1);
        assert!((hits[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn retrieves_most_similar() {
        let chunks = vec![
            chunk(0, "global placement optimizes wirelength of cells"),
            chunk(1, "clock tree synthesis balances skew"),
            chunk(2, "routing resolves design rule violations"),
        ];
        let index = EmbeddingIndex::build(&chunks);
        let hits = index.query("balancing clock skew", 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let chunks = vec![chunk(0, "some words to embed here")];
        let index = EmbeddingIndex::build(&chunks);
        let v = index.embed("other words entirely different");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_query_embeds_to_zero() {
        let index = EmbeddingIndex::build(&[chunk(0, "words")]);
        let v = index.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(index.query("", 3).is_empty());
    }

    #[test]
    fn empty_index_is_safe() {
        let index = EmbeddingIndex::build(&[]);
        assert!(index.is_empty());
        assert!(index.query("anything", 3).is_empty());
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_token("wirelength"), hash_token("wirelength"));
        let chunks = vec![chunk(0, "alpha beta"), chunk(1, "gamma delta")];
        let a = EmbeddingIndex::build(&chunks).query("alpha", 2);
        let b = EmbeddingIndex::build(&chunks).query("alpha", 2);
        assert_eq!(a, b);
    }
}

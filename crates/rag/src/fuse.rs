//! The full retrieval pipeline: BM25 + embeddings fused by reciprocal-rank
//! fusion (the re-ranking stage of the paper's RAG setup).

use crate::bm25::Bm25Index;
use crate::chunk::DocumentChunk;
use crate::embed::EmbeddingIndex;

/// Reciprocal-rank-fusion constant (standard value from the RRF paper).
const RRF_K: f64 = 60.0;

/// How many candidates each first-stage retriever contributes to fusion.
const CANDIDATES_PER_STAGE: usize = 20;

/// A retrieved chunk with its fused score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredChunk {
    /// Index into the retriever's chunk corpus.
    pub chunk_index: usize,
    /// Source document id.
    pub doc_id: usize,
    /// Source document title.
    pub title: String,
    /// Chunk text.
    pub text: String,
    /// Fused RRF score.
    pub score: f64,
}

/// The two-stage retrieval pipeline.
///
/// # Example
///
/// ```
/// use chipalign_rag::{Chunker, Document, Retriever};
///
/// let docs = vec![
///     Document::new(0, "place", "global placement optimizes wirelength"),
///     Document::new(1, "cts", "clock tree synthesis balances skew"),
/// ];
/// let retriever = Retriever::build(Chunker::default().chunk_all(&docs));
/// let hits = retriever.retrieve("what optimizes wirelength?", 2);
/// assert_eq!(hits[0].doc_id, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Retriever {
    chunks: Vec<DocumentChunk>,
    bm25: Bm25Index,
    embeddings: EmbeddingIndex,
}

impl Retriever {
    /// Builds both indexes over the chunk corpus.
    #[must_use]
    pub fn build(chunks: Vec<DocumentChunk>) -> Self {
        let bm25 = Bm25Index::build(&chunks);
        let embeddings = EmbeddingIndex::build(&chunks);
        Retriever {
            chunks,
            bm25,
            embeddings,
        }
    }

    /// The underlying chunk corpus.
    #[must_use]
    pub fn chunks(&self) -> &[DocumentChunk] {
        &self.chunks
    }

    /// Retrieves the `top_k` chunks for a query by fusing BM25 and
    /// embedding rankings with RRF.
    #[must_use]
    pub fn retrieve(&self, query: &str, top_k: usize) -> Vec<ScoredChunk> {
        if top_k == 0 || self.chunks.is_empty() {
            return Vec::new();
        }
        let lexical = self.bm25.query(query, CANDIDATES_PER_STAGE);
        let dense = self.embeddings.query(query, CANDIDATES_PER_STAGE);
        let mut fused: std::collections::HashMap<usize, f64> =
            std::collections::HashMap::new();
        for (rank, (idx, _)) in lexical.iter().enumerate() {
            *fused.entry(*idx).or_insert(0.0) += 1.0 / (RRF_K + rank as f64 + 1.0);
        }
        for (rank, (idx, _)) in dense.iter().enumerate() {
            *fused.entry(*idx).or_insert(0.0) += 1.0 / (RRF_K + rank as f64 + 1.0);
        }
        let mut ranked: Vec<(usize, f64)> = fused.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top_k);
        ranked
            .into_iter()
            .map(|(idx, score)| {
                let c = &self.chunks[idx];
                ScoredChunk {
                    chunk_index: idx,
                    doc_id: c.doc_id,
                    title: c.title.clone(),
                    text: c.text.clone(),
                    score,
                }
            })
            .collect()
    }

    /// Retrieves and concatenates chunk texts into a single context string
    /// (the "RAG context" fed to models in Table 1).
    #[must_use]
    pub fn retrieve_context(&self, query: &str, top_k: usize) -> String {
        self.retrieve(query, top_k)
            .iter()
            .map(|c| c.text.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{Chunker, Document};

    fn retriever() -> Retriever {
        let docs = vec![
            Document::new(0, "placement", "global placement optimizes the wirelength of standard cells across the die"),
            Document::new(1, "cts", "clock tree synthesis balances skew across the clock distribution network"),
            Document::new(2, "routing", "detailed routing resolves design rule violations after track assignment"),
            Document::new(3, "timing", "the timing report window shows setup and hold slack for each path group"),
        ];
        Retriever::build(Chunker::default().chunk_all(&docs))
    }

    #[test]
    fn fused_retrieval_finds_relevant_doc() {
        let r = retriever();
        assert_eq!(r.retrieve("how to view setup and hold slack", 1)[0].doc_id, 3);
        assert_eq!(r.retrieve("balancing clock skew", 1)[0].doc_id, 1);
    }

    #[test]
    fn agreement_between_stages_boosts_rank() {
        // A chunk ranked #1 by both stages must beat one ranked #1 by only
        // one stage.
        let r = retriever();
        // Terms chosen to touch several documents so more than one chunk
        // scores, but the timing document dominates both stages.
        let hits = r.retrieve("the clock timing report shows slack across each path", 4);
        assert_eq!(hits[0].doc_id, 3);
        assert!(hits.len() >= 2, "query should touch multiple docs");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn top_k_zero_and_empty_corpus() {
        let r = retriever();
        assert!(r.retrieve("anything", 0).is_empty());
        let empty = Retriever::build(Vec::new());
        assert!(empty.retrieve("anything", 5).is_empty());
    }

    #[test]
    fn context_concatenation() {
        let r = retriever();
        let ctx = r.retrieve_context("clock skew", 2);
        assert!(ctx.contains("skew"));
        assert!(ctx.lines().count() <= 2);
    }

    #[test]
    fn retrieval_is_deterministic() {
        let r = retriever();
        let a = r.retrieve("routing violations", 3);
        let b = r.retrieve("routing violations", 3);
        assert_eq!(a, b);
    }
}

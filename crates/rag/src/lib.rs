//! Retrieval-augmented generation substrate.
//!
//! The paper's OpenROAD QA pipeline retrieves context with
//! *bge-large-en-v1.5* dense embeddings, *BM25* lexical retrieval, and a
//! *bge-reranker-large* re-ranking stage. The equivalent stack here:
//!
//! * [`Chunker`] — splits documents into overlapping word-window chunks.
//! * [`Bm25Index`] — Okapi BM25 lexical retrieval (`k1 = 1.2`, `b = 0.75`).
//! * [`EmbeddingIndex`] — hashed TF-IDF embeddings with cosine similarity,
//!   the deterministic stand-in for the dense bge encoder.
//! * [`Retriever`] — runs both retrievers and fuses their rankings with
//!   reciprocal-rank fusion (the re-ranking stage).
//!
//! # Example
//!
//! ```
//! use chipalign_rag::{Chunker, Document, Retriever};
//!
//! let docs = vec![
//!     Document::new(0, "timing", "Click the Timing icon to open the timing report."),
//!     Document::new(1, "power", "The power report shows switching activity."),
//! ];
//! let chunks = Chunker::default().chunk_all(&docs);
//! let retriever = Retriever::build(chunks);
//! let hits = retriever.retrieve("how do I open the timing report?", 1);
//! assert_eq!(hits[0].doc_id, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bm25;
mod chunk;
mod embed;
mod fuse;
pub mod metrics;

pub use bm25::Bm25Index;
pub use chunk::{Chunker, Document, DocumentChunk};
pub use embed::EmbeddingIndex;
pub use fuse::{Retriever, ScoredChunk};

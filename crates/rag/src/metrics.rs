//! Retrieval-quality metrics: recall@k, MRR, and hit-rate over a labelled
//! query set.
//!
//! The paper's Table 1 contrasts golden-context and RAG-context scores;
//! how much of that gap is the retriever's fault is answerable only with
//! retrieval metrics, which these utilities provide (used by the ablation
//! reporting and the retrieval tests).

use crate::fuse::Retriever;

/// One labelled retrieval query: the query text and the id of the document
/// that contains the answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelledQuery {
    /// Query text.
    pub query: String,
    /// The relevant document id.
    pub relevant_doc: usize,
}

/// Aggregate retrieval metrics over a query set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetrievalReport {
    /// Fraction of queries whose relevant document appears in the top-k.
    pub recall_at_k: f64,
    /// Mean reciprocal rank of the relevant document (0 when absent).
    pub mrr: f64,
    /// Number of queries evaluated.
    pub n_queries: usize,
    /// The k used for recall.
    pub k: usize,
}

/// Evaluates a retriever against labelled queries.
///
/// # Example
///
/// ```
/// use chipalign_rag::{Chunker, Document, Retriever};
/// use chipalign_rag::metrics::{evaluate_retriever, LabelledQuery};
///
/// let docs = vec![
///     Document::new(0, "place", "global placement optimizes wirelength"),
///     Document::new(1, "cts", "clock tree synthesis balances skew"),
/// ];
/// let retriever = Retriever::build(Chunker::default().chunk_all(&docs));
/// let queries = vec![LabelledQuery { query: "what balances skew?".into(), relevant_doc: 1 }];
/// let report = evaluate_retriever(&retriever, &queries, 2);
/// assert_eq!(report.recall_at_k, 1.0);
/// ```
#[must_use]
pub fn evaluate_retriever(
    retriever: &Retriever,
    queries: &[LabelledQuery],
    k: usize,
) -> RetrievalReport {
    if queries.is_empty() || k == 0 {
        return RetrievalReport {
            k,
            ..RetrievalReport::default()
        };
    }
    let mut hits = 0usize;
    let mut rr_sum = 0.0f64;
    for q in queries {
        let results = retriever.retrieve(&q.query, k);
        if let Some(rank) = results.iter().position(|r| r.doc_id == q.relevant_doc) {
            hits += 1;
            rr_sum += 1.0 / (rank as f64 + 1.0);
        }
    }
    RetrievalReport {
        recall_at_k: hits as f64 / queries.len() as f64,
        mrr: rr_sum / queries.len() as f64,
        n_queries: queries.len(),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{Chunker, Document};

    fn retriever() -> Retriever {
        let docs = vec![
            Document::new(0, "place", "global placement optimizes the wirelength"),
            Document::new(1, "cts", "clock tree synthesis balances skew"),
            Document::new(2, "route", "detailed routing fixes rule violations"),
        ];
        Retriever::build(Chunker::default().chunk_all(&docs))
    }

    fn queries() -> Vec<LabelledQuery> {
        vec![
            LabelledQuery {
                query: "what optimizes wirelength?".into(),
                relevant_doc: 0,
            },
            LabelledQuery {
                query: "what balances clock skew?".into(),
                relevant_doc: 1,
            },
            LabelledQuery {
                query: "who fixes rule violations?".into(),
                relevant_doc: 2,
            },
        ]
    }

    #[test]
    fn perfect_retrieval_on_easy_corpus() {
        let report = evaluate_retriever(&retriever(), &queries(), 2);
        assert_eq!(report.recall_at_k, 1.0);
        assert!(report.mrr > 0.99, "relevant doc should rank first: {report:?}");
        assert_eq!(report.n_queries, 3);
    }

    #[test]
    fn recall_shrinks_with_k_one_on_hard_query() {
        let mixed = vec![LabelledQuery {
            query: "the placement of the clock".into(),
            relevant_doc: 1,
        }];
        let r1 = evaluate_retriever(&retriever(), &mixed, 1);
        let r3 = evaluate_retriever(&retriever(), &mixed, 3);
        assert!(r3.recall_at_k >= r1.recall_at_k);
    }

    #[test]
    fn mrr_reflects_rank() {
        // A query matching doc 0 strongly and labelled with doc 2 weakly
        // present should have mrr < 1 when it ranks below the top.
        let q = vec![LabelledQuery {
            query: "wirelength routing".into(),
            relevant_doc: 2,
        }];
        let report = evaluate_retriever(&retriever(), &q, 3);
        if report.recall_at_k > 0.0 {
            assert!(report.mrr <= 1.0);
        }
    }

    #[test]
    fn empty_inputs_are_safe() {
        let report = evaluate_retriever(&retriever(), &[], 3);
        assert_eq!(report.n_queries, 0);
        assert_eq!(report.recall_at_k, 0.0);
        let report = evaluate_retriever(&retriever(), &queries(), 0);
        assert_eq!(report.recall_at_k, 0.0);
    }

    #[test]
    fn missing_document_scores_zero() {
        let q = vec![LabelledQuery {
            query: "entirely unrelated zebra question".into(),
            relevant_doc: 0,
        }];
        let report = evaluate_retriever(&retriever(), &q, 3);
        assert_eq!(report.mrr, 0.0);
    }
}

//! `chipalign-router`: the fleet front end.
//!
//! Speaks the same newline-JSON protocol as a single `chipalign-serve`
//! replica, so any existing client points here unchanged; behind it,
//! sessions spread across replicas via prefix-affinity consistent hashing
//! with health-checked failover.
//!
//! ```text
//! # Route over two already-running replicas:
//! chipalign-router --listen 127.0.0.1:7400 \
//!     --replica 127.0.0.1:7401 --replica 127.0.0.1:7402
//!
//! # Self-contained demo fleet: spawn 3 in-process replicas and route:
//! chipalign-router --spawn 3
//! ```
//!
//! Flags: `--listen ADDR` (default `127.0.0.1:7400`), `--replica ADDR`
//! (repeatable), `--spawn N` (in-process smoke-quality replicas on
//! ephemeral ports), `--random` (locality-free routing baseline),
//! `--vnodes N`, `--probe-interval-ms MS`, `--request-timeout-ms MS`,
//! `--seed N`.

use std::time::Duration;

use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_router::{RouterConfig, RouterServer, RoutingMode};
use chipalign_serve::{ModelRegistry, SchedulerConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chipalign-router [--listen ADDR] [--replica ADDR]... [--spawn N] \
         [--random] [--vnodes N] [--probe-interval-ms MS] [--request-timeout-ms MS] [--seed N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("invalid or missing value for {flag}");
            usage();
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = RouterConfig {
        listen: "127.0.0.1:7400".to_string(),
        ..RouterConfig::default()
    };
    let mut replicas: Vec<String> = Vec::new();
    let mut spawn = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => cfg.listen = parse("--listen", args.next()),
            "--replica" => replicas.push(parse("--replica", args.next())),
            "--spawn" => spawn = parse("--spawn", args.next()),
            "--random" => cfg.routing = RoutingMode::Random,
            "--vnodes" => cfg.vnodes = parse("--vnodes", args.next()),
            "--probe-interval-ms" => {
                cfg.probe_interval =
                    Duration::from_millis(parse("--probe-interval-ms", args.next()));
            }
            "--request-timeout-ms" => {
                cfg.request_timeout = Some(Duration::from_millis(parse(
                    "--request-timeout-ms",
                    args.next(),
                )));
            }
            "--seed" => cfg.seed = parse("--seed", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    // In-process replicas for a self-contained fleet: each gets its own
    // registry over an identically-seeded zoo, so every replica
    // materializes byte-identical models — the property that makes
    // cross-replica failover transcript-safe.
    let mut spawned: Vec<Server> = Vec::with_capacity(spawn);
    for i in 0..spawn {
        let zoo = Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 2025,
            cache_dir: None,
        })?;
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                scheduler: SchedulerConfig {
                    workers: 2,
                    max_sessions: 16,
                    slice_tokens: 8,
                    max_batch: 4,
                    ..SchedulerConfig::default()
                },
                instance_tag: Some(format!("r{i}")),
                ..ServerConfig::default()
            },
            ModelRegistry::new(zoo),
        )?;
        let addr = server.local_addr().to_string();
        println!("replica r{i} on {addr}");
        replicas.push(addr);
        spawned.push(server);
    }

    if replicas.is_empty() {
        eprintln!("no replicas: pass --replica ADDR (repeatable) and/or --spawn N");
        usage();
    }

    let mode = cfg.routing;
    let front = RouterServer::bind(cfg, replicas)?;
    println!(
        "chipalign-router on {} ({} replicas, {mode:?} routing)",
        front.local_addr(),
        front.router().fleet_status().len()
    );

    // Serve until killed. The accept loop and prober run on their own
    // threads; park this one.
    loop {
        std::thread::park();
    }
}

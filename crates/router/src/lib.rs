//! Fleet-tier serving for the ChipAlign reproduction: a prefix-affinity
//! router over `chipalign-serve` replicas.
//!
//! One replica serves geodesic merges from one process
//! (`chipalign-serve`); this crate scales that to a *fleet*. The
//! `chipalign-router` binary is a TCP front end speaking the identical
//! newline-JSON protocol, so clients are oblivious — but behind it,
//! sessions spread across N replicas via consistent hashing keyed on
//! `(model spec, prompt-prefix hash)`. That key is the point: merge
//! requests for the same `merge:<chip>+<instruct>@<λ>` with a shared
//! prompt scaffold land on the replica where that merge is already
//! materialized and the scaffold's KV prefix is already hot.
//!
//! Around the ring sit the fault-tolerance mechanics this crate exists
//! for:
//!
//! - **Health-checked failover** ([`router`]): a background prober keeps a
//!   three-state view of each replica (`Healthy` / `Degraded` / `Down`);
//!   per-request timeouts and dropped connections fail over to the next
//!   ring candidate under the jittered [`chipalign_serve::RetryPolicy`]
//!   backoff schedule. Deterministic decoding makes the retry
//!   transcript-safe.
//! - **Load-aware spill**: a replica answering `overloaded` is marked
//!   `Degraded` and its traffic spills to ring neighbors until it
//!   recovers — the ring makes even spilled traffic land consistently.
//! - **Drain-aware rebalancing**: the v3 `drain` verb removes a replica
//!   from the candidate set without cancelling its in-flight sessions;
//!   its ring ranges fall to the next candidates while the survivors'
//!   warm caches stay put.
//!
//! The fleet chaos suite (`tests/fleet_chaos.rs`, behind `fault-inject`)
//! kills whole replicas mid-decode and asserts every affected session is
//! either answered byte-identically after failover or fails with a
//! structured retryable error. `bench_fleet` (in `chipalign-bench`)
//! measures throughput scaling and prefix-hit preservation against a
//! random-routing baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod metrics;
pub mod ring;
pub mod router;
pub mod server;

pub use metrics::{RouterMetrics, RouterMetricsSnapshot};
pub use ring::{affinity_key, HashRing};
pub use router::{Router, RouterConfig, RoutingMode};
pub use server::RouterServer;

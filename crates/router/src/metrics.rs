//! Router-side counters: routing decisions, failovers, spills, probes.
//!
//! Same discipline as `serve::metrics`: relaxed atomics, no locks on the
//! request path. These count *routing* events; per-replica serving metrics
//! stay on the replicas and are aggregated over the wire with
//! [`chipalign_serve::MetricsSnapshot::absorb`].

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Lock-free router counters.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Generate requests the router accepted for routing.
    routed: AtomicU64,
    /// Requests answered by their first-choice (affinity) replica.
    primary_hits: AtomicU64,
    /// Attempts moved to another replica after a transport fault or
    /// retryable verdict.
    failovers: AtomicU64,
    /// Attempts moved because a replica reported `overloaded`; a subset of
    /// the work `failovers` also counts.
    spills: AtomicU64,
    /// Requests that exhausted every candidate and returned an error.
    exhausted: AtomicU64,
    /// Health probes that failed.
    probe_failures: AtomicU64,
    /// Replica state transitions into `Down`.
    marks_down: AtomicU64,
    /// Replica state transitions into `Degraded`.
    marks_degraded: AtomicU64,
}

impl RouterMetrics {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        RouterMetrics::default()
    }

    /// Records a request accepted for routing.
    pub fn on_routed(&self) {
        self.routed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered by its affinity home.
    pub fn on_primary_hit(&self) {
        self.primary_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an attempt moved to the next ring candidate.
    pub fn on_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an overload spill (also a failover).
    pub fn on_spill(&self) {
        self.spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request that ran out of candidates.
    pub fn on_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed health probe.
    pub fn on_probe_failure(&self) {
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replica transitioning into `Down`.
    pub fn on_mark_down(&self) {
        self.marks_down.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a replica transitioning into `Degraded`.
    pub fn on_mark_degraded(&self) {
        self.marks_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time view.
    #[must_use]
    pub fn snapshot(&self) -> RouterMetricsSnapshot {
        RouterMetricsSnapshot {
            routed: self.routed.load(Ordering::Relaxed),
            primary_hits: self.primary_hits.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            probe_failures: self.probe_failures.load(Ordering::Relaxed),
            marks_down: self.marks_down.load(Ordering::Relaxed),
            marks_degraded: self.marks_degraded.load(Ordering::Relaxed),
        }
    }
}

/// Serializable view of [`RouterMetrics`], reported by `bench_fleet`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouterMetricsSnapshot {
    /// Generate requests accepted for routing.
    pub routed: u64,
    /// Requests answered by their affinity home.
    pub primary_hits: u64,
    /// Attempts moved to another replica.
    pub failovers: u64,
    /// Overload spills (subset of failovers).
    pub spills: u64,
    /// Requests that exhausted every candidate.
    pub exhausted: u64,
    /// Failed health probes.
    pub probe_failures: u64,
    /// Transitions into `Down`.
    pub marks_down: u64,
    /// Transitions into `Degraded`.
    pub marks_degraded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flow_into_snapshot_independently() {
        let m = RouterMetrics::new();
        m.on_routed();
        m.on_routed();
        m.on_primary_hit();
        m.on_failover();
        m.on_spill();
        m.on_exhausted();
        m.on_probe_failure();
        m.on_mark_down();
        m.on_mark_degraded();
        let s = m.snapshot();
        assert_eq!(s.routed, 2);
        assert_eq!(s.primary_hits, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.spills, 1);
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.probe_failures, 1);
        assert_eq!(s.marks_down, 1);
        assert_eq!(s.marks_degraded, 1);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: RouterMetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.routed, 2);
    }
}

//! Consistent hashing: the affinity key and the replica ring.
//!
//! Routing is keyed on `(model spec, prompt prefix)` so that requests
//! sharing a merge and a prompt scaffold land on the same replica — where
//! that `merge:<chip>+<instruct>@<λ>` is already materialized and the
//! scaffold's KV prefix is already cached. A ring of virtual nodes keeps
//! the mapping stable under membership change: adding or draining one
//! replica only remaps the keys in its ring ranges, so the rest of the
//! fleet keeps its warm caches.
//!
//! The ring also defines the *failover order*: [`HashRing::candidates`]
//! walks clockwise from the key's position, yielding every replica once.
//! The first candidate is the affinity home; the second is where spilled
//! or failed-over traffic for that key consistently lands (so even the
//! fallback replica warms up a coherent working set).

/// FNV-1a, 64-bit. A tiny, dependency-free, well-distributed hash for
/// short routing keys; stability across runs matters (routing tables must
/// be reproducible), which rules out `std`'s randomized `DefaultHasher`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The affinity key for a request: model spec plus the first
/// `prefix_chars` characters of the prompt.
///
/// Truncating the prompt is what makes the key an *affinity* key rather
/// than a request hash: `"Q:describe the timing path 17;A:"` and
/// `"Q:describe the timing path 99;A:"` share their first 16 characters,
/// so both route to the replica whose prefix cache already holds the
/// shared scaffold. `prefix_chars = 0` keys on the model alone.
#[must_use]
pub fn affinity_key(model: &str, prompt: &str, prefix_chars: usize) -> u64 {
    let boundary = prompt
        .char_indices()
        .nth(prefix_chars)
        .map_or(prompt.len(), |(i, _)| i);
    let mut bytes = Vec::with_capacity(model.len() + 1 + boundary);
    bytes.extend_from_slice(model.as_bytes());
    bytes.push(0); // separator: ("ab", "c") must not collide with ("a", "bc")
    bytes.extend_from_slice(prompt[..boundary].as_bytes());
    fnv1a(&bytes)
}

/// A consistent-hash ring over replica indices, with virtual nodes.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(point, replica index)`, sorted by point. Virtual nodes give each
    /// replica many points, evening out range sizes.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring over `replicas` names, `vnodes` virtual nodes each.
    /// Names must be distinct; the replica *index* into the original slice
    /// is what the ring yields.
    #[must_use]
    pub fn build(replicas: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas.len() * vnodes);
        for (idx, name) in replicas.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{name}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// Whether the ring has no points (no replicas).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Every distinct replica index in ring order starting clockwise from
    /// `key`'s position. The first entry is the key's affinity home; the
    /// rest are its failover candidates in consistent order.
    #[must_use]
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut seen = Vec::new();
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !seen.contains(&idx) {
                seen.push(idx);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn candidates_cover_every_replica_exactly_once() {
        let ring = HashRing::build(&names(5), 16);
        for key in [0u64, 1, u64::MAX, fnv1a(b"some key")] {
            let mut c = ring.candidates(key);
            assert_eq!(c.len(), 5);
            c.sort_unstable();
            assert_eq!(c, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn same_key_same_candidate_order() {
        let ring = HashRing::build(&names(4), 32);
        let key = affinity_key("merge:a+b@0.6", "Q:describe the timing path;A:", 16);
        assert_eq!(ring.candidates(key), ring.candidates(key));
    }

    #[test]
    fn shared_prefixes_share_a_home() {
        let ring = HashRing::build(&names(4), 32);
        let a = affinity_key("m", "Q:describe the timing path 17;A:", 16);
        let b = affinity_key("m", "Q:describe the timing path 99;A:", 16);
        assert_eq!(a, b, "16-char prefixes match, so the keys must too");
        assert_eq!(ring.candidates(a)[0], ring.candidates(b)[0]);
        // Distinct scaffolds may differ (and with enough keys, must).
        let c = affinity_key("m", "Summarize the CDC report:", 16);
        assert_ne!(a, c);
    }

    #[test]
    fn different_models_get_different_keys() {
        let a = affinity_key("merge:a+b@0.4", "Q:x;A:", 16);
        let b = affinity_key("merge:a+b@0.6", "Q:x;A:", 16);
        assert_ne!(a, b);
        // The separator keeps (model, prompt) splits unambiguous.
        assert_ne!(affinity_key("ab", "c", 16), affinity_key("a", "bc", 16));
    }

    #[test]
    fn membership_change_remaps_only_the_lost_ranges() {
        // Consistent hashing's defining property: removing one replica of
        // four must not move keys between the surviving three.
        let four = HashRing::build(&names(4), 64);
        let three = HashRing::build(&names(3), 64);
        let mut moved = 0usize;
        let total = 1000usize;
        for i in 0..total {
            let key = fnv1a(format!("prompt-{i}").as_bytes());
            let before = four.candidates(key)[0];
            let after = three.candidates(key)[0];
            if before < 3 {
                assert_eq!(before, after, "key {i}: survivor-homed keys must not move");
            } else {
                moved += 1;
            }
        }
        // Roughly a quarter of the keyspace belonged to the removed node.
        assert!(moved > total / 8 && moved < total / 2, "moved {moved}");
    }

    #[test]
    fn empty_ring_yields_no_candidates() {
        let ring = HashRing::build(&[], 16);
        assert!(ring.is_empty());
        assert!(ring.candidates(42).is_empty());
    }

    #[test]
    fn prefix_chars_respects_utf8_boundaries() {
        // Multi-byte characters must not split; nth char boundary is used.
        let k = affinity_key("m", "Ω≈ç√∫˜µ≤≥", 4);
        let k2 = affinity_key("m", "Ω≈ç√XXXX", 4);
        assert_eq!(k, k2, "first four chars agree");
    }
}

//! The routing core: replica table, health states, and the failover loop.
//!
//! [`Router`] owns the fleet table — every replica's address, health
//! state, and in-flight gauge — plus the consistent-hash ring over it.
//! Routing a generation walks the ring candidates for the request's
//! affinity key in health order (Healthy, then Degraded, then Down as a
//! last resort; Draining never), with jittered exponential backoff between
//! attempts reusing the client [`RetryPolicy`] schedule.
//!
//! Failover is transcript-safe by construction: decoding is deterministic
//! for a given (model, prompt, config, seed), so re-running a request on
//! another replica reproduces byte-identical output. The worst cost of a
//! duplicated attempt (e.g. after a per-request timeout on a replica that
//! was merely slow) is wasted compute, never a corrupted transcript. The
//! fleet chaos suite asserts exactly this under replica kills.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use chipalign_serve::protocol::{
    self, LoadedModel, ReplicaHealth, ReplicaStatus, Request, Response,
};
use chipalign_serve::{
    ErrorCode, GenerateRequest, Generation, MetricsSnapshot, RetryPolicy, ServeError,
};
use chipalign_tensor::rng::Pcg32;

use crate::metrics::RouterMetrics;
use crate::ring::{affinity_key, HashRing};

/// How candidate replicas are ordered for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Consistent-hash ring order keyed on (model, prompt prefix): merge
    /// and prefix-KV locality. The default.
    Affinity,
    /// A seeded random order per request. Exists as the locality-free
    /// baseline `bench_fleet` compares against; failover and health
    /// handling work identically.
    Random,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address the router's own TCP front end binds; port 0 for ephemeral.
    pub listen: String,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Prompt characters (not bytes) hashed into the affinity key.
    pub affinity_chars: usize,
    /// Candidate ordering strategy.
    pub routing: RoutingMode,
    /// How often the health prober pings every replica.
    pub probe_interval: Duration,
    /// Connect + read timeout for one health probe.
    pub probe_timeout: Duration,
    /// Consecutive failures (probes or routed requests) after which a
    /// replica is marked `Down`.
    pub down_after: u32,
    /// Connect timeout for one routed attempt.
    pub connect_timeout: Duration,
    /// Read timeout for one routed attempt: how long the router waits for
    /// a replica's reply before failing over. `None` waits forever (the
    /// kill-detection path then relies on the replica's own structured
    /// `shutting_down` replies and dropped connections).
    pub request_timeout: Option<Duration>,
    /// Backoff schedule between failover attempts. `max_attempts` bounds
    /// how many replicas are tried per request (clamped to fleet size).
    pub failover: RetryPolicy,
    /// Seed for backoff jitter and `Random` routing order.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listen: "127.0.0.1:0".to_string(),
            vnodes: 32,
            affinity_chars: 16,
            routing: RoutingMode::Affinity,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            down_after: 2,
            connect_timeout: Duration::from_millis(250),
            request_timeout: None,
            failover: RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 10,
                max_delay_ms: 500,
                jitter: 0.5,
            },
            seed: 0,
        }
    }
}

/// One replica's routing state.
#[derive(Debug)]
struct Replica {
    addr: String,
    state: ReplicaHealth,
    consecutive_failures: u32,
    /// Requests currently in flight against this replica. Shared with the
    /// attempt path so the fleet lock is never held across I/O.
    inflight: Arc<AtomicU64>,
}

/// The fleet table plus its ring, guarded together so candidate order and
/// health state are always read consistently.
#[derive(Debug)]
struct Fleet {
    replicas: Vec<Replica>,
    ring: HashRing,
}

/// One candidate attempt, snapshotted out of the fleet lock.
#[derive(Debug, Clone)]
struct Candidate {
    index: usize,
    addr: String,
    inflight: Arc<AtomicU64>,
}

/// The prefix-affinity fleet router.
#[derive(Debug)]
pub struct Router {
    cfg: RouterConfig,
    fleet: Mutex<Fleet>,
    metrics: Arc<RouterMetrics>,
    rng: Mutex<Pcg32>,
}

impl Router {
    /// Builds a router over `replicas` (addresses like `"127.0.0.1:7001"`).
    #[must_use]
    pub fn new(cfg: RouterConfig, replicas: Vec<String>) -> Self {
        let ring = HashRing::build(&replicas, cfg.vnodes);
        let table = replicas
            .into_iter()
            .map(|addr| Replica {
                addr,
                state: ReplicaHealth::Healthy,
                consecutive_failures: 0,
                inflight: Arc::new(AtomicU64::new(0)),
            })
            .collect();
        let seed = cfg.seed;
        Router {
            cfg,
            fleet: Mutex::new(Fleet {
                replicas: table,
                ring,
            }),
            metrics: Arc::new(RouterMetrics::new()),
            rng: Mutex::new(Pcg32::seed(seed).derive(0x40ad)),
        }
    }

    /// The router's own counters.
    #[must_use]
    pub fn metrics(&self) -> Arc<RouterMetrics> {
        Arc::clone(&self.metrics)
    }

    fn fleet(&self) -> std::sync::MutexGuard<'_, Fleet> {
        self.fleet.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn rng(&self) -> std::sync::MutexGuard<'_, Pcg32> {
        self.rng.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-replica status, in registration order.
    #[must_use]
    pub fn fleet_status(&self) -> Vec<ReplicaStatus> {
        self.fleet()
            .replicas
            .iter()
            .map(|r| ReplicaStatus {
                addr: r.addr.clone(),
                state: r.state,
                inflight: r.inflight.load(Ordering::Relaxed),
                consecutive_failures: r.consecutive_failures,
            })
            .collect()
    }

    /// Marks `addr` draining: it finishes in-flight sessions (the router
    /// never cancels them) but receives no new ones, and its ring ranges
    /// fall to the next candidates. Returns whether the replica was known.
    /// Draining is sticky — health probes keep running but cannot
    /// resurrect a draining replica into the candidate set.
    pub fn drain(&self, addr: &str) -> bool {
        let mut fleet = self.fleet();
        match fleet.replicas.iter_mut().find(|r| r.addr == addr) {
            Some(r) => {
                r.state = ReplicaHealth::Draining;
                true
            }
            None => false,
        }
    }

    /// Candidate replicas for `req`, best first: ring (or random) order,
    /// stably partitioned Healthy → Degraded → Down. Draining replicas are
    /// excluded entirely. The stable partition preserves ring order inside
    /// each health class, so a degraded affinity home is still preferred
    /// over other degraded replicas.
    fn candidates(&self, req: &GenerateRequest) -> Vec<Candidate> {
        let fleet = self.fleet();
        let order: Vec<usize> = match self.cfg.routing {
            RoutingMode::Affinity => {
                let key = affinity_key(&req.model, &req.prompt, self.cfg.affinity_chars);
                fleet.ring.candidates(key)
            }
            RoutingMode::Random => {
                let mut order: Vec<usize> = (0..fleet.replicas.len()).collect();
                self.rng().shuffle(&mut order);
                order
            }
        };
        let class = |state: ReplicaHealth| match state {
            ReplicaHealth::Healthy => 0u8,
            ReplicaHealth::Degraded => 1,
            ReplicaHealth::Down => 2,
            ReplicaHealth::Draining => 3,
        };
        let mut ranked: Vec<(u8, usize, Candidate)> = order
            .into_iter()
            .enumerate()
            .filter_map(|(pos, index)| {
                let r = &fleet.replicas[index];
                (r.state != ReplicaHealth::Draining).then(|| {
                    (
                        class(r.state),
                        pos,
                        Candidate {
                            index,
                            addr: r.addr.clone(),
                            inflight: Arc::clone(&r.inflight),
                        },
                    )
                })
            })
            .collect();
        ranked.sort_by_key(|&(health, pos, _)| (health, pos));
        ranked.into_iter().map(|(_, _, c)| c).collect()
    }

    /// Records a successful exchange with replica `index`.
    fn record_success(&self, index: usize) {
        let mut fleet = self.fleet();
        if let Some(r) = fleet.replicas.get_mut(index) {
            r.consecutive_failures = 0;
            if r.state != ReplicaHealth::Draining {
                r.state = ReplicaHealth::Healthy;
            }
        }
    }

    /// Records a transport-class failure against replica `index`; past the
    /// threshold the replica goes `Down`.
    fn record_failure(&self, index: usize) {
        let mut fleet = self.fleet();
        if let Some(r) = fleet.replicas.get_mut(index) {
            r.consecutive_failures = r.consecutive_failures.saturating_add(1);
            if r.state == ReplicaHealth::Draining {
                return;
            }
            if r.consecutive_failures >= self.cfg.down_after {
                if r.state != ReplicaHealth::Down {
                    self.metrics.on_mark_down();
                }
                r.state = ReplicaHealth::Down;
            } else if r.state == ReplicaHealth::Healthy {
                self.metrics.on_mark_degraded();
                r.state = ReplicaHealth::Degraded;
            }
        }
    }

    /// Marks replica `index` Degraded (saturation, not death): it keeps
    /// its probe record but drops to the back of every candidate list
    /// until a success or probe clears it.
    fn mark_degraded(&self, index: usize) {
        let mut fleet = self.fleet();
        if let Some(r) = fleet.replicas.get_mut(index) {
            if r.state == ReplicaHealth::Healthy {
                self.metrics.on_mark_degraded();
                r.state = ReplicaHealth::Degraded;
            }
        }
    }

    /// Routes one generation with health-ordered failover.
    ///
    /// The attempt budget is `failover.max_attempts`, clamped to the
    /// number of eligible candidates; `retry_attempt` carries the attempt
    /// index so replicas count retry traffic. Structured verdicts about
    /// the request itself (`bad_request`, `unknown_model`,
    /// `deadline_exceeded`) return immediately; everything else — dropped
    /// connections, timeouts, `overloaded` spills, `shutting_down`,
    /// `internal` — moves to the next ring candidate after a jittered
    /// backoff.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's error once every candidate (or the
    /// attempt budget) is exhausted, or the fatal verdict immediately.
    pub fn generate(&self, req: &GenerateRequest) -> Result<Generation, ServeError> {
        self.metrics.on_routed();
        let candidates = self.candidates(req);
        if candidates.is_empty() {
            self.metrics.on_exhausted();
            return Err(ServeError::ShuttingDown);
        }
        let budget = (self.cfg.failover.max_attempts.max(1) as usize).min(candidates.len());
        let mut last_err: Option<ServeError> = None;
        for (attempt, candidate) in candidates.into_iter().take(budget).enumerate() {
            if attempt > 0 {
                let delay = {
                    let mut rng = self.rng();
                    self.cfg.failover.delay(attempt as u32, &mut rng)
                };
                std::thread::sleep(delay);
                self.metrics.on_failover();
            }
            match self.try_replica(&candidate, req, attempt as u32) {
                Ok(generation) => {
                    self.record_success(candidate.index);
                    if attempt == 0 {
                        self.metrics.on_primary_hit();
                    }
                    return Ok(generation);
                }
                Err(e) => {
                    match classify(&e) {
                        AttemptVerdict::Fatal => return Err(e),
                        AttemptVerdict::Spill => {
                            self.metrics.on_spill();
                            self.mark_degraded(candidate.index);
                        }
                        AttemptVerdict::Transport => self.record_failure(candidate.index),
                        AttemptVerdict::Retryable => {}
                    }
                    last_err = Some(e);
                }
            }
        }
        self.metrics.on_exhausted();
        Err(last_err.unwrap_or(ServeError::ShuttingDown))
    }

    /// One attempt against one replica: connect with a timeout, send the
    /// request (tagged with its attempt index), wait for the reply under
    /// the per-request read timeout.
    fn try_replica(
        &self,
        candidate: &Candidate,
        req: &GenerateRequest,
        attempt: u32,
    ) -> Result<Generation, ServeError> {
        candidate.inflight.fetch_add(1, Ordering::Relaxed);
        let result = self.exchange(candidate, req, attempt);
        candidate.inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn exchange(
        &self,
        candidate: &Candidate,
        req: &GenerateRequest,
        attempt: u32,
    ) -> Result<Generation, ServeError> {
        let stream = connect_timeout(&candidate.addr, self.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.cfg.request_timeout)?;
        let mut writer = stream.try_clone()?;
        let mut reader = std::io::BufReader::new(stream);
        let mut routed = req.clone();
        routed.retry_attempt = attempt;
        protocol::write_line(&mut writer, &Request::Generate(routed))?;
        let mut line = String::new();
        let n = std::io::BufRead::read_line(&mut reader, &mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "replica closed the connection",
            )));
        }
        match protocol::parse_line::<Response>(&line)? {
            Response::Generation(g) => Ok(g),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(ServeError::Protocol {
                detail: format!("unexpected response variant: {other:?}"),
            }),
        }
    }

    /// One probe pass over the whole fleet: ping every replica (draining
    /// ones included, to keep their failure counters honest), promote on
    /// success, count toward `Down` on failure.
    pub fn probe_once(&self) {
        let targets: Vec<(usize, String)> = self
            .fleet()
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.addr.clone()))
            .collect();
        for (index, addr) in targets {
            match self.probe(&addr) {
                Ok(()) => self.record_success(index),
                Err(_) => {
                    self.metrics.on_probe_failure();
                    self.record_failure(index);
                }
            }
        }
    }

    fn probe(&self, addr: &str) -> Result<(), ServeError> {
        let stream = connect_timeout(addr, self.cfg.probe_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.cfg.probe_timeout))?;
        let mut writer = stream.try_clone()?;
        let mut reader = std::io::BufReader::new(stream);
        protocol::write_line(&mut writer, &Request::Ping)?;
        let mut line = String::new();
        let n = std::io::BufRead::read_line(&mut reader, &mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "replica closed the connection",
            )));
        }
        match protocol::parse_line::<Response>(&line)? {
            Response::Pong { .. } => Ok(()),
            other => Err(ServeError::Protocol {
                detail: format!("unexpected ping reply: {other:?}"),
            }),
        }
    }

    /// Fan-out aggregate of every non-down replica's metrics snapshot
    /// (plus nothing of the router's own — see [`Router::metrics`]).
    /// Replicas that fail to answer are skipped; fleet counters are the
    /// sum over the ones that did.
    #[must_use]
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        let mut aggregate = MetricsSnapshot::default();
        for (_, addr) in self.reachable_replicas() {
            if let Ok(snap) = self
                .admin_request(&addr, &Request::Metrics)
                .and_then(|r| match r {
                    Response::Metrics(snap) => Ok(snap),
                    other => Err(ServeError::Protocol {
                        detail: format!("unexpected metrics reply: {other:?}"),
                    }),
                })
            {
                aggregate.absorb(&snap);
            }
        }
        aggregate
    }

    /// Union of every reachable replica's loaded models and zoo slugs.
    #[must_use]
    pub fn fleet_models(&self) -> (Vec<String>, Vec<String>) {
        let (loaded, zoo, _) = self.fleet_models_detailed();
        (loaded, zoo)
    }

    /// Like [`Router::fleet_models`], plus the per-model detail rows
    /// (dtype, weight bytes) deduplicated by model key across replicas.
    #[must_use]
    pub fn fleet_models_detailed(&self) -> (Vec<String>, Vec<String>, Vec<LoadedModel>) {
        let mut loaded: Vec<String> = Vec::new();
        let mut zoo: Vec<String> = Vec::new();
        let mut details: Vec<LoadedModel> = Vec::new();
        for (_, addr) in self.reachable_replicas() {
            if let Ok(Response::Models {
                loaded: l,
                zoo: z,
                models,
            }) = self.admin_request(&addr, &Request::Models)
            {
                for m in l {
                    if !loaded.contains(&m) {
                        loaded.push(m);
                    }
                }
                for m in z {
                    if !zoo.contains(&m) {
                        zoo.push(m);
                    }
                }
                for d in models {
                    if !details.iter().any(|have| have.model == d.model) {
                        details.push(d);
                    }
                }
            }
        }
        (loaded, zoo, details)
    }

    /// Broadcasts a `load` to every reachable replica so the model (often
    /// a geodesic merge) is materialized fleet-wide before traffic lands.
    ///
    /// # Errors
    ///
    /// Returns the first per-replica error if *no* replica loaded the
    /// model; succeeds with the canonical key if at least one did.
    pub fn fleet_load(&self, model: &str) -> Result<String, ServeError> {
        let req = Request::Load {
            model: model.to_string(),
        };
        let mut key: Option<String> = None;
        let mut first_err: Option<ServeError> = None;
        for (_, addr) in self.reachable_replicas() {
            match self.admin_request(&addr, &req) {
                Ok(Response::Loaded { model }) => key = Some(model),
                Ok(Response::Error(w)) => {
                    first_err.get_or_insert(ServeError::Remote(w));
                }
                Ok(other) => {
                    first_err.get_or_insert(ServeError::Protocol {
                        detail: format!("unexpected load reply: {other:?}"),
                    });
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match key {
            Some(k) => Ok(k),
            None => Err(first_err.unwrap_or(ServeError::ShuttingDown)),
        }
    }

    /// Broadcasts an `unload`; returns whether any replica evicted.
    #[must_use]
    pub fn fleet_unload(&self, model: &str) -> bool {
        let req = Request::Unload {
            model: model.to_string(),
        };
        let mut any = false;
        for (_, addr) in self.reachable_replicas() {
            if let Ok(Response::Unloaded { evicted, .. }) = self.admin_request(&addr, &req) {
                any |= evicted;
            }
        }
        any
    }

    /// Non-`Down` replicas (draining ones still answer admin traffic).
    fn reachable_replicas(&self) -> Vec<(usize, String)> {
        self.fleet()
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != ReplicaHealth::Down)
            .map(|(i, r)| (i, r.addr.clone()))
            .collect()
    }

    /// One admin exchange (metrics/models/load/unload) with one replica,
    /// under the probe timeout.
    fn admin_request(&self, addr: &str, req: &Request) -> Result<Response, ServeError> {
        let stream = connect_timeout(addr, self.cfg.probe_timeout)?;
        stream.set_nodelay(true)?;
        // Admin ops can be slow (a load may train/merge); no read timeout.
        let mut writer = stream.try_clone()?;
        let mut reader = std::io::BufReader::new(stream);
        protocol::write_line(&mut writer, req)?;
        let mut line = String::new();
        let n = std::io::BufRead::read_line(&mut reader, &mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "replica closed the connection",
            )));
        }
        protocol::parse_line(&line)
    }
}

/// How one failed attempt steers the failover loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptVerdict {
    /// A verdict about the request itself: return it, try nobody else.
    Fatal,
    /// The replica is saturated: mark it Degraded and spill onward.
    Spill,
    /// The replica looks unhealthy: count toward `Down` and fail over.
    Transport,
    /// Transient and replica-agnostic (draining, internal hiccup): fail
    /// over without dinging the replica's health record.
    Retryable,
}

/// Classifies an attempt error. `deadline_exceeded` is fatal because the
/// request's time budget is spent no matter which replica answers;
/// `shutting_down` is retryable-elsewhere because a draining or killed
/// replica answers that way precisely so the router can move the session.
fn classify(e: &ServeError) -> AttemptVerdict {
    match e {
        ServeError::Remote(w) => match w.code {
            ErrorCode::BadRequest | ErrorCode::UnknownModel | ErrorCode::DeadlineExceeded => {
                AttemptVerdict::Fatal
            }
            ErrorCode::Overloaded => AttemptVerdict::Spill,
            ErrorCode::ShuttingDown | ErrorCode::Internal => AttemptVerdict::Retryable,
        },
        ServeError::Io(_) | ServeError::Protocol { .. } => AttemptVerdict::Transport,
        _ => AttemptVerdict::Retryable,
    }
}

/// `TcpStream::connect_timeout` over a `host:port` string.
fn connect_timeout(addr: &str, timeout: Duration) -> Result<TcpStream, ServeError> {
    use std::net::ToSocketAddrs;
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::Protocol {
            detail: format!("unresolvable replica address: {addr}"),
        })?;
    Ok(TcpStream::connect_timeout(&resolved, timeout)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> Router {
        let replicas = (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect();
        Router::new(RouterConfig::default(), replicas)
    }

    #[test]
    fn candidates_exclude_draining_and_rank_by_health() {
        let r = router(4);
        assert!(r.drain("127.0.0.1:7101"));
        assert!(!r.drain("127.0.0.1:9999"), "unknown replica");
        r.record_failure(2); // Degraded after one failure
        let req = GenerateRequest::greedy("m", "Q:x;A:", 8);
        let cands = r.candidates(&req);
        let indices: Vec<usize> = cands.iter().map(|c| c.index).collect();
        assert_eq!(cands.len(), 3, "draining replica excluded");
        assert!(!indices.contains(&1));
        assert_eq!(
            *indices.last().expect("nonempty"),
            2,
            "the degraded replica ranks behind every healthy one"
        );
    }

    #[test]
    fn failures_degrade_then_down_and_success_recovers() {
        let r = router(2);
        r.record_failure(0);
        assert_eq!(r.fleet_status()[0].state, ReplicaHealth::Degraded);
        r.record_failure(0);
        assert_eq!(r.fleet_status()[0].state, ReplicaHealth::Down);
        assert_eq!(r.fleet_status()[0].consecutive_failures, 2);
        r.record_success(0);
        assert_eq!(r.fleet_status()[0].state, ReplicaHealth::Healthy);
        assert_eq!(r.fleet_status()[0].consecutive_failures, 0);
        let snap = r.metrics().snapshot();
        assert_eq!(snap.marks_degraded, 1);
        assert_eq!(snap.marks_down, 1);
    }

    #[test]
    fn draining_is_sticky_under_probe_success_and_failure() {
        let r = router(2);
        assert!(r.drain("127.0.0.1:7100"));
        r.record_success(0);
        assert_eq!(r.fleet_status()[0].state, ReplicaHealth::Draining);
        r.record_failure(0);
        assert_eq!(r.fleet_status()[0].state, ReplicaHealth::Draining);
    }

    #[test]
    fn affinity_candidates_are_stable_per_key() {
        let r = router(4);
        let req = GenerateRequest::greedy("merge:a+b@0.6", "Q:timing path 1;A:", 8);
        let a: Vec<usize> = r.candidates(&req).iter().map(|c| c.index).collect();
        let b: Vec<usize> = r.candidates(&req).iter().map(|c| c.index).collect();
        assert_eq!(a, b);
        let other = GenerateRequest::greedy("merge:a+b@0.6", "Q:timing path 2;A:", 8);
        let c: Vec<usize> = r.candidates(&other).iter().map(|c| c.index).collect();
        assert_eq!(a[0], c[0], "shared 16-char prefix shares an affinity home");
    }

    #[test]
    fn dead_fleet_returns_structured_errors_not_hangs() {
        // Nothing is listening on these ports: every attempt is a connect
        // failure, the fleet goes Down, and the caller gets the last
        // transport error back after a bounded number of attempts.
        let cfg = RouterConfig {
            failover: RetryPolicy {
                max_attempts: 2,
                base_delay_ms: 1,
                max_delay_ms: 2,
                jitter: 0.0,
            },
            connect_timeout: Duration::from_millis(50),
            ..RouterConfig::default()
        };
        let r = Router::new(
            cfg,
            vec!["127.0.0.1:9".to_string(), "127.0.0.1:10".to_string()],
        );
        let req = GenerateRequest::greedy("m", "Q:x;A:", 4);
        let err = r.generate(&req).expect_err("no replica is listening");
        assert!(
            matches!(err, ServeError::Io(_)),
            "transport error expected, got {err:?}"
        );
        let snap = r.metrics().snapshot();
        assert_eq!(snap.routed, 1);
        assert_eq!(snap.exhausted, 1);
        assert_eq!(snap.failovers, 1, "second candidate was tried");
    }
}

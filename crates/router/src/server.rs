//! The router's own TCP front end.
//!
//! [`RouterServer`] speaks the same newline-delimited JSON protocol as a
//! single `chipalign-serve` replica, so existing clients (including
//! [`chipalign_serve::Client`] and its `Retrier`) point at the router
//! unchanged. Per-request verbs are routed with failover
//! ([`Router::generate`]); admin verbs fan out — `metrics` aggregates the
//! fleet with [`chipalign_serve::MetricsSnapshot::absorb`], `models`
//! unions, `load`/`unload` broadcast — and the v3 `fleet`/`drain` verbs
//! are answered locally from the replica table.
//!
//! A background prober pings every replica each `probe_interval`, feeding
//! the three-state health model that orders failover candidates.

use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use chipalign_serve::protocol::{self, Request, Response};
use chipalign_serve::{ServeError, PROTOCOL_VERSION};

use crate::router::{Router, RouterConfig};

/// How often blocked loops poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

struct RouterInner {
    router: Router,
    stop: AtomicBool,
    probe_interval: Duration,
}

/// A running router front end: TCP accept loop plus health prober.
pub struct RouterServer {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RouterServer({})", self.addr)
    }
}

impl RouterServer {
    /// Binds the front end, starts the accept loop and the health prober,
    /// and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the listen address cannot be bound.
    pub fn bind(cfg: RouterConfig, replicas: Vec<String>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let probe_interval = cfg.probe_interval;
        let inner = Arc::new(RouterInner {
            router: Router::new(cfg, replicas),
            stop: AtomicBool::new(false),
            probe_interval,
        });
        let mut threads = Vec::with_capacity(2);
        let accept_inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("chipalign-router-accept".to_string())
                .spawn(move || accept_loop(&listener, &accept_inner))
                .map_err(ServeError::Io)?,
        );
        let probe_inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("chipalign-router-probe".to_string())
                .spawn(move || probe_loop(&probe_inner))
                .map_err(ServeError::Io)?,
        );
        Ok(RouterServer {
            inner,
            addr,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing core, for direct inspection (tests, the binary's
    /// status printing).
    #[must_use]
    pub fn router(&self) -> &Router {
        &self.inner.router
    }

    /// Stops the accept loop and the prober, joining both. In-flight
    /// routed requests finish first (their handler threads are joined by
    /// the accept loop). Safe to call more than once.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let threads: Vec<JoinHandle<()>> = self
            .threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn probe_loop(inner: &Arc<RouterInner>) {
    // First pass immediately so the table reflects reality before the
    // first routed request, then on the configured cadence (polled in
    // POLL_INTERVAL steps so shutdown stays prompt).
    while !inner.stop.load(Ordering::SeqCst) {
        inner.router.probe_once();
        let mut waited = Duration::ZERO;
        while waited < inner.probe_interval && !inner.stop.load(Ordering::SeqCst) {
            std::thread::sleep(POLL_INTERVAL);
            waited += POLL_INTERVAL;
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<RouterInner>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(inner);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("chipalign-router-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_inner))
                {
                    handlers.push(handle);
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<RouterInner>) {
    // A short read timeout doubles as the stop-flag poll interval for idle
    // connections.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = match protocol::parse_line::<Request>(&line) {
                    Ok(req) => dispatch(inner, req),
                    Err(e) => Response::Error(e.to_wire()),
                };
                if protocol::write_line(&mut writer, &response).is_err() {
                    return; // client gone
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn dispatch(inner: &Arc<RouterInner>, req: Request) -> Response {
    let router = &inner.router;
    match req {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
        },
        Request::Generate(gen) => match router.generate(&gen) {
            Ok(g) => Response::Generation(g),
            Err(e) => Response::Error(e.to_wire()),
        },
        Request::Metrics => Response::Metrics(router.fleet_metrics()),
        Request::Models => {
            let (loaded, zoo, models) = router.fleet_models_detailed();
            Response::Models {
                loaded,
                zoo,
                models,
            }
        }
        Request::Load { model } => match router.fleet_load(&model) {
            Ok(key) => Response::Loaded { model: key },
            Err(e) => Response::Error(e.to_wire()),
        },
        Request::Unload { model } => Response::Unloaded {
            evicted: router.fleet_unload(&model),
            model,
        },
        Request::Fleet => Response::Fleet {
            replicas: router.fleet_status(),
        },
        Request::Drain { replica } => Response::Drained {
            known: router.drain(&replica),
            replica,
        },
    }
}

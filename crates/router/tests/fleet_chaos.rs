//! Fleet chaos: replica kills mid-decode under the router.
//!
//! Requires `--features fault-inject`. Three identically-seeded replicas
//! sit behind a [`RouterServer`]; mid-burst, one replica loses a worker to
//! an armed [`Site::WorkerDeath`] (targeted by its `instance_tag`) and a
//! second is taken down whole with [`Server::kill`]. The invariant under
//! all of it:
//!
//! > every affected session is either answered **byte-identically** to an
//! > unperturbed reference after failover, or fails with a structured
//! > retryable error — never a hang, never a corrupted transcript.
//!
//! Identical zoo seeds across replicas make the transcripts comparable;
//! a fourth out-of-ring reference replica provides the golden texts.

#![cfg(feature = "fault-inject")]

use std::time::{Duration, Instant};

use chipalign_model::ArchSpec;
use chipalign_nn::TinyLm;
use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_router::{affinity_key, HashRing, RouterConfig, RouterServer};
use chipalign_serve::faults::{self, Site, Trigger};
use chipalign_serve::protocol::ReplicaHealth;
use chipalign_serve::{
    Client, ErrorCode, GenerateRequest, ModelRegistry, RetryPolicy, SchedulerConfig, ServeError,
    Server, ServerConfig,
};
use chipalign_tensor::rng::Pcg32;

const MODEL: &str = "chaos";

fn chaos_model() -> TinyLm {
    let mut arch = ArchSpec::tiny("fleet-chaos");
    arch.vocab_size = 99;
    TinyLm::new(&arch, &mut Pcg32::seed(77)).expect("model")
}

/// A replica with the shared chaos model registered under `MODEL` and the
/// given instance tag (`None` for the out-of-ring reference replica).
fn replica(tag: Option<&str>) -> Server {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 1,
        cache_dir: None,
    })
    .expect("zoo");
    let registry = ModelRegistry::new(zoo);
    registry.register(MODEL, chaos_model());
    Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 32,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: tag.map(str::to_string),
        },
        registry,
    )
    .expect("bind replica")
}

/// Prompt families chosen *at runtime* so that every replica in `addrs`
/// is the affinity home of at least one family — the burst is guaranteed
/// to put sessions on both doomed replicas no matter where the ephemeral
/// ports hash.
fn families_covering_every_replica(addrs: &[String], cfg: &RouterConfig) -> Vec<(String, usize)> {
    let ring = HashRing::build(addrs, cfg.vnodes);
    let mut families: Vec<(String, usize)> = Vec::new();
    let mut covered = vec![false; addrs.len()];
    for i in 0.. {
        // The family index sits inside the 16-char affinity prefix, so
        // each family gets its own key (and thus its own candidate home).
        let scaffold = format!("Q:f{i:04} chaos member ");
        let home = ring.candidates(affinity_key(MODEL, &scaffold, cfg.affinity_chars))[0];
        if !covered[home] {
            covered[home] = true;
            families.push((scaffold, home));
            if covered.iter().all(|&c| c) {
                break;
            }
        }
        assert!(i < 10_000, "ring never covered every replica");
    }
    families
}

#[test]
fn replica_kills_mid_decode_preserve_transcripts_or_fail_structured() {
    let _scope = faults::scope(7001);
    // Kill a worker on replica r1 on the third decode slice it runs for
    // the chaos model. The victim session gets a structured `internal`
    // ("worker died") and must be re-served elsewhere byte-identically.
    faults::arm(
        Site::WorkerDeath,
        Some(&format!("r1/{MODEL}")),
        Trigger::Once(3),
    );

    let servers: Vec<Server> = (0..3).map(|i| replica(Some(&format!("r{i}")))).collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let reference = replica(None);

    let cfg = RouterConfig {
        probe_interval: Duration::from_millis(100),
        failover: RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 2,
            max_delay_ms: 20,
            jitter: 0.5,
        },
        ..RouterConfig::default()
    };
    let families = families_covering_every_replica(&addrs, &cfg);
    let front = RouterServer::bind(cfg, addrs.clone()).expect("bind router");
    let router_addr = front.local_addr();

    // 4 members per family; with one family homed on each replica, both
    // doomed replicas are guaranteed mid-decode traffic.
    let prompts: Vec<String> = families
        .iter()
        .flat_map(|(scaffold, _)| (0..4).map(move |m| format!("{scaffold}{m};A:")))
        .collect();

    // Golden transcripts from the unperturbed out-of-ring replica.
    let mut golden_client = Client::connect(reference.local_addr()).expect("connect reference");
    let golden: Vec<String> = prompts
        .iter()
        .map(|p| {
            golden_client
                .generate(GenerateRequest::greedy(MODEL, p, 48))
                .expect("golden generate")
                .text
        })
        .collect();

    // The burst: every prompt through the router, concurrently.
    let handles: Vec<_> = prompts
        .iter()
        .map(|prompt| {
            let prompt = prompt.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(router_addr).expect("connect router");
                client.generate(GenerateRequest::greedy(MODEL, &prompt, 48))
            })
        })
        .collect();

    // Mid-burst, take replica r2 down whole: queued and in-flight sessions
    // get structured `shutting_down`, then its listener vanishes.
    std::thread::sleep(Duration::from_millis(30));
    servers[2].kill();

    let mut ok = 0usize;
    let mut structured = 0usize;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join().expect("client thread") {
            Ok(generation) => {
                assert_eq!(
                    generation.text, golden[i],
                    "session {i} ({:?}) must be byte-identical after any failover",
                    prompts[i]
                );
                ok += 1;
            }
            Err(ServeError::Remote(w)) => {
                assert!(
                    matches!(
                        w.code,
                        ErrorCode::Overloaded | ErrorCode::Internal | ErrorCode::ShuttingDown
                    ),
                    "session {i}: structured but non-retryable: {w:?}"
                );
                structured += 1;
            }
            Err(other) => panic!("session {i}: unstructured failure: {other:?}"),
        }
    }
    assert_eq!(ok + structured, prompts.len());
    assert!(
        ok >= prompts.len() - 2,
        "failover should save nearly every session: {ok} ok, {structured} structured"
    );

    // The router actually exercised failover (the worker death alone
    // guarantees at least one), and it noticed the dead replica.
    let routing = front.router().metrics().snapshot();
    assert_eq!(routing.routed, prompts.len() as u64);
    assert!(routing.failovers > 0, "no failover happened: {routing:?}");

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let statuses = front.router().fleet_status();
        if statuses[2].state == ReplicaHealth::Down {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prober never marked the killed replica Down: {statuses:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Survivors keep serving through the router after the carnage.
    let mut client = Client::connect(router_addr).expect("connect router");
    let after = client
        .generate(GenerateRequest::greedy(MODEL, &prompts[0], 48))
        .expect("post-chaos generate");
    assert_eq!(
        after.text, golden[0],
        "the fleet still serves, bytes intact"
    );

    front.shutdown();
    reference.shutdown();
    for s in servers {
        s.shutdown();
    }
}

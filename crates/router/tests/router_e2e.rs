//! End-to-end router tests over real TCP sockets: in-process
//! `chipalign-serve` replicas on ephemeral ports behind a
//! [`RouterServer`], driven by the stock [`Client`].
//!
//! Every replica is built over an identically-seeded smoke zoo, so all of
//! them materialize byte-identical models — which is exactly the fleet
//! deployment assumption that makes cross-replica failover
//! transcript-safe, and lets these tests use a direct-to-replica
//! generation as the byte-identity reference for router-served output.

use std::time::{Duration, Instant};

use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_router::{affinity_key, HashRing, RouterConfig, RouterServer};
use chipalign_serve::protocol::ReplicaHealth;
use chipalign_serve::{
    Client, GenerateRequest, ModelRegistry, SchedulerConfig, Server, ServerConfig,
};

const MERGE_SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";
const ZOO_SEED: u64 = 2025;

fn replica(index: usize, workers: usize, max_sessions: usize) -> Server {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: ZOO_SEED,
        cache_dir: None,
    })
    .expect("zoo");
    Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers,
                max_sessions,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: Some(format!("r{index}")),
        },
        ModelRegistry::new(zoo),
    )
    .expect("bind replica")
}

fn fleet(n: usize, workers: usize, max_sessions: usize) -> (Vec<Server>, Vec<String>) {
    let servers: Vec<Server> = (0..n).map(|i| replica(i, workers, max_sessions)).collect();
    let addrs = servers.iter().map(|s| s.local_addr().to_string()).collect();
    (servers, addrs)
}

fn router_over(addrs: Vec<String>, probe_interval: Duration) -> RouterServer {
    RouterServer::bind(
        RouterConfig {
            probe_interval,
            ..RouterConfig::default()
        },
        addrs,
    )
    .expect("bind router")
}

/// Polls a replica's metrics until `requests` reaches `n` (the session has
/// been admitted), so tests can sequence around in-flight work without
/// sleeping blind.
fn wait_for_admission(addr: &str, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = Client::connect(addr).expect("connect");
    loop {
        if client.metrics().expect("metrics").requests >= n {
            return;
        }
        assert!(Instant::now() < deadline, "session never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The headline property: prompts sharing a 16-char scaffold land on the
/// same (predictable) replica, router-served text is byte-identical to a
/// direct replica generation, and the router's `metrics`/`models`/`fleet`
/// verbs aggregate the fleet.
#[test]
fn affinity_routing_pins_scaffolds_and_aggregates_the_fleet() {
    let (servers, addrs) = fleet(2, 2, 16);
    let front = router_over(addrs.clone(), Duration::from_millis(200));
    let mut admin = Client::connect(front.local_addr()).expect("connect router");

    // Broadcast load: the merge materializes on every replica.
    let key = admin.load(MERGE_SPEC).expect("fleet load");
    assert_eq!(key, "merge:eda-qwen+instruct-qwen@0.6000");
    let (loaded, zoo_slugs) = admin.models().expect("fleet models");
    assert!(loaded.contains(&key), "union of loaded models: {loaded:?}");
    assert!(zoo_slugs.contains(&"eda-qwen".to_string()));

    // Two scaffold families; within a family the first 16 chars (the
    // affinity prefix) agree, and the varying member index falls after
    // them — so a family shares one affinity key.
    let prompts: Vec<String> = (0..4)
        .map(|i| format!("Q:describe timing path {i};A:"))
        .chain((0..4).map(|i| format!("Q:explain the CDC rule {i};A:")))
        .collect();

    // Recompute each prompt's expected home exactly as the router does.
    let cfg = RouterConfig::default();
    let ring = HashRing::build(&addrs, cfg.vnodes);
    let homes: Vec<usize> = prompts
        .iter()
        .map(|p| ring.candidates(affinity_key(MERGE_SPEC, p, cfg.affinity_chars))[0])
        .collect();
    for family in [&homes[..4], &homes[4..]] {
        assert!(
            family.windows(2).all(|w| w[0] == w[1]),
            "a scaffold family shares one affinity home: {homes:?}"
        );
    }

    for (prompt, &home) in prompts.iter().zip(&homes) {
        let req = GenerateRequest::greedy(MERGE_SPEC, prompt, 32);
        let via_router = admin.generate(req.clone()).expect("routed generate");
        // Reference: the *other* replica, direct. Identical zoo seeds make
        // every replica's transcript byte-identical, so this also proves
        // the failover-safety assumption the router relies on.
        let other = &addrs[1 - home];
        let direct = Client::connect(other.as_str())
            .expect("connect replica")
            .generate(req)
            .expect("direct generate");
        assert_eq!(
            via_router.text, direct.text,
            "byte-identical for {prompt:?}"
        );
        assert_eq!(via_router.tokens, direct.tokens);
    }

    // Per-replica completions must match the computed homes: affinity
    // routed every request, nothing strayed. (The direct reference calls
    // above add one extra completion per prompt on the non-home replica.)
    for (idx, addr) in addrs.iter().enumerate() {
        let expected_home = homes.iter().filter(|&&h| h == idx).count() as u64;
        let expected_direct = homes.iter().filter(|&&h| h != idx).count() as u64;
        let snap = Client::connect(addr.as_str())
            .expect("connect replica")
            .metrics()
            .expect("metrics");
        assert_eq!(
            snap.completed,
            expected_home + expected_direct,
            "replica {idx} served its homed prompts plus direct references"
        );
    }

    // The router's metrics verb aggregates the whole fleet via absorb().
    let fleet_snap = admin.metrics().expect("fleet metrics");
    assert_eq!(fleet_snap.completed, 2 * prompts.len() as u64);
    assert!(fleet_snap.tokens_per_sec > 0.0);

    // And its own routing counters say every request hit its first choice.
    let routing = front.router().metrics().snapshot();
    assert_eq!(routing.routed, prompts.len() as u64);
    assert_eq!(routing.primary_hits, prompts.len() as u64);
    assert_eq!(routing.failovers, 0);

    let statuses = admin.fleet().expect("fleet status");
    assert_eq!(statuses.len(), 2);
    assert!(statuses.iter().all(|s| s.state == ReplicaHealth::Healthy));

    front.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// A saturated home replica answers `overloaded`; the router marks it
/// Degraded and spills the request to its ring neighbor, which serves it.
#[test]
fn overloaded_home_spills_to_ring_neighbor_and_degrades() {
    // max_sessions 1: one in-flight session saturates a replica.
    let (servers, addrs) = fleet(2, 1, 1);
    // A long probe interval so only the initial probe pass runs: the
    // Degraded mark must survive until we assert on it.
    let front = router_over(addrs.clone(), Duration::from_secs(120));
    let mut admin = Client::connect(front.local_addr()).expect("connect router");
    admin.load("eda-qwen").expect("fleet load");

    let prompt = "Q:spill me somewhere;A:";
    let cfg = RouterConfig::default();
    let ring = HashRing::build(&addrs, cfg.vnodes);
    let home = ring.candidates(affinity_key("eda-qwen", prompt, cfg.affinity_chars))[0];

    // Occupy the home replica with a long-running direct session.
    let occupy_addr = addrs[home].clone();
    let occupant = std::thread::spawn(move || {
        Client::connect(occupy_addr.as_str())
            .expect("connect home")
            .generate(GenerateRequest::greedy("eda-qwen", "Q:occupy;A:", 600))
            .expect("occupying generate")
    });
    wait_for_admission(&addrs[home], 1);

    // Routed to its saturated home, the request must spill and succeed.
    let spilled = admin
        .generate(GenerateRequest::greedy("eda-qwen", prompt, 24))
        .expect("spilled generate");
    assert!(!spilled.text.is_empty());

    let routing = front.router().metrics().snapshot();
    assert_eq!(routing.spills, 1, "exactly one overload spill");
    assert_eq!(routing.failovers, 1);
    assert_eq!(routing.primary_hits, 0);
    assert_eq!(routing.marks_degraded, 1);

    let statuses = admin.fleet().expect("fleet status");
    assert_eq!(statuses[home].state, ReplicaHealth::Degraded);
    assert_eq!(statuses[1 - home].state, ReplicaHealth::Healthy);

    // The neighbor actually served it.
    let neighbor = Client::connect(addrs[1 - home].as_str())
        .expect("connect neighbor")
        .metrics()
        .expect("metrics");
    assert_eq!(neighbor.completed, 1);

    let occupied = occupant.join().expect("occupant thread");
    assert_eq!(occupied.tokens, 600, "the occupying session was never cut");

    front.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// Draining removes a replica from the candidate set — its keyspace falls
/// to ring neighbors — without cancelling its in-flight sessions.
#[test]
fn drain_rebalances_new_traffic_and_preserves_inflight_sessions() {
    let (servers, addrs) = fleet(2, 2, 8);
    let front = router_over(addrs.clone(), Duration::from_millis(200));
    let router_addr = front.local_addr();
    let mut admin = Client::connect(router_addr).expect("connect router");
    admin.load("eda-qwen").expect("fleet load");

    let prompt = "Q:who owns this keyspace?;A:";
    let cfg = RouterConfig::default();
    let ring = HashRing::build(&addrs, cfg.vnodes);
    let home = ring.candidates(affinity_key("eda-qwen", prompt, cfg.affinity_chars))[0];

    // A long session routed through the router, homed on `home`.
    let inflight_prompt = prompt.to_string();
    let inflight = std::thread::spawn(move || {
        Client::connect(router_addr)
            .expect("connect router")
            .generate(GenerateRequest::greedy("eda-qwen", &inflight_prompt, 400))
            .expect("in-flight generate")
    });
    wait_for_admission(&addrs[home], 1);

    // Drain the home. Unknown replicas are reported, not invented.
    assert!(admin.drain(&addrs[home]).expect("drain"));
    assert!(!admin.drain("127.0.0.1:1").expect("drain unknown"));
    let statuses = admin.fleet().expect("fleet status");
    assert_eq!(statuses[home].state, ReplicaHealth::Draining);

    // New traffic for the drained keyspace lands on the survivor...
    let rerouted = admin
        .generate(GenerateRequest::greedy("eda-qwen", prompt, 24))
        .expect("rerouted generate");
    assert!(!rerouted.text.is_empty());
    let survivor = Client::connect(addrs[1 - home].as_str())
        .expect("connect survivor")
        .metrics()
        .expect("metrics");
    assert_eq!(
        survivor.completed, 1,
        "survivor serves the drained keyspace"
    );

    // ...and the drained replica's in-flight session still completes.
    let finished = inflight.join().expect("inflight thread");
    assert_eq!(
        finished.tokens, 400,
        "draining never cancels in-flight work"
    );

    // Draining is sticky: probes have run meanwhile, the state must hold.
    let statuses = admin.fleet().expect("fleet status");
    assert_eq!(statuses[home].state, ReplicaHealth::Draining);

    front.shutdown();
    for s in servers {
        s.shutdown();
    }
}
